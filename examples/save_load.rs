//! Durable deployment: checkpoint a REIS system to disk, mutate it (every
//! mutation lands in the write-ahead log), "crash", and recover — the
//! reopened system answers searches exactly like the one that died. A
//! final act tears the WAL tail on purpose to show quarantine in action.
//!
//! ```bash
//! cargo run --example save_load
//! ```

use reis::core::{CompactionPolicy, DirVfs, DurableStore, ReisConfig, ReisSystem, VectorDatabase};

fn vector_for(id: u32) -> Vec<f32> {
    (0..48)
        .map(|d| (((id as u64 * 37 + d as u64 * 11) % 17) as f32 - 8.0) / 4.0)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("reis-save-load-example");
    let _ = std::fs::remove_dir_all(&root);
    println!("durable store: {}\n", root.display());

    // --- Act 1: open a durable system and deploy a corpus. -------------
    // `deploy` checkpoints immediately: a snapshot of the full deployed
    // state plus a fresh, empty WAL for the mutations that follow.
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());
    let store = DurableStore::new(Box::new(DirVfs::new(&root)));
    let (mut reis, report) = ReisSystem::open(config, store)?;
    assert!(report.is_none(), "a fresh directory has nothing to recover");

    let vectors: Vec<Vec<f32>> = (0..64).map(vector_for).collect();
    let documents: Vec<Vec<u8>> = (0..64)
        .map(|i| format!("chunk {i:03}  ").into_bytes())
        .collect();
    let db = reis.deploy(&VectorDatabase::flat(&vectors, documents)?)?;
    println!(
        "deployed database {db}: 64 entries, checkpointed as epoch {}",
        reis.durable_seq().expect("durable")
    );

    // --- Act 2: mutate. Each op appends one CRC-framed WAL record. -----
    let fresh = vector_for(900);
    let inserted = reis.insert(db, &fresh, b"chunk 900 (new)".to_vec())?.ids[0];
    reis.delete(db, 3)?;
    reis.upsert(db, 7, &vector_for(700), b"chunk 007 (v2)")?;
    let before = reis.search(db, &fresh, 3)?;
    println!(
        "mutated: inserted id {inserted}, deleted 3, upserted 7 -> top hit {} ({:?})",
        before.results[0].id,
        String::from_utf8_lossy(&before.documents[0]),
    );
    for name in std::fs::read_dir(&root)?.flatten() {
        println!(
            "  on disk: {:20} {:5} bytes",
            name.file_name().to_string_lossy(),
            name.metadata()?.len()
        );
    }

    // --- Act 3: crash and recover. -------------------------------------
    // Dropping the system without `save()` models a power cut: the three
    // mutations exist only as WAL records. Recovery restores the deploy
    // checkpoint and replays them through the normal mutation paths.
    drop(reis);
    let store = DurableStore::new(Box::new(DirVfs::new(&root)));
    let (mut reis, report) = ReisSystem::open(config, store)?;
    let report = report.expect("non-fresh store recovers");
    println!(
        "\nrecovered: snapshot epoch {}, {} WAL records replayed, quarantined: {}",
        report.snapshot_seq,
        report.wal_records_applied,
        report.quarantined.is_some(),
    );
    let after = reis.search(db, &fresh, 3)?;
    assert_eq!(after.result_ids(), before.result_ids());
    assert_eq!(after.documents, before.documents);
    println!("search after recovery is bit-identical to the pre-crash search");

    // --- Act 4: a torn WAL tail is quarantined, not fatal. --------------
    // Append half a frame to the newest WAL, as a mid-write power cut
    // would. Recovery keeps every intact record and reports the tail.
    let newest_wal = std::fs::read_dir(&root)?
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("wal-"))
        .max()
        .expect("a WAL exists");
    let mut torn = std::fs::read(root.join(&newest_wal))?;
    torn.extend_from_slice(&[0xDE, 0xAD, 0xBE]);
    std::fs::write(root.join(&newest_wal), torn)?;
    drop(reis);

    let store = DurableStore::new(Box::new(DirVfs::new(&root)));
    let (mut reis, report) = ReisSystem::open(config, store)?;
    let report = report.expect("recovers again");
    let quarantine = report.quarantined.expect("torn tail detected");
    println!(
        "\ntorn tail of {newest_wal} quarantined at byte {}: {}",
        quarantine.offset, quarantine.detail
    );
    let final_hit = reis.search(db, &fresh, 3)?;
    assert_eq!(final_hit.result_ids(), before.result_ids());
    println!("the durable prefix survived; searches still match");
    Ok(())
}
