//! Sweep of the REIS optimizations (distance filtering, pipelining,
//! multi-plane input broadcasting) on the functional simulator — a scaled
//! version of the Fig. 9 sensitivity study.
//!
//! ```bash
//! cargo run --example sensitivity_sweep
//! ```

use reis::core::{Optimizations, ReisConfig, ReisSystem, VectorDatabase};
use reis::workloads::{DatasetProfile, SyntheticDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset =
        SyntheticDataset::generate(DatasetProfile::wiki_full().scaled(512).with_queries(3), 19);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 16)?;

    let ladder = [
        ("NO-OPT", Optimizations::none()),
        ("+DF", Optimizations::df_only()),
        ("+PL", Optimizations::df_pl()),
        ("+MPIBC (full REIS)", Optimizations::all()),
    ];

    println!(
        "{:<22} {:>14} {:>18} {:>14}",
        "configuration", "latency", "entries moved", "energy (uJ)"
    );
    let mut baseline_latency = None;
    for (name, opts) in ladder {
        let mut system = ReisSystem::new(ReisConfig::ssd1().with_optimizations(opts));
        let db_id = system.deploy(&database)?;
        let mut total_latency = 0.0;
        let mut entries = 0usize;
        let mut energy = 0.0;
        for query in dataset.queries() {
            let outcome = system.ivf_search_with_nprobe(db_id, query, 10, 4)?;
            total_latency += outcome.total_latency().as_secs_f64();
            entries += outcome.activity.coarse_entries + outcome.activity.fine_entries;
            energy += outcome.energy.total_j();
        }
        let avg = total_latency / dataset.queries().len() as f64;
        let speedup = baseline_latency.get_or_insert(avg).max(f64::MIN_POSITIVE) / avg;
        println!(
            "{name:<22} {:>11.3} ms {:>18} {:>14.1}   ({speedup:.2}x vs NO-OPT)",
            avg * 1e3,
            entries,
            energy * 1e6 / dataset.queries().len() as f64
        );
    }
    println!(
        "\nDistance filtering removes most channel traffic; pipelining and MPIBC shave the rest."
    );
    Ok(())
}
