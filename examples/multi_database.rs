//! Serving multiple domain-specific RAG databases from one REIS SSD.
//!
//! The paper motivates REIS partly by the impracticality of batching queries
//! across domains: medical, legal and financial queries must be served from
//! different corpora. REIS keeps one R-DB record per deployed database, so a
//! single device hosts them side by side and routes each query to the right
//! one (the basis of the metadata-filtering extension of Sec. 7.1).
//!
//! ```bash
//! cargo run --example multi_database
//! ```

use reis::core::{ReisConfig, ReisSystem, VectorDatabase};
use reis::workloads::{DatasetProfile, SyntheticDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut reis = ReisSystem::new(ReisConfig::ssd2());
    let domains = ["medical", "legal", "finance"];
    let mut handles = Vec::new();

    for (i, domain) in domains.iter().enumerate() {
        let profile = DatasetProfile::nq().scaled(256).with_queries(2);
        let dataset = SyntheticDataset::generate(profile, 100 + i as u64);
        let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 8)?;
        let db_id = reis.deploy(&database)?;
        println!(
            "deployed {domain} corpus as database {db_id}: {} entries, {} flash pages, \
             R-DB footprint {} bytes",
            dataset.len(),
            reis.database(db_id)?.layout.total_pages(),
            reis.controller().coarse_ftl().footprint_bytes(),
        );
        handles.push((db_id, dataset));
    }

    for (domain, (db_id, dataset)) in domains.iter().zip(&handles) {
        let outcome = reis.ivf_search(*db_id, &dataset.queries()[0], 3, 0.9)?;
        println!(
            "{domain} query -> top entry {} in {} ({} pages scanned, {} TTL entries transferred)",
            outcome.results[0].id,
            outcome.total_latency(),
            outcome.activity.coarse_pages + outcome.activity.fine_pages,
            outcome.activity.coarse_entries + outcome.activity.fine_entries,
        );
    }
    println!(
        "\nAll {} databases coexist behind {} bytes of coarse-grained FTL state.",
        handles.len(),
        reis.controller().coarse_ftl().footprint_bytes()
    );
    Ok(())
}
