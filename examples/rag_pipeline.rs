//! End-to-end RAG pipeline comparison: a CPU-served retrieval stage versus
//! REIS in-storage retrieval, composed with the fixed encoding / generation
//! stages (reproducing the shape of Figs. 2–3 and Table 4).
//!
//! ```bash
//! cargo run --example rag_pipeline
//! ```

use reis::baseline::{CpuPrecision, CpuSystem};
use reis::core::{ReisConfig, ReisSystem, VectorDatabase};
use reis::rag::{RagPipeline, RagStage};
use reis::workloads::{DatasetProfile, SyntheticDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DatasetProfile::wiki_en();
    let pipeline = RagPipeline::default();
    let cpu = CpuSystem::default();

    // CPU pipelines: full-precision and binary-quantized retrieval.
    let cpu_f32 = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::Float32);
    let cpu_bq = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::BinaryWithRerank);

    // REIS pipeline: run a functional in-storage query on a scaled corpus and
    // use its latency as the search-stage cost (dataset loading disappears).
    let scaled = profile.clone().scaled(512).with_queries(1);
    let dataset = SyntheticDataset::generate(scaled, 3);
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 16)?;
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database)?;
    let outcome = reis.ivf_search(db_id, &dataset.queries()[0], 10, 0.94)?;
    let reis_breakdown = pipeline.reis_breakdown(outcome.total_latency().as_secs_f64());

    println!("wiki_en end-to-end RAG latency breakdown (fractions of total):\n");
    println!(
        "{:<30} {:>10} {:>10} {:>10}",
        "stage", "CPU f32", "CPU + BQ", "REIS"
    );
    for stage in RagStage::all() {
        println!(
            "{:<30} {:>9.1}% {:>9.1}% {:>9.2}%",
            stage.label(),
            cpu_f32.fraction(stage) * 100.0,
            cpu_bq.fraction(stage) * 100.0,
            reis_breakdown.fraction(stage) * 100.0
        );
    }
    println!(
        "\ntotals: CPU f32 {:.1}s, CPU+BQ {:.1}s, REIS {:.1}s",
        cpu_f32.total(),
        cpu_bq.total(),
        reis_breakdown.total()
    );
    println!(
        "retrieval share: CPU f32 {:.0}%, CPU+BQ {:.0}%, REIS {:.2}% — with REIS, generation \
         becomes the bottleneck.",
        cpu_f32.retrieval_fraction() * 100.0,
        cpu_bq.retrieval_fraction() * 100.0,
        reis_breakdown.retrieval_fraction() * 100.0
    );
    Ok(())
}
