//! Observability: watch a mixed search + mutation workload through the
//! telemetry subsystem — counters, modelled-latency histograms, per-query
//! trace spans, a one-query "explain" page trace, and the Prometheus
//! scrape — all without perturbing a single result.
//!
//! ```bash
//! cargo run --example observability
//! ```

use reis::core::{CounterId, HistogramId, ReisConfig, ReisSystem, ScanParallelism, VectorDatabase};

fn vector_for(id: u32) -> Vec<f32> {
    (0..48)
        .map(|d| (((id as u64 * 37 + d as u64 * 11) % 17) as f32 - 8.0) / 4.0)
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Explain traces are exact when the fine scan runs sequentially, so
    // pin the scan to one unit; everything else is the stock tiny config.
    // (`REIS_TELEMETRY=1` in the environment would enable telemetry at
    // construction; `enable_telemetry` does the same from code.)
    let config = ReisConfig::tiny().with_scan_parallelism(ScanParallelism::pinned_sequential());
    let mut reis = ReisSystem::new(config);
    reis.enable_telemetry();

    let vectors: Vec<Vec<f32>> = (0..96).map(vector_for).collect();
    let documents: Vec<Vec<u8>> = (0..96)
        .map(|i| format!("chunk {i:03}").into_bytes())
        .collect();
    let db = reis.deploy(&VectorDatabase::flat(&vectors, documents)?)?;

    // --- A mixed workload: searches interleaved with mutations. ---------
    for round in 0..4u32 {
        for q in 0..4u32 {
            reis.search(db, &vector_for(1_000 + round * 4 + q), 5)?;
        }
        let fresh = vector_for(10_000 + round);
        let id = reis
            .insert(db, &fresh, format!("fresh {round}").into_bytes())?
            .ids[0];
        reis.upsert(db, id, &vector_for(20_000 + round), b"fresh, revised")?;
        reis.delete(db, round)?;
    }
    reis.compact(db)?;
    let batch: Vec<Vec<f32>> = (0..4u32).map(|q| vector_for(30_000 + q)).collect();
    reis.search_batch(db, &batch, 5, batch.len())?;

    let telemetry = reis.telemetry();
    println!("== workload counters ==");
    for (label, id) in [
        ("queries", CounterId::Queries),
        ("fused batches", CounterId::FusedBatches),
        ("flash senses", CounterId::FlashSenses),
        ("transferred entries", CounterId::FineEntries),
        ("inserts", CounterId::Inserts),
        ("upserts", CounterId::Upserts),
        ("deletes", CounterId::Deletes),
        ("compactions", CounterId::Compactions),
    ] {
        println!("  {label:<20} {}", telemetry.counter(id));
    }
    let modelled = telemetry.histogram(HistogramId::QueryModelledNs);
    println!(
        "  modelled query us    p50 {:.1} · p99 {:.1} (n={})",
        modelled.quantile(0.50) / 1e3,
        modelled.quantile(0.99) / 1e3,
        modelled.count
    );

    // --- The last query's trace: stage-by-stage span breakdown. ---------
    let trace = telemetry.last_trace().expect("queries were traced");
    println!(
        "\n== trace of query #{} ({}) ==",
        trace.sequence, trace.kind
    );
    for span in &trace.spans {
        println!(
            "  {:<14} modelled {:>9} ns   wall {:>7} ns",
            span.stage, span.modelled_ns, span.wall_ns
        );
    }

    // --- Explain mode: capture one query's page-by-page scan. -----------
    // Arming is one-shot: the next query records every scanned page
    // (page, adaptive window, slots examined, entries passed) into a
    // bounded ring, then disarms itself.
    reis.telemetry().arm_explain();
    let outcome = reis.search(db, &vector_for(42_424), 5)?;
    let explain = reis.telemetry().last_explain().expect("explain captured");
    println!(
        "\n== explain of query #{} ({} pages, {} entries passed) ==",
        explain.sequence,
        explain.events.len(),
        explain.total_passed()
    );
    for event in explain.events.iter().take(8) {
        println!(
            "  page {:>3}  window {:>2}  slots {:>3}  passed {:>3}",
            event.page, event.window, event.slots, event.passed
        );
    }
    if explain.events.len() > 8 {
        println!("  … {} more pages", explain.events.len() - 8);
    }
    assert_eq!(
        explain.total_passed() as usize,
        outcome.activity.fine_entries,
        "the explain trace accounts for every transferred entry"
    );

    // --- The Prometheus scrape (non-zero series only, for brevity). -----
    println!("\n== prometheus scrape (non-zero series) ==");
    for line in reis.telemetry().prometheus().lines() {
        if !line.starts_with('#') && !line.ends_with(" 0") {
            println!("  {line}");
        }
    }
    Ok(())
}
