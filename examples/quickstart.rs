//! Quickstart: deploy a small vector database into a simulated REIS SSD and
//! run an in-storage top-k retrieval.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use reis::core::{ReisConfig, ReisSystem, VectorDatabase};
use reis::workloads::{DatasetProfile, SyntheticDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small synthetic corpus (embeddings + document chunks).
    let profile = DatasetProfile::hotpotqa().scaled(512).with_queries(4);
    let dataset = SyntheticDataset::generate(profile, 7);
    println!(
        "corpus: {} entries of {} dims, {} queries",
        dataset.len(),
        dataset.profile().dim,
        dataset.queries().len()
    );

    // 2. Index it: IVF clustering + binary / INT8 quantization (the offline
    //    indexing stage of the RAG pipeline).
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), 16)?;

    // 3. Deploy into a simulated REIS SSD (the cost-oriented SSD1 preset).
    let mut reis = ReisSystem::new(ReisConfig::ssd1());
    let db_id = reis.deploy(&database)?;
    println!(
        "deployed database {db_id} ({} flash pages)",
        reis.database(db_id)?.layout.total_pages()
    );

    // 4. Run an IVF_Search for every query and show what came back.
    for (qi, query) in dataset.queries().iter().enumerate() {
        let outcome = reis.ivf_search(db_id, query, 5, 0.94)?;
        let top = &outcome.results[0];
        println!(
            "query {qi}: top hit = entry {} (distance {:.0}), latency {}, energy {:.1} uJ, \
             document: {:?}…",
            top.id,
            top.distance,
            outcome.total_latency(),
            outcome.energy.total_j() * 1e6,
            String::from_utf8_lossy(&outcome.documents[0][..40.min(outcome.documents[0].len())]),
        );
    }
    Ok(())
}
