//! Deterministic fault injection for the durable write path.
//!
//! [`FaultVfs`] wraps any [`Vfs`] and models the two storage failures a
//! durability layer must survive:
//!
//! * **Power loss** — [`FaultHandle::arm_kill_after`] sets a byte budget;
//!   once the wrapped backend has absorbed that many further bytes, the
//!   write in flight is torn at exactly the budget boundary and every
//!   subsequent write or removal is silently dropped. Calls still return
//!   `Ok`: a dying machine does not report its own death, it just stops
//!   persisting. The surviving bytes are whatever reached the backend —
//!   the recovery tests then reopen the underlying store.
//! * **Media corruption** — [`FaultVfs::flip_byte`] flips bits of an
//!   already-written file at rest, which the CRC32C checks must catch.
//!
//! Crash points are *byte-granular and deterministic*: the harness seeds
//! them with [`splitmix64`], so a failing case replays exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::Result;
use crate::vfs::Vfs;

/// Budget value meaning "no kill armed".
const DISARMED: u64 = u64::MAX;

#[derive(Debug)]
struct FaultState {
    /// Bytes the backend may still absorb before the "power" goes out.
    budget: AtomicU64,
    /// Total bytes absorbed by the backend since construction (survives
    /// arming, so an unfaulted pilot run can measure the full write span).
    written: AtomicU64,
}

/// Shared controller of a [`FaultVfs`]: the harness keeps this handle while
/// the system under test owns the VFS.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    state: Arc<FaultState>,
}

impl FaultHandle {
    /// Let `budget` more bytes through, then tear the write in flight and
    /// drop everything after it.
    pub fn arm_kill_after(&self, budget: u64) {
        self.state.budget.store(budget, Ordering::SeqCst);
    }

    /// Disarm a pending kill (writes flow again; already-dropped bytes stay
    /// lost).
    pub fn disarm(&self) {
        self.state.budget.store(DISARMED, Ordering::SeqCst);
    }

    /// Whether the armed kill has fired.
    pub fn killed(&self) -> bool {
        self.state.budget.load(Ordering::SeqCst) == 0
    }

    /// Total bytes the backend absorbed so far.
    pub fn bytes_written(&self) -> u64 {
        self.state.written.load(Ordering::SeqCst)
    }
}

/// A [`Vfs`] wrapper that injects deterministic write faults. See the
/// module docs for the failure model.
#[derive(Debug)]
pub struct FaultVfs<V> {
    inner: V,
    state: Arc<FaultState>,
}

impl<V: Vfs> FaultVfs<V> {
    /// Wrap `inner`, returning the wrapper and its control handle.
    pub fn new(inner: V) -> (Self, FaultHandle) {
        let state = Arc::new(FaultState {
            budget: AtomicU64::new(DISARMED),
            written: AtomicU64::new(0),
        });
        let handle = FaultHandle {
            state: Arc::clone(&state),
        };
        (FaultVfs { inner, state }, handle)
    }

    /// Flip the bits of `mask` in byte `offset` of `name` at rest,
    /// bypassing the kill switch (corruption of already-persisted data).
    pub fn flip_byte(&self, name: &str, offset: usize, mask: u8) -> Result<()> {
        let mut bytes = self.inner.read_file(name)?;
        bytes[offset] ^= mask;
        self.inner.write_file(name, &bytes)
    }

    /// How many of `len` incoming bytes survive, consuming budget.
    fn admit(&self, len: usize) -> usize {
        let len = len as u64;
        let mut survives = len;
        // Saturating budget decrement: whatever portion fits the remaining
        // budget goes through, the rest is dropped forever.
        let mut current = self.state.budget.load(Ordering::SeqCst);
        loop {
            if current == DISARMED {
                break;
            }
            let admitted = current.min(len);
            match self.state.budget.compare_exchange(
                current,
                current - admitted,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    survives = admitted;
                    break;
                }
                Err(actual) => current = actual,
            }
        }
        self.state.written.fetch_add(survives, Ordering::SeqCst);
        survives as usize
    }
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let survives = self.admit(bytes.len());
        if survives == bytes.len() {
            return self.inner.write_file(name, bytes);
        }
        // Torn replace: the new file exists but holds only the prefix that
        // reached the medium before power-off.
        self.inner.write_file(name, &bytes[..survives])
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let survives = self.admit(bytes.len());
        self.inner.append(name, &bytes[..survives])
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>> {
        self.inner.read_file(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn remove(&self, name: &str) -> Result<()> {
        // A removal after power-off never reaches the medium.
        if self.killed() {
            return Ok(());
        }
        self.inner.remove(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }
}

impl<V> FaultVfs<V> {
    fn killed(&self) -> bool {
        self.state.budget.load(Ordering::SeqCst) == 0
    }
}

/// The splitmix64 mixer: a tiny, high-quality seeded sequence for picking
/// deterministic crash points and corruption offsets without pulling a full
/// RNG into the persistence layer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn unarmed_wrapper_is_transparent_and_counts_bytes() {
        let mem = MemVfs::new();
        let (vfs, handle) = FaultVfs::new(mem.clone());
        vfs.write_file("a", b"hello").unwrap();
        vfs.append("a", b" world").unwrap();
        assert_eq!(mem.read_file("a").unwrap(), b"hello world");
        assert_eq!(handle.bytes_written(), 11);
        assert!(!handle.killed());
    }

    #[test]
    fn kill_tears_the_write_in_flight_at_the_byte_boundary() {
        let mem = MemVfs::new();
        let (vfs, handle) = FaultVfs::new(mem.clone());
        vfs.write_file("wal", b"intact").unwrap();
        handle.arm_kill_after(4);
        // 10-byte append with 4 bytes of budget: exactly 4 survive.
        vfs.append("wal", b"0123456789").unwrap();
        assert!(handle.killed());
        assert_eq!(mem.read_file("wal").unwrap(), b"intact0123");
        // Everything after the kill is silently dropped, including removes.
        vfs.append("wal", b"more").unwrap();
        vfs.write_file("snap", b"new file").unwrap();
        vfs.remove("wal").unwrap();
        assert_eq!(mem.read_file("wal").unwrap(), b"intact0123");
        assert_eq!(mem.read_file("snap").unwrap(), b"");
        // Reads still see the survivors — recovery runs on this state.
        assert_eq!(vfs.read_file("wal").unwrap(), b"intact0123");
    }

    #[test]
    fn zero_budget_kills_immediately_and_disarm_restores_flow() {
        let mem = MemVfs::new();
        let (vfs, handle) = FaultVfs::new(mem.clone());
        handle.arm_kill_after(0);
        vfs.write_file("a", b"gone").unwrap();
        assert_eq!(mem.read_file("a").unwrap(), b"");
        handle.disarm();
        vfs.write_file("a", b"back").unwrap();
        assert_eq!(mem.read_file("a").unwrap(), b"back");
    }

    #[test]
    fn flip_byte_corrupts_at_rest() {
        let mem = MemVfs::new();
        let (vfs, _handle) = FaultVfs::new(mem.clone());
        vfs.write_file("snap", &[0xAA, 0xBB]).unwrap();
        vfs.flip_byte("snap", 1, 0x01).unwrap();
        assert_eq!(mem.read_file("snap").unwrap(), vec![0xAA, 0xBA]);
    }

    #[test]
    fn splitmix_is_deterministic_and_well_spread() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }
}
