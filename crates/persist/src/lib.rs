//! # reis-persist — durability for the REIS reproduction
//!
//! The paper's system (and this reproduction, through PR 5) keeps every
//! piece of host/controller state — quantizers, centroids, the R-DB and
//! R-IVF records, region tables, the page allocator — purely in process
//! memory. Nothing survives exit, which ROADMAP open item 1 names the top
//! gap on the path to a production system. This crate closes it with a
//! classic two-piece durability design:
//!
//! * **Snapshots** ([`snapshot`]) — a fixed-layout, offset-addressed
//!   container: a superblock (versioned magic + a CRC-guarded section
//!   directory) followed by independently CRC32C-checksummed sections. The
//!   byte format is hand-rolled through [`wire`] — the no-op serde shim is
//!   deliberately *not* on this path, so what is written is exactly what is
//!   specified, byte for byte.
//! * **A mutation WAL** ([`wal`]) — an append-only log of length+CRC-framed
//!   mutation records (insert batches, deletes, upserts, compactions)
//!   written between snapshots. Recovery replays the longest valid prefix
//!   and quarantines a torn or corrupt tail instead of failing.
//! * **Storage backends** ([`vfs`]) — a tiny flat-namespace file
//!   abstraction with a real-directory backend, an in-memory backend for
//!   tests, and a deterministic fault-injection wrapper ([`fault`]) that
//!   can kill writes after a byte budget ("power loss") or flip bytes at
//!   rest ("media corruption").
//! * **The epoch store** ([`store`]) — names and sequences the
//!   `snapshot-NNNNNNNN` / `wal-NNNNNNNN` file pairs and finds the newest
//!   intact snapshot to recover from.
//!
//! `reis-core` owns *what* goes in the sections and records (it knows the
//! deployment layout); this crate owns *how* bytes get to storage and back,
//! and what integrity guarantees they carry. Both checksum paths share the
//! single CRC32C implementation in `reis-kernels`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod fault;
pub mod manifest;
pub mod snapshot;
pub mod store;
pub mod vfs;
pub mod wal;
pub mod wire;

pub use error::PersistError;
pub use fault::{splitmix64, FaultHandle, FaultVfs};
pub use manifest::ClusterManifest;
pub use reis_kernels::crc32c;
pub use snapshot::{SnapshotBuilder, SnapshotReader, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use store::{DurableStore, ScrubReport};
pub use vfs::{DirVfs, MemVfs, Vfs};
pub use wal::{WalRecord, WalTail};
pub use wire::{ByteReader, ByteWriter};
