//! The offset-addressed snapshot container.
//!
//! A snapshot is one file with a fixed superblock followed by raw section
//! payloads:
//!
//! ```text
//! offset 0   magic            8 bytes   "REISSNP1" (version-bearing magic)
//!        8   format version   u32       SNAPSHOT_VERSION
//!       12   section count    u32       N
//!       16   directory        N × 24    (id u32, offset u64, len u64, crc32c u32)
//!  16+24N    superblock CRC   u32       crc32c of bytes [0, 16+24N)
//!  20+24N    section payloads           at their directory offsets, in id order
//! ```
//!
//! All integers little-endian. Section ids are opaque to this module —
//! `reis-core` encodes its meaning (meta, per-database quantizers,
//! centroids, entries, layout) into them. The directory and every payload
//! carry independent CRC32C checksums, so [`SnapshotReader::parse`] can
//! pinpoint *what* rotted: a bad superblock, a bad directory, or one bad
//! section. Offsets make sections independently addressable — a reader
//! never scans past data it does not understand.

use reis_kernels::crc32c;

use crate::error::{PersistError, Result};
use crate::wire::{ByteReader, ByteWriter};

/// The version-bearing magic of a snapshot file. The trailing digit is the
/// major format version: readers reject both a foreign magic and a known
/// magic with an incompatible [`SNAPSHOT_VERSION`].
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"REISSNP1";

/// Newest snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Bytes of one directory entry: id + offset + len + crc.
const DIR_ENTRY_BYTES: usize = 4 + 8 + 8 + 4;

/// Accumulates sections, then emits the complete snapshot file.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// A builder with no sections.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Add a section. Ids must be unique; sections are laid out in the
    /// order added, so deterministic callers produce byte-identical files.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id (a writer bug, not a runtime condition).
    pub fn add_section(&mut self, id: u32, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "duplicate snapshot section id {id:#x}"
        );
        self.sections.push((id, payload));
    }

    /// Emit the snapshot file bytes.
    pub fn finish(self) -> Vec<u8> {
        let header_len = 8 + 4 + 4 + self.sections.len() * DIR_ENTRY_BYTES;
        let mut offset = (header_len + 4) as u64; // + superblock CRC
        let mut header = ByteWriter::new();
        header.put_raw(&SNAPSHOT_MAGIC);
        header.put_u32(SNAPSHOT_VERSION);
        header.put_u32(self.sections.len() as u32);
        for (id, payload) in &self.sections {
            header.put_u32(*id);
            header.put_u64(offset);
            header.put_u64(payload.len() as u64);
            header.put_u32(crc32c(payload));
            offset += payload.len() as u64;
        }
        let mut bytes = header.into_bytes();
        debug_assert_eq!(bytes.len(), header_len);
        let superblock_crc = crc32c(&bytes);
        bytes.extend_from_slice(&superblock_crc.to_le_bytes());
        for (_, payload) in self.sections {
            bytes.extend_from_slice(&payload);
        }
        bytes
    }
}

/// A parsed, fully validated snapshot: magic, version, superblock CRC and
/// every section CRC checked up front, so accessors are infallible.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    /// (id, offset, len) per section, in file order.
    directory: Vec<(u32, usize, usize)>,
}

impl<'a> SnapshotReader<'a> {
    /// Parse and validate `bytes` as a snapshot file. `file` names the
    /// source in errors.
    pub fn parse(bytes: &'a [u8], file: &str) -> Result<Self> {
        let corrupt = |detail: String| PersistError::CorruptSnapshot {
            file: file.to_string(),
            detail,
        };
        if bytes.len() < 8 + 4 + 4 + 4 {
            return Err(corrupt(format!(
                "{} bytes is shorter than the minimal superblock",
                bytes.len()
            )));
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(corrupt(format!(
                "bad magic {:02x?} (expected {:02x?})",
                &bytes[..8],
                SNAPSHOT_MAGIC
            )));
        }
        let mut reader = ByteReader::new(&bytes[8..]);
        let version = reader.get_u32().expect("length checked");
        if version != SNAPSHOT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                file: file.to_string(),
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let count = reader.get_u32().expect("length checked") as usize;
        let header_len = 8 + 4 + 4 + count * DIR_ENTRY_BYTES;
        if bytes.len() < header_len + 4 {
            return Err(corrupt(format!(
                "directory of {count} sections does not fit {} bytes",
                bytes.len()
            )));
        }
        let mut directory = Vec::with_capacity(count);
        let mut crcs = Vec::with_capacity(count);
        for _ in 0..count {
            let id = reader.get_u32().expect("length checked");
            let offset = reader.get_u64().expect("length checked") as usize;
            let len = reader.get_u64().expect("length checked") as usize;
            let crc = reader.get_u32().expect("length checked");
            directory.push((id, offset, len));
            crcs.push(crc);
        }
        let stored_superblock_crc = u32::from_le_bytes(
            bytes[header_len..header_len + 4]
                .try_into()
                .expect("4 bytes"),
        );
        let actual = crc32c(&bytes[..header_len]);
        if stored_superblock_crc != actual {
            return Err(corrupt(format!(
                "superblock checksum mismatch (stored {stored_superblock_crc:#010x}, \
                 computed {actual:#010x})"
            )));
        }
        for (&(id, offset, len), &stored) in directory.iter().zip(&crcs) {
            let end = offset.checked_add(len).filter(|&end| end <= bytes.len());
            let Some(end) = end else {
                return Err(corrupt(format!(
                    "section {id:#x} [{offset}, +{len}) runs past the {}-byte file",
                    bytes.len()
                )));
            };
            let actual = crc32c(&bytes[offset..end]);
            if actual != stored {
                return Err(corrupt(format!(
                    "section {id:#x} checksum mismatch (stored {stored:#010x}, \
                     computed {actual:#010x})"
                )));
            }
        }
        Ok(SnapshotReader { bytes, directory })
    }

    /// The payload of section `id`, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.directory
            .iter()
            .find(|(existing, _, _)| *existing == id)
            .map(|&(_, offset, len)| &self.bytes[offset..offset + len])
    }

    /// All section ids, in file order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.directory.iter().map(|&(id, _, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut builder = SnapshotBuilder::new();
        builder.add_section(0x01, b"meta payload".to_vec());
        builder.add_section(0x0102, vec![0u8; 64]);
        builder.add_section(0x0103, (0u8..=255).collect());
        builder.finish()
    }

    #[test]
    fn round_trips_sections_by_id() {
        let bytes = sample();
        let snap = SnapshotReader::parse(&bytes, "snap").unwrap();
        assert_eq!(snap.section_ids(), vec![0x01, 0x0102, 0x0103]);
        assert_eq!(snap.section(0x01).unwrap(), b"meta payload");
        assert_eq!(snap.section(0x0102).unwrap(), &[0u8; 64]);
        assert_eq!(snap.section(0x0103).unwrap().len(), 256);
        assert!(snap.section(0x99).is_none());
    }

    #[test]
    fn building_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn rejects_foreign_magic_and_unknown_version() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotReader::parse(&bytes, "snap"),
            Err(PersistError::CorruptSnapshot { .. })
        ));

        let mut bytes = sample();
        bytes[8] = 99; // version field
        assert!(matches!(
            SnapshotReader::parse(&bytes, "snap"),
            Err(PersistError::UnsupportedVersion {
                found: 99,
                supported: SNAPSHOT_VERSION,
                ..
            })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_caught() {
        let clean = sample();
        for offset in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[offset] ^= 0x40;
            assert!(
                SnapshotReader::parse(&bytes, "snap").is_err(),
                "flip at byte {offset} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_caught() {
        let clean = sample();
        for len in 0..clean.len() {
            assert!(
                SnapshotReader::parse(&clean[..len], "snap").is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let bytes = SnapshotBuilder::new().finish();
        let snap = SnapshotReader::parse(&bytes, "snap").unwrap();
        assert!(snap.section_ids().is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section id")]
    fn duplicate_section_ids_are_a_writer_bug() {
        let mut builder = SnapshotBuilder::new();
        builder.add_section(7, vec![]);
        builder.add_section(7, vec![]);
    }
}
