//! The cluster manifest file.
//!
//! A scale-out deployment (`reis-cluster`) is N independent leaf systems,
//! each with its own snapshot/WAL epoch store. The manifest is the one
//! piece of *cluster-level* durable state tying them together: how many
//! leaves exist, which database id each leaf serves, who owns each initial
//! stable id, and the next unassigned global id. It reuses the snapshot
//! container ([`crate::snapshot`]) so it inherits the same CRC32C
//! superblock + per-section integrity guarantees as every other durable
//! artifact in the tree.
//!
//! The manifest is deliberately tiny and rewritten whole on every cluster
//! `save` (it is not a log); recovery reads the manifest first, then
//! recovers each leaf independently from its own store.

use crate::error::{PersistError, Result};
use crate::snapshot::{SnapshotBuilder, SnapshotReader};
use crate::wire::{ByteReader, ByteWriter};

/// Section id for the fixed-size header (epoch, leaf count, next id).
const SECTION_HEADER: u32 = 1;
/// Section id for the per-leaf database ids.
const SECTION_LEAF_DBS: u32 = 2;
/// Section id for the initial-corpus owner map.
const SECTION_OWNERS: u32 = 3;
/// Section id for the replication factor (absent in pre-replication
/// manifests, which decode as factor 1).
const SECTION_REPLICATION: u32 = 4;

/// Durable description of a sharded deployment.
///
/// `initial_owners[i]` is the shard index owning initial stable id `i`
/// (ids `0..initial_owners.len()` are the deploy-time corpus; ids assigned
/// to later inserts are routed arithmetically and need no map). With a
/// replication factor `R`, each shard is served by `R` consecutive
/// physical leaves (shard-major), so the cluster has
/// `leaf_db_ids.len() / R` shards; unreplicated manifests (`R = 1`) keep
/// shard and leaf indices identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterManifest {
    /// Monotone cluster save epoch.
    pub epoch: u64,
    /// Per-leaf deployed database id, indexed by physical leaf.
    pub leaf_db_ids: Vec<u32>,
    /// Next unassigned global stable id.
    pub next_global: u32,
    /// Owning shard index per initial stable id.
    pub initial_owners: Vec<u32>,
    /// Replica leaves per shard (1 when unreplicated).
    pub replication: u32,
}

impl ClusterManifest {
    /// Number of physical leaves in the deployment.
    pub fn num_leaves(&self) -> usize {
        self.leaf_db_ids.len()
    }

    /// Number of shards (`num_leaves / replication`).
    pub fn num_shards(&self) -> usize {
        self.leaf_db_ids.len() / self.replication.max(1) as usize
    }

    /// Encode the manifest as a snapshot-container file image.
    pub fn encode(&self) -> Vec<u8> {
        let mut header = ByteWriter::new();
        header.put_u64(self.epoch);
        header.put_u32(self.leaf_db_ids.len() as u32);
        header.put_u32(self.next_global);
        let mut dbs = ByteWriter::new();
        dbs.put_u32_slice(&self.leaf_db_ids);
        let mut owners = ByteWriter::new();
        owners.put_u32_slice(&self.initial_owners);
        let mut replication = ByteWriter::new();
        replication.put_u32(self.replication);

        let mut builder = SnapshotBuilder::new();
        builder.add_section(SECTION_HEADER, header.into_bytes());
        builder.add_section(SECTION_LEAF_DBS, dbs.into_bytes());
        builder.add_section(SECTION_OWNERS, owners.into_bytes());
        builder.add_section(SECTION_REPLICATION, replication.into_bytes());
        builder.finish()
    }

    /// Decode a manifest file image, verifying container checksums and the
    /// leaf-count / owner-map consistency invariants.
    pub fn decode(bytes: &[u8], file: &str) -> Result<Self> {
        let reader = SnapshotReader::parse(bytes, file)?;
        let section = |id: u32, name: &str| {
            reader.section(id).ok_or_else(|| {
                PersistError::Malformed(format!("manifest {file} missing {name} section"))
            })
        };

        let mut header = ByteReader::new(section(SECTION_HEADER, "header")?);
        let epoch = header.get_u64()?;
        let num_leaves = header.get_u32()? as usize;
        let next_global = header.get_u32()?;
        header.expect_end()?;

        let mut dbs = ByteReader::new(section(SECTION_LEAF_DBS, "leaf-db")?);
        let leaf_db_ids = dbs.get_u32_vec()?;
        dbs.expect_end()?;

        let mut owner_reader = ByteReader::new(section(SECTION_OWNERS, "owner-map")?);
        let initial_owners = owner_reader.get_u32_vec()?;
        owner_reader.expect_end()?;

        // Pre-replication manifests lack the section: factor 1.
        let replication = match reader.section(SECTION_REPLICATION) {
            Some(bytes) => {
                let mut replication_reader = ByteReader::new(bytes);
                let replication = replication_reader.get_u32()?;
                replication_reader.expect_end()?;
                replication
            }
            None => 1,
        };

        if leaf_db_ids.len() != num_leaves {
            return Err(PersistError::Malformed(format!(
                "manifest {file} header claims {num_leaves} leaves but lists {}",
                leaf_db_ids.len()
            )));
        }
        if replication == 0 || !num_leaves.is_multiple_of(replication as usize) {
            return Err(PersistError::Malformed(format!(
                "manifest {file} cannot group {num_leaves} leaves into \
                 replica sets of {replication}"
            )));
        }
        let num_shards = num_leaves / replication as usize;
        if let Some(&bad) = initial_owners
            .iter()
            .find(|&&shard| shard as usize >= num_shards)
        {
            return Err(PersistError::Malformed(format!(
                "manifest {file} owner map names shard {bad} of {num_shards}"
            )));
        }
        if (next_global as usize) < initial_owners.len() {
            return Err(PersistError::Malformed(format!(
                "manifest {file} next_global {next_global} precedes the \
                 {}-entry initial corpus",
                initial_owners.len()
            )));
        }
        Ok(ClusterManifest {
            epoch,
            leaf_db_ids,
            next_global,
            initial_owners,
            replication,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterManifest {
        ClusterManifest {
            epoch: 7,
            leaf_db_ids: vec![1, 1, 2],
            next_global: 10,
            initial_owners: vec![0, 0, 1, 1, 2, 2, 0, 1],
            replication: 1,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let manifest = sample();
        let bytes = manifest.encode();
        let decoded = ClusterManifest::decode(&bytes, "manifest").unwrap();
        assert_eq!(decoded, manifest);
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let bytes = sample().encode();
        for offset in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x40;
            assert!(
                ClusterManifest::decode(&corrupted, "manifest").is_err(),
                "flip at byte {offset} went undetected"
            );
        }
    }

    #[test]
    fn inconsistent_manifests_are_rejected() {
        let mut bad_owner = sample();
        bad_owner.initial_owners[3] = 9;
        let bytes = bad_owner.encode();
        assert!(ClusterManifest::decode(&bytes, "manifest").is_err());

        let mut bad_next = sample();
        bad_next.next_global = 2;
        let bytes = bad_next.encode();
        assert!(ClusterManifest::decode(&bytes, "manifest").is_err());

        // Leaves must divide into replica groups, and owners are shard
        // indices, so owner validity depends on the factor.
        let mut bad_replication = sample();
        bad_replication.replication = 2;
        let bytes = bad_replication.encode();
        assert!(ClusterManifest::decode(&bytes, "manifest").is_err());
    }

    #[test]
    fn replicated_manifest_round_trips_and_scopes_owners_to_shards() {
        let manifest = ClusterManifest {
            epoch: 3,
            leaf_db_ids: vec![1, 1, 2, 2],
            next_global: 6,
            initial_owners: vec![0, 1, 0, 1, 1, 0],
            replication: 2,
        };
        let bytes = manifest.encode();
        let decoded = ClusterManifest::decode(&bytes, "manifest").unwrap();
        assert_eq!(decoded, manifest);
        assert_eq!(decoded.num_leaves(), 4);
        assert_eq!(decoded.num_shards(), 2);

        // Owner naming a shard ≥ num_shards (even though < num_leaves) is
        // rejected under replication.
        let mut bad = manifest.clone();
        bad.initial_owners[2] = 3;
        let bytes = bad.encode();
        assert!(ClusterManifest::decode(&bytes, "manifest").is_err());
    }
}
