//! The hand-rolled binary wire format.
//!
//! Everything durable — snapshot sections and WAL record payloads — is
//! encoded through [`ByteWriter`] and decoded through [`ByteReader`]:
//! little-endian fixed-width integers, `f32` as its IEEE-754 bit pattern,
//! and variable-length byte strings with a `u32` length prefix. No
//! reflection, no derive magic, no silent format drift: the bytes on
//! storage are exactly the calls made here, which is what lets the golden
//! fixture test pin the format.

use crate::error::{PersistError, Result};

/// Append-only encoder of the wire format.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as the little-endian bytes of its IEEE-754 bit
    /// pattern (bit-exact round-trip, NaNs included).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append raw bytes with no framing (the caller's layout fixes the
    /// length).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u32` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.put_raw(bytes);
    }

    /// Append a `u32` count followed by each value (little-endian).
    pub fn put_u32_slice(&mut self, values: &[u32]) {
        self.put_u32(values.len() as u32);
        for &v in values {
            self.put_u32(v);
        }
    }

    /// Append a `u32` count followed by each `f32` bit pattern.
    pub fn put_f32_slice(&mut self, values: &[f32]) {
        self.put_u32(values.len() as u32);
        for &v in values {
            self.put_f32(v);
        }
    }
}

/// Cursor-based decoder of the wire format. Every accessor bounds-checks
/// and returns [`PersistError::Malformed`] instead of panicking — corrupt
/// bytes must never take the process down.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader consumed everything.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::Malformed(format!(
                "need {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Read an `f32` from its IEEE-754 bit pattern.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read a `u32`-counted slice of `u32` values.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let count = self.get_u32()? as usize;
        let bytes = self.take(count.checked_mul(4).ok_or_else(|| {
            PersistError::Malformed(format!("u32 slice count {count} overflows"))
        })?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Read a `u32`-counted slice of `f32` values.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>> {
        Ok(self
            .get_u32_vec()?
            .into_iter()
            .map(f32::from_bits)
            .collect())
    }

    /// Fail unless the reader consumed every byte — decoding must account
    /// for the whole payload, or the format drifted.
    pub fn expect_end(&self) -> Result<()> {
        if !self.is_empty() {
            return Err(PersistError::Malformed(format!(
                "{} trailing bytes after a complete decode",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f32(-0.0);
        w.put_f32(f32::NAN);
        w.put_bytes(b"chunk");
        w.put_u32_slice(&[1, u32::MAX]);
        w.put_f32_slice(&[1.5, -2.25e-8]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f32().unwrap().is_nan());
        assert_eq!(r.get_bytes().unwrap(), b"chunk");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, u32::MAX]);
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.5, -2.25e-8]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();
        // Cut into the payload: the length prefix promises more than exists.
        let mut r = ByteReader::new(&bytes[..6]);
        assert!(matches!(r.get_bytes(), Err(PersistError::Malformed(_))));
        // A bogus huge count must not allocate or wrap.
        let mut huge = ByteWriter::new();
        huge.put_u32(u32::MAX);
        let huge = huge.into_bytes();
        assert!(matches!(
            ByteReader::new(&huge).get_u32_vec(),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn expect_end_flags_trailing_bytes() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
        r.get_u8().unwrap();
        r.expect_end().unwrap();
    }
}
