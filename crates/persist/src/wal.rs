//! The append-only mutation WAL.
//!
//! Between snapshots, every mutation is appended to the current epoch's
//! WAL file as one self-checking frame:
//!
//! ```text
//! [payload len u32][payload crc32c u32][payload]
//! ```
//!
//! The payload is a [`WalRecord`] in the [`crate::wire`] format: an opcode
//! byte, the target database id, and the operation's arguments. Replay
//! applies records through the ordinary mutation paths, so the WAL never
//! needs to encode any *derived* state (segments, tombstones, relocation
//! tables) — it re-derives on replay, byte-identically.
//!
//! Reading is prefix-consistent by construction: [`read_records`] decodes
//! frames until the first one that is truncated, checksum-broken or
//! undecodable, and reports everything from that offset on as a
//! quarantined tail ([`WalTail`]). A torn append (power loss mid-frame)
//! therefore costs exactly the operations that were never acknowledged as
//! durable — never a panic, never a misparse of half-written bytes.

use reis_kernels::crc32c;

use crate::error::{PersistError, Result};
use crate::wire::{ByteReader, ByteWriter};

/// Bytes of a frame header (length + checksum).
pub const FRAME_HEADER_BYTES: usize = 8;

const OP_INSERT_BATCH: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_UPSERT: u8 = 3;
const OP_COMPACT: u8 = 4;
const OP_INSERT_BATCH_AT: u8 = 5;

/// One durable mutation record.
///
/// Targets are *stable entry ids* (the OOB `dadr` namespace), and an
/// insert batch carries the ids the live system assigned, so replay can
/// verify it re-derives the same assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch insert with the vectors, documents and assigned stable ids.
    InsertBatch {
        /// Target deployed database.
        db_id: u32,
        /// One embedding per inserted entry.
        vectors: Vec<Vec<f32>>,
        /// One document chunk per inserted entry.
        documents: Vec<Vec<u8>>,
        /// The stable ids the system assigned, in batch order.
        ids: Vec<u32>,
    },
    /// Deletion of one stable id.
    Delete {
        /// Target deployed database.
        db_id: u32,
        /// Stable id of the deleted entry.
        id: u32,
    },
    /// Replacement of one stable id's embedding and document.
    Upsert {
        /// Target deployed database.
        db_id: u32,
        /// Stable id of the replaced entry.
        id: u32,
        /// The replacement embedding.
        vector: Vec<f32>,
        /// The replacement document chunk.
        document: Vec<u8>,
    },
    /// An explicit compaction pass (folds segments/tombstones into a fresh
    /// base region; search-invisible but changes physical layout).
    Compact {
        /// Target deployed database.
        db_id: u32,
    },
    /// A batch insert at *caller-chosen* stable ids (cluster routing uses
    /// this so every leaf stores the globally assigned id natively).
    /// Unlike [`WalRecord::InsertBatch`], replay takes the recorded ids as
    /// authoritative instead of cross-checking a re-derivation.
    InsertBatchAt {
        /// Target deployed database.
        db_id: u32,
        /// One embedding per inserted entry.
        vectors: Vec<Vec<f32>>,
        /// One document chunk per inserted entry.
        documents: Vec<Vec<u8>>,
        /// The caller-chosen stable ids, in batch order.
        ids: Vec<u32>,
    },
}

impl WalRecord {
    /// The deployed database the record targets.
    pub fn db_id(&self) -> u32 {
        match self {
            WalRecord::InsertBatch { db_id, .. }
            | WalRecord::Delete { db_id, .. }
            | WalRecord::Upsert { db_id, .. }
            | WalRecord::Compact { db_id }
            | WalRecord::InsertBatchAt { db_id, .. } => *db_id,
        }
    }

    /// Encode the record payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            WalRecord::InsertBatch {
                db_id,
                vectors,
                documents,
                ids,
            } => {
                assert_eq!(vectors.len(), documents.len(), "one document per vector");
                assert_eq!(vectors.len(), ids.len(), "one assigned id per vector");
                w.put_u8(OP_INSERT_BATCH);
                w.put_u32(*db_id);
                w.put_u32(vectors.len() as u32);
                for ((vector, document), id) in vectors.iter().zip(documents).zip(ids) {
                    w.put_f32_slice(vector);
                    w.put_bytes(document);
                    w.put_u32(*id);
                }
            }
            WalRecord::Delete { db_id, id } => {
                w.put_u8(OP_DELETE);
                w.put_u32(*db_id);
                w.put_u32(*id);
            }
            WalRecord::Upsert {
                db_id,
                id,
                vector,
                document,
            } => {
                w.put_u8(OP_UPSERT);
                w.put_u32(*db_id);
                w.put_u32(*id);
                w.put_f32_slice(vector);
                w.put_bytes(document);
            }
            WalRecord::Compact { db_id } => {
                w.put_u8(OP_COMPACT);
                w.put_u32(*db_id);
            }
            WalRecord::InsertBatchAt {
                db_id,
                vectors,
                documents,
                ids,
            } => {
                assert_eq!(vectors.len(), documents.len(), "one document per vector");
                assert_eq!(vectors.len(), ids.len(), "one chosen id per vector");
                w.put_u8(OP_INSERT_BATCH_AT);
                w.put_u32(*db_id);
                w.put_u32(vectors.len() as u32);
                for ((vector, document), id) in vectors.iter().zip(documents).zip(ids) {
                    w.put_f32_slice(vector);
                    w.put_bytes(document);
                    w.put_u32(*id);
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a record payload. The payload must decode exactly — trailing
    /// bytes are as malformed as missing ones.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(payload);
        let op = r.get_u8()?;
        let db_id = r.get_u32()?;
        let record = match op {
            OP_INSERT_BATCH => {
                let count = r.get_u32()? as usize;
                let mut vectors = Vec::with_capacity(count.min(payload.len()));
                let mut documents = Vec::with_capacity(count.min(payload.len()));
                let mut ids = Vec::with_capacity(count.min(payload.len()));
                for _ in 0..count {
                    vectors.push(r.get_f32_vec()?);
                    documents.push(r.get_bytes()?.to_vec());
                    ids.push(r.get_u32()?);
                }
                WalRecord::InsertBatch {
                    db_id,
                    vectors,
                    documents,
                    ids,
                }
            }
            OP_DELETE => WalRecord::Delete {
                db_id,
                id: r.get_u32()?,
            },
            OP_UPSERT => WalRecord::Upsert {
                db_id,
                id: r.get_u32()?,
                vector: r.get_f32_vec()?,
                document: r.get_bytes()?.to_vec(),
            },
            OP_COMPACT => WalRecord::Compact { db_id },
            OP_INSERT_BATCH_AT => {
                let count = r.get_u32()? as usize;
                let mut vectors = Vec::with_capacity(count.min(payload.len()));
                let mut documents = Vec::with_capacity(count.min(payload.len()));
                let mut ids = Vec::with_capacity(count.min(payload.len()));
                for _ in 0..count {
                    vectors.push(r.get_f32_vec()?);
                    documents.push(r.get_bytes()?.to_vec());
                    ids.push(r.get_u32()?);
                }
                WalRecord::InsertBatchAt {
                    db_id,
                    vectors,
                    documents,
                    ids,
                }
            }
            other => {
                return Err(PersistError::Malformed(format!(
                    "unknown WAL opcode {other}"
                )))
            }
        };
        r.expect_end()?;
        Ok(record)
    }

    /// Encode the record as one framed WAL append.
    pub fn encode_framed(&self) -> Vec<u8> {
        frame(&self.encode())
    }
}

/// Frame a payload for appending: length, CRC32C, payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32c(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// What the end of a WAL file looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte belonged to a valid frame.
    Clean,
    /// Bytes from `offset` on were quarantined: `detail` says why the
    /// frame there failed validation. Everything before `offset` was
    /// replayable.
    Quarantined {
        /// Byte offset of the first invalid frame.
        offset: u64,
        /// Why the frame failed.
        detail: String,
    },
}

impl WalTail {
    /// Whether the whole file was valid.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }
}

/// Decode the longest valid prefix of a WAL file into records.
///
/// Returns the records and the tail status. A record for an unknown opcode
/// or with a mismatched checksum terminates decoding at that frame — the
/// caller decides whether a non-clean tail is tolerable (crash recovery)
/// or an error (strict audits; see [`read_records_strict`]).
pub fn read_records(bytes: &[u8]) -> (Vec<WalRecord>, WalTail) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER_BYTES {
            return (
                records,
                WalTail::Quarantined {
                    offset: pos as u64,
                    detail: format!("{remaining}-byte tail is shorter than a frame header"),
                },
            );
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let stored_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if remaining - FRAME_HEADER_BYTES < len {
            return (
                records,
                WalTail::Quarantined {
                    offset: pos as u64,
                    detail: format!(
                        "frame promises {len} payload bytes, only {} remain",
                        remaining - FRAME_HEADER_BYTES
                    ),
                },
            );
        }
        let payload = &bytes[pos + FRAME_HEADER_BYTES..pos + FRAME_HEADER_BYTES + len];
        let actual = crc32c(payload);
        if actual != stored_crc {
            return (
                records,
                WalTail::Quarantined {
                    offset: pos as u64,
                    detail: format!(
                        "payload checksum mismatch (stored {stored_crc:#010x}, \
                         computed {actual:#010x})"
                    ),
                },
            );
        }
        match WalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(err) => {
                return (
                    records,
                    WalTail::Quarantined {
                        offset: pos as u64,
                        detail: format!("checksummed payload failed to decode: {err}"),
                    },
                )
            }
        }
        pos += FRAME_HEADER_BYTES + len;
    }
    (records, WalTail::Clean)
}

/// [`read_records`], but a non-clean tail is a [`PersistError::CorruptWal`]
/// — for contexts where quarantining is not acceptable (fixture audits,
/// offline verification).
pub fn read_records_strict(bytes: &[u8], file: &str) -> Result<Vec<WalRecord>> {
    match read_records(bytes) {
        (records, WalTail::Clean) => Ok(records),
        (_, WalTail::Quarantined { offset, detail }) => Err(PersistError::CorruptWal {
            file: file.to_string(),
            offset,
            detail,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::InsertBatch {
                db_id: 0,
                vectors: vec![vec![0.5, -1.25], vec![3.0, f32::MIN_POSITIVE]],
                documents: vec![b"doc a".to_vec(), b"doc b".to_vec()],
                ids: vec![10, 11],
            },
            WalRecord::Delete { db_id: 0, id: 3 },
            WalRecord::Upsert {
                db_id: 2,
                id: 10,
                vector: vec![-0.0, 7.5],
                document: b"replacement".to_vec(),
            },
            WalRecord::Compact { db_id: 2 },
            WalRecord::InsertBatchAt {
                db_id: 1,
                vectors: vec![vec![1.5, -2.0]],
                documents: vec![b"routed doc".to_vec()],
                ids: vec![42],
            },
        ]
    }

    fn log_of(records: &[WalRecord]) -> Vec<u8> {
        let mut log = Vec::new();
        for record in records {
            log.extend_from_slice(&record.encode_framed());
        }
        log
    }

    #[test]
    fn records_round_trip_through_frames() {
        let records = sample_records();
        let log = log_of(&records);
        let (decoded, tail) = read_records(&log);
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(decoded, records);
        assert_eq!(read_records_strict(&log, "wal").unwrap(), records);
    }

    #[test]
    fn empty_log_is_clean() {
        let (records, tail) = read_records(&[]);
        assert!(records.is_empty());
        assert!(tail.is_clean());
    }

    #[test]
    fn every_truncation_keeps_the_valid_prefix() {
        let records = sample_records();
        let log = log_of(&records);
        // Frame boundaries, for computing how many full frames survive.
        let mut boundaries = vec![0usize];
        for record in &records {
            boundaries.push(boundaries.last().unwrap() + record.encode_framed().len());
        }
        for len in 0..log.len() {
            let (decoded, tail) = read_records(&log[..len]);
            let full_frames = boundaries.iter().filter(|&&b| b <= len).count() - 1;
            assert_eq!(decoded, records[..full_frames], "truncation to {len}");
            if len == *boundaries.last().unwrap() {
                assert!(tail.is_clean());
            } else if boundaries.contains(&len) {
                assert!(tail.is_clean(), "truncation at a frame boundary is clean");
            } else {
                assert!(!tail.is_clean(), "mid-frame truncation to {len}");
                assert!(read_records_strict(&log[..len], "wal").is_err());
            }
        }
    }

    #[test]
    fn every_byte_flip_quarantines_from_the_broken_frame() {
        let records = sample_records();
        let log = log_of(&records);
        let mut boundaries = vec![0usize];
        for record in &records {
            boundaries.push(boundaries.last().unwrap() + record.encode_framed().len());
        }
        for offset in 0..log.len() {
            let mut corrupted = log.clone();
            corrupted[offset] ^= 0x10;
            let (decoded, tail) = read_records(&corrupted);
            // Frames strictly before the corrupted one must survive intact.
            let broken_frame = boundaries[1..].iter().filter(|&&b| b <= offset).count();
            match tail {
                WalTail::Clean => panic!("flip at byte {offset} went undetected"),
                WalTail::Quarantined { offset: at, .. } => {
                    assert!(
                        at as usize <= offset,
                        "quarantine at {at} started after the corruption at {offset}"
                    );
                    assert!(
                        decoded.len() >= broken_frame.min(records.len()).saturating_sub(1)
                            && decoded.len() <= records.len(),
                        "flip at {offset}: {} records survived",
                        decoded.len()
                    );
                    assert_eq!(
                        decoded[..],
                        records[..decoded.len()],
                        "surviving prefix must be exact (flip at {offset})"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_opcodes_are_quarantined_not_panicked() {
        let bogus = frame(&[0xEEu8, 0, 0, 0, 0]);
        let (records, tail) = read_records(&bogus);
        assert!(records.is_empty());
        assert!(matches!(tail, WalTail::Quarantined { offset: 0, .. }));
    }
}
