//! Structured durability errors.
//!
//! Every failure mode of the persistence layer is a distinct variant, so
//! `reis-core` can surface checksum mismatches as its own `Corrupt*` error
//! variants while treating plain I/O failures generically. The enum is
//! `#[non_exhaustive]`: future formats may add failure modes without a
//! breaking change.

use std::error::Error;
use std::fmt;

/// Result alias of the persistence layer.
pub type Result<T> = std::result::Result<T, PersistError>;

/// A durability failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// An underlying storage operation failed (message carries the OS
    /// error text; kept as a string so the error stays `Clone + PartialEq`
    /// for test assertions).
    Io {
        /// The file the operation targeted.
        file: String,
        /// What the backend reported.
        detail: String,
    },
    /// A file that should exist does not.
    NotFound {
        /// The missing file.
        file: String,
    },
    /// A snapshot failed validation: bad magic, short superblock, a
    /// directory or section checksum mismatch, or an out-of-bounds section.
    CorruptSnapshot {
        /// The snapshot file.
        file: String,
        /// What failed to validate.
        detail: String,
    },
    /// A WAL frame failed validation at `offset` (length prefix runs past
    /// the file, or the payload checksum does not match).
    CorruptWal {
        /// The WAL file.
        file: String,
        /// Byte offset of the bad frame.
        offset: u64,
        /// What failed to validate.
        detail: String,
    },
    /// The snapshot superblock carries a format version this build does not
    /// understand.
    UnsupportedVersion {
        /// The snapshot file.
        file: String,
        /// Version found in the superblock.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// A section or record payload decoded inconsistently (e.g. a length
    /// prefix pointing past the payload) even though its checksum matched.
    Malformed(String),
    /// No intact snapshot exists to recover from.
    NoSnapshot,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { file, detail } => {
                write!(f, "storage I/O failed on '{file}': {detail}")
            }
            PersistError::NotFound { file } => write!(f, "file '{file}' does not exist"),
            PersistError::CorruptSnapshot { file, detail } => {
                write!(f, "corrupt snapshot '{file}': {detail}")
            }
            PersistError::CorruptWal {
                file,
                offset,
                detail,
            } => write!(
                f,
                "corrupt WAL frame in '{file}' at byte {offset}: {detail}"
            ),
            PersistError::UnsupportedVersion {
                file,
                found,
                supported,
            } => write!(
                f,
                "snapshot '{file}' has format version {found}, this build supports up to \
                 {supported}"
            ),
            PersistError::Malformed(detail) => write!(f, "malformed durable payload: {detail}"),
            PersistError::NoSnapshot => write!(f, "no intact snapshot to recover from"),
        }
    }
}

impl Error for PersistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_structured_and_specific() {
        let err = PersistError::CorruptWal {
            file: "wal-00000003".into(),
            offset: 128,
            detail: "payload checksum mismatch".into(),
        };
        let text = err.to_string();
        assert!(text.contains("wal-00000003"));
        assert!(text.contains("128"));
        assert!(text.contains("checksum"));

        let err = PersistError::UnsupportedVersion {
            file: "snapshot-00000001".into(),
            found: 9,
            supported: 1,
        };
        assert!(err.to_string().contains("version 9"));
    }
}
