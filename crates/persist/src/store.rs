//! Epoch naming and discovery over a [`Vfs`].
//!
//! Durable state is a sequence of *epochs*. Epoch `s` is the pair
//! `snapshot-SSSSSSSS` (the full state at the moment the epoch began) and
//! `wal-SSSSSSSS` (every mutation since). A save writes the next epoch's
//! snapshot **completely, first**, then creates its empty WAL — so at any
//! crash point the newest intact snapshot `s`, plus the WALs `s, s+1, …`
//! that exist beyond it, reconstruct a consistent prefix: snapshot `s+1`
//! is by construction equivalent to snapshot `s` plus a full replay of
//! `wal-s`.
//!
//! The store only names, lists and moves bytes; snapshot/WAL *content* is
//! the concern of [`crate::snapshot`] / [`crate::wal`] and of `reis-core`,
//! which owns the section payloads.

use crate::error::{PersistError, Result};
use crate::snapshot::SnapshotReader;
use crate::vfs::Vfs;
use crate::wal;
use reis_telemetry::{CounterId, Telemetry};

/// What a [`DurableStore::scrub`] pass found: every epoch artifact's
/// integrity status, checked without loading any of it into a system.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Snapshot files examined.
    pub snapshots_checked: usize,
    /// WAL files examined.
    pub wals_checked: usize,
    /// Sequence numbers of snapshots that failed container validation
    /// (bad magic/version, superblock or section checksum mismatch).
    pub corrupt_snapshots: Vec<u64>,
    /// Sequence numbers of WALs whose tail recovery would quarantine
    /// (torn frame, payload checksum mismatch, undecodable record).
    pub quarantined_wals: Vec<u64>,
}

impl ScrubReport {
    /// Whether every artifact checked out intact.
    pub fn is_clean(&self) -> bool {
        self.corrupt_snapshots.is_empty() && self.quarantined_wals.is_empty()
    }

    /// Total corrupt artifacts (snapshots plus quarantinable WAL tails).
    pub fn corrupt_artifacts(&self) -> usize {
        self.corrupt_snapshots.len() + self.quarantined_wals.len()
    }
}

/// Prefix of snapshot files.
pub const SNAPSHOT_PREFIX: &str = "snapshot-";
/// Prefix of WAL files.
pub const WAL_PREFIX: &str = "wal-";

/// A [`Vfs`] plus the epoch naming scheme.
#[derive(Debug)]
pub struct DurableStore {
    vfs: Box<dyn Vfs>,
    /// Durability I/O counters (WAL appends, snapshot writes and their byte
    /// volumes). Disabled by default; the owning system attaches its handle
    /// via [`set_telemetry`](Self::set_telemetry).
    telemetry: Telemetry,
}

impl DurableStore {
    /// A store over any VFS backend.
    pub fn new(vfs: Box<dyn Vfs>) -> Self {
        DurableStore {
            vfs,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; subsequent WAL appends and snapshot
    /// writes record their counts and byte volumes through it.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// A store over a real directory.
    pub fn dir(root: impl Into<std::path::PathBuf>) -> Self {
        DurableStore::new(Box::new(crate::vfs::DirVfs::new(root)))
    }

    /// The file name of epoch `seq`'s snapshot.
    pub fn snapshot_name(seq: u64) -> String {
        format!("{SNAPSHOT_PREFIX}{seq:08}")
    }

    /// The file name of epoch `seq`'s WAL.
    pub fn wal_name(seq: u64) -> String {
        format!("{WAL_PREFIX}{seq:08}")
    }

    fn parse_seq(name: &str, prefix: &str) -> Option<u64> {
        let digits = name.strip_prefix(prefix)?;
        if digits.len() != 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    /// Snapshot sequence numbers present, descending (newest first). Files
    /// that merely exist — including torn ones — are listed; validity is
    /// the reader's call.
    pub fn snapshot_seqs_desc(&self) -> Result<Vec<u64>> {
        let mut seqs: Vec<u64> = self
            .vfs
            .list()?
            .iter()
            .filter_map(|name| Self::parse_seq(name, SNAPSHOT_PREFIX))
            .collect();
        seqs.sort_unstable_by(|a, b| b.cmp(a));
        Ok(seqs)
    }

    /// WAL sequence numbers present, ascending.
    pub fn wal_seqs_asc(&self) -> Result<Vec<u64>> {
        let mut seqs: Vec<u64> = self
            .vfs
            .list()?
            .iter()
            .filter_map(|name| Self::parse_seq(name, WAL_PREFIX))
            .collect();
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Write epoch `seq`'s snapshot file in one call.
    pub fn write_snapshot(&self, seq: u64, bytes: &[u8]) -> Result<()> {
        self.vfs.write_file(&Self::snapshot_name(seq), bytes)?;
        self.telemetry.count(CounterId::SnapshotWrites, 1);
        self.telemetry
            .count(CounterId::SnapshotBytes, bytes.len() as u64);
        Ok(())
    }

    /// Read epoch `seq`'s snapshot file.
    pub fn read_snapshot(&self, seq: u64) -> Result<Vec<u8>> {
        self.vfs.read_file(&Self::snapshot_name(seq))
    }

    /// Create epoch `seq`'s WAL, empty. Creating the WAL is what makes the
    /// epoch's snapshot the *newest complete* one, so this must only be
    /// called after [`write_snapshot`](Self::write_snapshot) returned.
    pub fn create_wal(&self, seq: u64) -> Result<()> {
        self.vfs.write_file(&Self::wal_name(seq), &[])
    }

    /// Append one framed record to epoch `seq`'s WAL.
    pub fn append_wal(&self, seq: u64, frame: &[u8]) -> Result<()> {
        self.vfs.append(&Self::wal_name(seq), frame)?;
        self.telemetry.count(CounterId::WalAppends, 1);
        self.telemetry
            .count(CounterId::WalAppendBytes, frame.len() as u64);
        Ok(())
    }

    /// Read epoch `seq`'s WAL, or an empty log if the file never made it
    /// to storage (a crash right after the snapshot write).
    pub fn read_wal(&self, seq: u64) -> Result<Vec<u8>> {
        match self.vfs.read_file(&Self::wal_name(seq)) {
            Ok(bytes) => Ok(bytes),
            Err(PersistError::NotFound { .. }) => Ok(Vec::new()),
            Err(err) => Err(err),
        }
    }

    /// Garbage-collect every snapshot and WAL of epochs before `seq`.
    /// Called after a new epoch is fully durable; `seq` should be the
    /// *previous* epoch, keeping one full fallback epoch behind the
    /// current one.
    pub fn prune_before(&self, seq: u64) -> Result<()> {
        for old in self.snapshot_seqs_desc()? {
            if old < seq {
                self.vfs.remove(&Self::snapshot_name(old))?;
            }
        }
        for old in self.wal_seqs_asc()? {
            if old < seq {
                self.vfs.remove(&Self::wal_name(old))?;
            }
        }
        Ok(())
    }

    /// Verify the integrity of every epoch artifact without loading any of
    /// it: each snapshot's container (magic, version, superblock CRC and
    /// every section CRC, via [`SnapshotReader::parse`]) and each WAL's
    /// frame chain (length + CRC32C per frame, decodable payloads).
    /// Corrupt artifacts are *reported*, never repaired or removed — the
    /// recovery path decides what to fall back to or quarantine. Each
    /// corrupt snapshot and quarantinable WAL tail found bumps the
    /// [`CounterId::ScrubCorruptSnapshots`] /
    /// [`CounterId::ScrubQuarantinedWals`] counters.
    ///
    /// # Errors
    ///
    /// Storage I/O errors only; corruption is a report entry, not an error.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let mut report = ScrubReport::default();
        for seq in self.snapshot_seqs_desc()? {
            report.snapshots_checked += 1;
            let bytes = self.read_snapshot(seq)?;
            if SnapshotReader::parse(&bytes, &Self::snapshot_name(seq)).is_err() {
                report.corrupt_snapshots.push(seq);
            }
        }
        report.corrupt_snapshots.sort_unstable();
        for seq in self.wal_seqs_asc()? {
            report.wals_checked += 1;
            let bytes = self.read_wal(seq)?;
            let (_, tail) = wal::read_records(&bytes);
            if !tail.is_clean() {
                report.quarantined_wals.push(seq);
            }
        }
        self.telemetry.count(
            CounterId::ScrubCorruptSnapshots,
            report.corrupt_snapshots.len() as u64,
        );
        self.telemetry.count(
            CounterId::ScrubQuarantinedWals,
            report.quarantined_wals.len() as u64,
        );
        Ok(report)
    }

    /// Direct access to the backend (fixture generation, corruption
    /// helpers in tests).
    pub fn vfs(&self) -> &dyn Vfs {
        &*self.vfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn names_are_zero_padded_and_parse_back() {
        assert_eq!(DurableStore::snapshot_name(7), "snapshot-00000007");
        assert_eq!(DurableStore::wal_name(123), "wal-00000123");
        assert_eq!(
            DurableStore::parse_seq("snapshot-00000042", SNAPSHOT_PREFIX),
            Some(42)
        );
        assert_eq!(
            DurableStore::parse_seq("snapshot-42", SNAPSHOT_PREFIX),
            None
        );
        assert_eq!(
            DurableStore::parse_seq("wal-00000042", SNAPSHOT_PREFIX),
            None
        );
        assert_eq!(
            DurableStore::parse_seq("snapshot-0000004x", SNAPSHOT_PREFIX),
            None
        );
    }

    #[test]
    fn discovery_orders_epochs_and_ignores_foreign_files() {
        let mem = MemVfs::new();
        mem.write_file("notes.txt", b"unrelated").unwrap();
        let store = DurableStore::new(Box::new(mem));
        store.write_snapshot(0, b"s0").unwrap();
        store.create_wal(0).unwrap();
        store.write_snapshot(2, b"s2").unwrap();
        store.create_wal(2).unwrap();
        store.write_snapshot(1, b"s1").unwrap();
        store.create_wal(1).unwrap();
        assert_eq!(store.snapshot_seqs_desc().unwrap(), vec![2, 1, 0]);
        assert_eq!(store.wal_seqs_asc().unwrap(), vec![0, 1, 2]);
        assert_eq!(store.read_snapshot(2).unwrap(), b"s2");

        store.prune_before(2).unwrap();
        assert_eq!(store.snapshot_seqs_desc().unwrap(), vec![2]);
        assert_eq!(store.wal_seqs_asc().unwrap(), vec![2]);
    }

    #[test]
    fn scrub_checks_every_epoch_and_reports_corruption() {
        use crate::snapshot::SnapshotBuilder;
        use crate::wal::WalRecord;

        let mem = MemVfs::new();
        let store = DurableStore::new(Box::new(mem.clone()));
        let mut builder = SnapshotBuilder::new();
        builder.add_section(1, b"state".to_vec());
        let image = builder.finish();
        store.write_snapshot(0, &image).unwrap();
        store.create_wal(0).unwrap();
        let record = WalRecord::Delete { db_id: 1, id: 9 };
        store.append_wal(0, &record.encode_framed()).unwrap();
        store.write_snapshot(1, &image).unwrap();
        store.create_wal(1).unwrap();

        let clean = store.scrub().unwrap();
        assert!(clean.is_clean());
        assert_eq!(clean.snapshots_checked, 2);
        assert_eq!(clean.wals_checked, 2);
        assert_eq!(clean.corrupt_artifacts(), 0);

        // Flip a snapshot byte and tear the other epoch's WAL tail.
        let mut rotten = image.clone();
        rotten[image.len() / 2] ^= 0x10;
        mem.write_file(&DurableStore::snapshot_name(1), &rotten)
            .unwrap();
        store.append_wal(0, &[0xEE, 0xEE, 0xEE]).unwrap();

        let dirty = store.scrub().unwrap();
        assert!(!dirty.is_clean());
        assert_eq!(dirty.corrupt_snapshots, vec![1]);
        assert_eq!(dirty.quarantined_wals, vec![0]);
        assert_eq!(dirty.corrupt_artifacts(), 2);
        // Intact artifacts still counted as checked.
        assert_eq!(dirty.snapshots_checked, 2);
        assert_eq!(dirty.wals_checked, 2);
    }

    #[test]
    fn wal_appends_accumulate_and_missing_wal_reads_empty() {
        let store = DurableStore::new(Box::new(MemVfs::new()));
        assert_eq!(store.read_wal(5).unwrap(), Vec::<u8>::new());
        store.create_wal(5).unwrap();
        store.append_wal(5, b"aa").unwrap();
        store.append_wal(5, b"bb").unwrap();
        assert_eq!(store.read_wal(5).unwrap(), b"aabb");
    }
}
