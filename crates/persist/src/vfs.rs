//! The flat-namespace storage abstraction durable files live behind.
//!
//! A [`Vfs`] holds named byte files — no directories, no metadata — which
//! is all the epoch store needs. Three backends exist: [`DirVfs`] maps the
//! namespace onto a real directory, [`MemVfs`] keeps it in shared memory
//! (a test harness can keep a handle across a simulated "process death"
//! and corrupt bytes at rest), and [`crate::fault::FaultVfs`] wraps either
//! to inject deterministic write failures.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::error::{PersistError, Result};

/// A flat namespace of named byte files.
///
/// Writes model a simple storage device: `write_file` replaces a file's
/// contents, `append` extends them. Durability semantics (what survives a
/// crash mid-write) are injected by the fault layer, not assumed here.
pub trait Vfs: Debug + Send {
    /// Create or replace `name` with `bytes`.
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Append `bytes` to `name`, creating it if absent.
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Read the full contents of `name`.
    fn read_file(&self, name: &str) -> Result<Vec<u8>>;

    /// All file names, sorted.
    fn list(&self) -> Result<Vec<String>>;

    /// Remove `name` (no error if it is already gone — removal is
    /// idempotent garbage collection).
    fn remove(&self, name: &str) -> Result<()>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;
}

/// A [`Vfs`] backed by one real directory (created on first use).
#[derive(Debug, Clone)]
pub struct DirVfs {
    root: PathBuf,
}

impl DirVfs {
    /// A VFS over `root`. The directory is created lazily on the first
    /// write.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        DirVfs { root: root.into() }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn io_err(name: &str, err: std::io::Error) -> PersistError {
        PersistError::Io {
            file: name.to_string(),
            detail: err.to_string(),
        }
    }

    fn ensure_root(&self) -> Result<()> {
        fs::create_dir_all(&self.root).map_err(|e| Self::io_err("<root>", e))
    }
}

impl Vfs for DirVfs {
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.ensure_root()?;
        fs::write(self.path(name), bytes).map_err(|e| Self::io_err(name, e))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.ensure_root()?;
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| Self::io_err(name, e))?;
        file.write_all(bytes).map_err(|e| Self::io_err(name, e))
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(PersistError::NotFound {
                file: name.to_string(),
            }),
            Err(e) => Err(Self::io_err(name, e)),
        }
    }

    fn list(&self) -> Result<Vec<String>> {
        let entries = match fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Self::io_err("<root>", e)),
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Self::io_err("<root>", e))?;
            if entry.path().is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io_err(name, e)),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).is_file()
    }
}

/// An in-memory [`Vfs`] with shared interior: clones see the same files.
///
/// The crash-recovery harness clones a handle, hands one to the system
/// under test, "kills" that system (drops it mid-write via the fault
/// layer) and then recovers from the surviving handle — exactly the bytes
/// a real device would have retained.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemVfs {
    /// A fresh, empty in-memory VFS.
    pub fn new() -> Self {
        MemVfs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>> {
        self.files.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Flip the bits of `mask` in byte `offset` of `name` — at-rest media
    /// corruption for checksum tests.
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist or the offset is out of range
    /// (harness misuse, not a recoverable condition).
    pub fn flip_byte(&self, name: &str, offset: usize, mask: u8) {
        let mut files = self.lock();
        let file = files.get_mut(name).expect("flip_byte: no such file");
        file[offset] ^= mask;
    }

    /// Truncate `name` to `len` bytes — a torn tail for recovery tests.
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist.
    pub fn truncate(&self, name: &str, len: usize) {
        let mut files = self.lock();
        let file = files.get_mut(name).expect("truncate: no such file");
        file.truncate(len);
    }

    /// Size of `name` in bytes, if it exists.
    pub fn size(&self, name: &str) -> Option<usize> {
        self.lock().get(name).map(Vec::len)
    }
}

impl Vfs for MemVfs {
    fn write_file(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.lock().insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        self.lock()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>> {
        self.lock()
            .get(name)
            .cloned()
            .ok_or_else(|| PersistError::NotFound {
                file: name.to_string(),
            })
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.lock().keys().cloned().collect())
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.lock().remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.lock().contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(vfs: &dyn Vfs) {
        assert_eq!(vfs.list().unwrap(), Vec::<String>::new());
        vfs.write_file("b", b"two").unwrap();
        vfs.write_file("a", b"one").unwrap();
        vfs.append("a", b"+more").unwrap();
        vfs.append("c", b"fresh").unwrap();
        assert_eq!(vfs.read_file("a").unwrap(), b"one+more");
        assert_eq!(vfs.read_file("c").unwrap(), b"fresh");
        assert_eq!(vfs.list().unwrap(), vec!["a", "b", "c"]);
        assert!(vfs.exists("b"));
        vfs.remove("b").unwrap();
        vfs.remove("b").unwrap(); // idempotent
        assert!(!vfs.exists("b"));
        assert!(matches!(
            vfs.read_file("b"),
            Err(PersistError::NotFound { .. })
        ));
    }

    #[test]
    fn mem_vfs_implements_the_contract() {
        exercise(&MemVfs::new());
    }

    #[test]
    fn dir_vfs_implements_the_contract() {
        let root = std::env::temp_dir().join(format!("reis-persist-vfs-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        exercise(&DirVfs::new(&root));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mem_vfs_clones_share_contents_and_corruption_helpers_work() {
        let a = MemVfs::new();
        let b = a.clone();
        a.write_file("wal", &[0u8, 1, 2, 3]).unwrap();
        assert_eq!(b.read_file("wal").unwrap(), vec![0, 1, 2, 3]);
        b.flip_byte("wal", 2, 0xFF);
        assert_eq!(a.read_file("wal").unwrap(), vec![0, 1, 0xFD, 3]);
        b.truncate("wal", 1);
        assert_eq!(a.size("wal"), Some(1));
    }
}
