//! # reis-bench — the benchmark harness of the REIS reproduction
//!
//! One binary per table/figure of the paper's evaluation regenerates the
//! corresponding rows or series (see `DESIGN.md` §4 and `EXPERIMENTS.md`).
//! This library holds the shared machinery:
//!
//! * [`calibration`] — functional, scaled-dataset measurements (distance
//!   filter pass fractions, recall-versus-`nprobe` curves) that parameterize
//!   the full-scale models.
//! * [`fullscale`] — the extrapolation of REIS's per-query activity to the
//!   paper's full-scale dataset sizes, priced by `reis-core`'s latency and
//!   energy models.
//! * [`report`] — small helpers for printing figure series as aligned rows.
//!
//! Every experiment prints both the scaled dataset used for functional
//! calibration and the full-scale parameters used for extrapolation, so the
//! provenance of each number is visible in the output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration {
    //! Functional calibration runs on scaled synthetic datasets.

    use reis_ann::ivf::{IvfBqIndex, IvfConfig, IvfIndex};
    use reis_ann::metrics::recall_at_k;
    use reis_ann::quantize::BinaryQuantizer;
    use reis_workloads::{GroundTruth, SyntheticDataset};

    /// Calibration products of one dataset profile.
    #[derive(Debug, Clone)]
    pub struct Calibration {
        /// Fraction of database embeddings whose Hamming distance from a
        /// query falls at or below the distance-filter threshold.
        pub pass_fraction: f64,
        /// Measured `(nprobe fraction, recall@10)` pairs of the BQ+rerank IVF
        /// search on the scaled dataset.
        pub recall_curve: Vec<(f64, f64)>,
        /// The trained scaled IVF index (reused by figure generators that
        /// need functional searches).
        pub ivf: IvfBqIndex,
    }

    /// Measure the distance-filter pass fraction of a dataset at the given
    /// threshold fraction of the dimensionality.
    pub fn measure_pass_fraction(dataset: &SyntheticDataset, threshold_fraction: f64) -> f64 {
        let quantizer = BinaryQuantizer::fit(dataset.vectors()).expect("non-empty dataset");
        let binary = quantizer
            .quantize_all(dataset.vectors())
            .expect("consistent dims");
        let threshold = (threshold_fraction * dataset.profile().dim as f64).round() as u32;
        let mut passed = 0usize;
        let mut total = 0usize;
        for query in dataset.queries() {
            let q = quantizer.quantize(query).expect("consistent dims");
            for b in &binary {
                total += 1;
                if q.hamming_distance(b) <= threshold {
                    passed += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            passed as f64 / total as f64
        }
    }

    /// Run the full calibration for a dataset: pass fraction plus the
    /// recall-versus-nprobe curve of the BQ IVF search REIS executes.
    pub fn calibrate(dataset: &SyntheticDataset, threshold_fraction: f64, k: usize) -> Calibration {
        let profile = dataset.profile();
        let nlist = profile.scaled_nlist.min(dataset.len());
        let float_ivf = IvfIndex::build(dataset.vectors().to_vec(), IvfConfig::new(nlist))
            .expect("IVF construction on calibration data");
        let ivf = IvfBqIndex::from_ivf(&float_ivf).expect("quantized IVF construction");
        let truth = GroundTruth::compute(dataset, k).expect("ground truth");

        let mut recall_curve = Vec::new();
        for fraction in [0.02, 0.05, 0.10, 0.20, 0.40, 1.0] {
            let nprobe = ((nlist as f64 * fraction).ceil() as usize).clamp(1, nlist);
            let mut recall = 0.0;
            for (qi, query) in dataset.queries().iter().enumerate() {
                let got: Vec<usize> = ivf
                    .search(query, k, nprobe, 10)
                    .expect("search")
                    .iter()
                    .map(|n| n.id)
                    .collect();
                recall += recall_at_k(&got, truth.neighbors(qi), k);
            }
            recall /= dataset.queries().len().max(1) as f64;
            recall_curve.push((fraction, recall));
        }

        Calibration {
            pass_fraction: measure_pass_fraction(dataset, threshold_fraction),
            recall_curve,
            ivf,
        }
    }

    /// The smallest measured nprobe fraction that reaches `target_recall` on
    /// the calibration curve (falls back to the largest fraction measured).
    pub fn nprobe_fraction_for_recall(calibration: &Calibration, target_recall: f64) -> f64 {
        for &(fraction, recall) in &calibration.recall_curve {
            if recall >= target_recall {
                return fraction;
            }
        }
        calibration
            .recall_curve
            .last()
            .map(|&(f, _)| f)
            .unwrap_or(1.0)
    }
}

pub mod fullscale {
    //! Extrapolation of REIS activity to full-scale datasets.

    use reis_core::{EnergyBreakdown, EnergyModel, PerfModel, QueryActivity, ReisConfig};
    use reis_nand::{FlashStats, Nanos};
    use reis_workloads::DatasetProfile;

    /// The search mode being extrapolated.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum SearchMode {
        /// Brute-force scan of the whole embedding region.
        BruteForce,
        /// IVF search probing the given fraction of the clusters.
        Ivf {
            /// Fraction of the `full_nlist` clusters probed.
            nprobe_fraction: f64,
        },
    }

    /// A full-scale per-query estimate of REIS.
    #[derive(Debug, Clone, Copy)]
    pub struct ReisEstimate {
        /// Modelled per-query latency.
        pub latency: Nanos,
        /// Queries per second.
        pub qps: f64,
        /// Per-query energy breakdown.
        pub energy: EnergyBreakdown,
        /// Queries per joule (equivalently QPS per watt).
        pub qps_per_watt: f64,
        /// The activity the estimate was built from.
        pub activity: QueryActivity,
    }

    /// Build the full-scale activity of one REIS query.
    pub fn full_scale_activity(
        profile: &DatasetProfile,
        config: &ReisConfig,
        mode: SearchMode,
        pass_fraction: f64,
        k: usize,
    ) -> QueryActivity {
        let geometry = config.ssd.geometry;
        let slot = profile.binary_bytes().next_power_of_two();
        let per_page_capacity = geometry.page_size_bytes / slot;
        let per_page_oob = geometry.oob_size_bytes / reis_nand::OobEntry::SIZE;
        let epp = per_page_capacity.min(per_page_oob).max(1);
        let entries = profile.full_entries;

        let (coarse_pages, coarse_entries, scanned_entries) = match mode {
            SearchMode::BruteForce => (0usize, 0usize, entries),
            SearchMode::Ivf { nprobe_fraction } => {
                let centroid_pages = (profile.full_nlist as u64).div_ceil(epp as u64) as usize;
                let probed = (entries as f64 * nprobe_fraction.clamp(0.0, 1.0)) as u64;
                (centroid_pages, profile.full_nlist, probed)
            }
        };
        let fine_pages = scanned_entries.div_ceil(epp as u64) as usize;
        let fine_entries = (scanned_entries as f64 * pass_fraction.clamp(0.0, 1.0)) as usize;
        let rerank_candidates = config.rerank_factor * k;
        let int8_per_page = (geometry.page_size_bytes / profile.dim.max(1)).max(1);
        let int8_pages = rerank_candidates.div_ceil(int8_per_page);
        QueryActivity {
            coarse_pages,
            coarse_entries,
            fine_pages,
            fine_entries: fine_entries.max(rerank_candidates),
            rerank_candidates,
            int8_pages,
            documents: k,
            embedding_slot_bytes: slot,
            dim: profile.dim,
            doc_slot_bytes: 4096,
        }
    }

    /// Approximate the flash statistics of one full-scale query from its
    /// activity (for the energy model).
    pub fn activity_flash_stats(activity: &QueryActivity, config: &ReisConfig) -> FlashStats {
        let geometry = config.ssd.geometry;
        let pages = (activity.coarse_pages + activity.fine_pages) as u64;
        let entry_bytes = (activity.embedding_slot_bytes + config.ttl_metadata_bytes) as u64;
        FlashStats {
            page_reads: pages + activity.int8_pages as u64 + activity.documents as u64,
            page_programs: 0,
            block_erases: 0,
            xor_ops: pages,
            bit_count_ops: pages,
            pass_fail_ops: pages,
            broadcast_ops: geometry.total_dies() as u64,
            bytes_to_controller: (activity.coarse_entries + activity.fine_entries) as u64
                * entry_bytes
                + (activity.int8_pages * geometry.page_size_bytes) as u64
                + (activity.documents * activity.doc_slot_bytes) as u64,
            bytes_from_controller: (geometry.total_dies() * activity.embedding_slot_bytes) as u64,
            injected_bit_errors: 0,
        }
    }

    /// Full-scale REIS estimate for one dataset / mode / recall point.
    pub fn estimate_reis(
        profile: &DatasetProfile,
        config: &ReisConfig,
        mode: SearchMode,
        pass_fraction: f64,
        k: usize,
    ) -> ReisEstimate {
        let activity = full_scale_activity(profile, config, mode, pass_fraction, k);
        let perf = PerfModel::new(*config);
        let latency = perf.query_latency(&activity, k).total();
        let core_busy = perf.core_busy(&activity, k);
        let flash = activity_flash_stats(&activity, config);
        let energy = EnergyModel::default().query_energy(
            &flash,
            flash.bytes_to_controller,
            core_busy,
            latency,
        );
        let secs = latency.as_secs_f64();
        let qps = if secs > 0.0 { 1.0 / secs } else { 0.0 };
        let joules = energy.total_j();
        let qps_per_watt = if joules > 0.0 { 1.0 / joules } else { 0.0 };
        ReisEstimate {
            latency,
            qps,
            energy,
            qps_per_watt,
            activity,
        }
    }
}

pub mod seed_reference {
    //! Byte-at-a-time reference kernels matching the seed implementation.
    //!
    //! The single baseline both the criterion `kernels` bench and
    //! `fig07b_batch_throughput` measure the u64-word kernels against, so
    //! the reported speedups always refer to the same code. The
    //! implementations live in the workspace's kernel crate
    //! ([`reis_kernels::reference`]) next to the word kernels they baseline.

    pub use reis_kernels::reference::{count_per_chunk, hamming, xor};
}

pub mod report {
    //! Formatting helpers shared by the figure binaries.

    /// Print a figure/table header with the experiment id and a description.
    pub fn header(experiment: &str, description: &str) {
        println!("==================================================================");
        println!("{experiment}: {description}");
        println!("==================================================================");
    }

    /// Resolve the output path of a benchmark's JSON artifact: an
    /// `--output PATH` (or `--output=PATH`) command-line argument wins,
    /// then the `REIS_BENCH_OUT` environment variable, then `default`.
    ///
    /// `BENCH_pr*.json` files at the repository root are committed
    /// artifacts (the run a PR shipped with). Benchmarks whose artifact
    /// belongs to an *earlier* PR default to a non-committed,
    /// `.gitignore`d path so a casual re-run never clobbers the recorded
    /// measurement — refreshing one takes an explicit
    /// `--output BENCH_prN.json`. A benchmark introduced by the current PR
    /// may default to its own `BENCH_prN.json`, since that file is exactly
    /// the run it is expected to (re)produce. See `docs/BENCHMARKS.md` for
    /// the regeneration workflow.
    ///
    /// # Panics
    ///
    /// Panics if `--output` is given without a value (or followed by
    /// another flag): silently falling back to the default could overwrite
    /// a committed artifact the flag was meant to protect.
    pub fn output_path(default: &str) -> String {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--output" {
                match args.next() {
                    Some(path) if !path.starts_with("--") => return path,
                    _ => panic!("--output requires a path argument"),
                }
            } else if let Some(path) = arg.strip_prefix("--output=") {
                return path.to_string();
            }
        }
        std::env::var("REIS_BENCH_OUT").unwrap_or_else(|_| default.to_string())
    }

    /// Print one labelled series as `label: v1 v2 v3 …` with fixed precision.
    pub fn series(label: &str, values: &[(String, f64)]) {
        println!("{label}");
        for (name, value) in values {
            println!("    {name:<42} {value:>12.3}");
        }
    }

    /// Format a normalized value as the paper's figures report them.
    pub fn normalized(value: f64, baseline: f64) -> f64 {
        if baseline <= 0.0 {
            0.0
        } else {
            value / baseline
        }
    }

    /// Geometric mean of a slice of positive values (used for "average
    /// speedup" claims).
    pub fn geomean(values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
        (sum / values.len() as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::calibration::{calibrate, measure_pass_fraction, nprobe_fraction_for_recall};
    use super::fullscale::{estimate_reis, SearchMode};
    use super::report::geomean;
    use reis_core::ReisConfig;
    use reis_workloads::{DatasetProfile, SyntheticDataset};

    fn small_dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetProfile::hotpotqa().scaled(512).with_queries(4), 13)
    }

    #[test]
    fn calibration_produces_monotone_recall_curve_and_plausible_pass_fraction() {
        let dataset = small_dataset();
        let calibration = calibrate(&dataset, 0.47, 10);
        assert!(calibration.pass_fraction > 0.0 && calibration.pass_fraction < 1.0);
        let recalls: Vec<f64> = calibration.recall_curve.iter().map(|&(_, r)| r).collect();
        assert!(
            recalls.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "recall must not drop as nprobe grows: {recalls:?}"
        );
        assert!(*recalls.last().unwrap() > 0.8);
        let fraction = nprobe_fraction_for_recall(&calibration, 0.5);
        assert!(fraction <= 1.0);
        assert!(measure_pass_fraction(&dataset, 0.0) < 0.05);
    }

    #[test]
    fn full_scale_estimates_follow_the_paper_shapes() {
        let profile = DatasetProfile::wiki_en();
        let ssd1 = ReisConfig::ssd1();
        let ssd2 = ReisConfig::ssd2();
        let bf1 = estimate_reis(&profile, &ssd1, SearchMode::BruteForce, 0.01, 10);
        let bf2 = estimate_reis(&profile, &ssd2, SearchMode::BruteForce, 0.01, 10);
        let ivf1 = estimate_reis(
            &profile,
            &ssd1,
            SearchMode::Ivf {
                nprobe_fraction: 0.02,
            },
            0.01,
            10,
        );
        // SSD2 beats SSD1; IVF beats brute force.
        assert!(bf2.qps > bf1.qps);
        assert!(ivf1.qps > bf1.qps);
        assert!(bf1.energy.total_j() > 0.0);
        assert!(bf1.qps_per_watt > 0.0);
        assert!(geomean(&[2.0, 8.0]) - 4.0 < 1e-9);
    }
}
