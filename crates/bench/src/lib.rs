//! # reis-bench — the benchmark harness of the REIS reproduction
//!
//! One binary per table/figure of the paper's evaluation regenerates the
//! corresponding rows or series (see `DESIGN.md` §4 and `EXPERIMENTS.md`).
//! This library holds the shared machinery:
//!
//! * [`calibration`] — functional, scaled-dataset measurements (distance
//!   filter pass fractions, recall-versus-`nprobe` curves) that parameterize
//!   the full-scale models.
//! * [`fullscale`] — the extrapolation of REIS's per-query activity to the
//!   paper's full-scale dataset sizes, priced by `reis-core`'s latency and
//!   energy models.
//! * [`report`] — small helpers for printing figure series as aligned rows.
//!
//! Every experiment prints both the scaled dataset used for functional
//! calibration and the full-scale parameters used for extrapolation, so the
//! provenance of each number is visible in the output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration {
    //! Functional calibration runs on scaled synthetic datasets.

    use reis_ann::ivf::{IvfBqIndex, IvfConfig, IvfIndex};
    use reis_ann::metrics::recall_at_k;
    use reis_ann::quantize::BinaryQuantizer;
    use reis_workloads::{GroundTruth, SyntheticDataset};

    /// Calibration products of one dataset profile.
    #[derive(Debug, Clone)]
    pub struct Calibration {
        /// Fraction of database embeddings whose Hamming distance from a
        /// query falls at or below the distance-filter threshold.
        pub pass_fraction: f64,
        /// Measured `(nprobe fraction, recall@10)` pairs of the BQ+rerank IVF
        /// search on the scaled dataset.
        pub recall_curve: Vec<(f64, f64)>,
        /// The trained scaled IVF index (reused by figure generators that
        /// need functional searches).
        pub ivf: IvfBqIndex,
    }

    /// Measure the distance-filter pass fraction of a dataset at the given
    /// threshold fraction of the dimensionality.
    pub fn measure_pass_fraction(dataset: &SyntheticDataset, threshold_fraction: f64) -> f64 {
        let quantizer = BinaryQuantizer::fit(dataset.vectors()).expect("non-empty dataset");
        let binary = quantizer
            .quantize_all(dataset.vectors())
            .expect("consistent dims");
        let threshold = (threshold_fraction * dataset.profile().dim as f64).round() as u32;
        let mut passed = 0usize;
        let mut total = 0usize;
        for query in dataset.queries() {
            let q = quantizer.quantize(query).expect("consistent dims");
            for b in &binary {
                total += 1;
                if q.hamming_distance(b) <= threshold {
                    passed += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            passed as f64 / total as f64
        }
    }

    /// Run the full calibration for a dataset: pass fraction plus the
    /// recall-versus-nprobe curve of the BQ IVF search REIS executes.
    pub fn calibrate(dataset: &SyntheticDataset, threshold_fraction: f64, k: usize) -> Calibration {
        let profile = dataset.profile();
        let nlist = profile.scaled_nlist.min(dataset.len());
        let float_ivf = IvfIndex::build(dataset.vectors().to_vec(), IvfConfig::new(nlist))
            .expect("IVF construction on calibration data");
        let ivf = IvfBqIndex::from_ivf(&float_ivf).expect("quantized IVF construction");
        let truth = GroundTruth::compute(dataset, k).expect("ground truth");

        let mut recall_curve = Vec::new();
        for fraction in [0.02, 0.05, 0.10, 0.20, 0.40, 1.0] {
            let nprobe = ((nlist as f64 * fraction).ceil() as usize).clamp(1, nlist);
            let mut recall = 0.0;
            for (qi, query) in dataset.queries().iter().enumerate() {
                let got: Vec<usize> = ivf
                    .search(query, k, nprobe, 10)
                    .expect("search")
                    .iter()
                    .map(|n| n.id)
                    .collect();
                recall += recall_at_k(&got, truth.neighbors(qi), k);
            }
            recall /= dataset.queries().len().max(1) as f64;
            recall_curve.push((fraction, recall));
        }

        Calibration {
            pass_fraction: measure_pass_fraction(dataset, threshold_fraction),
            recall_curve,
            ivf,
        }
    }

    /// The smallest measured nprobe fraction that reaches `target_recall` on
    /// the calibration curve (falls back to the largest fraction measured).
    pub fn nprobe_fraction_for_recall(calibration: &Calibration, target_recall: f64) -> f64 {
        for &(fraction, recall) in &calibration.recall_curve {
            if recall >= target_recall {
                return fraction;
            }
        }
        calibration
            .recall_curve
            .last()
            .map(|&(f, _)| f)
            .unwrap_or(1.0)
    }
}

pub mod fullscale {
    //! Extrapolation of REIS activity to full-scale datasets.

    use reis_core::{EnergyBreakdown, EnergyModel, PerfModel, QueryActivity, ReisConfig};
    use reis_nand::{FlashStats, Nanos};
    use reis_workloads::DatasetProfile;

    /// The search mode being extrapolated.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum SearchMode {
        /// Brute-force scan of the whole embedding region.
        BruteForce,
        /// IVF search probing the given fraction of the clusters.
        Ivf {
            /// Fraction of the `full_nlist` clusters probed.
            nprobe_fraction: f64,
        },
    }

    /// A full-scale per-query estimate of REIS.
    #[derive(Debug, Clone, Copy)]
    pub struct ReisEstimate {
        /// Modelled per-query latency.
        pub latency: Nanos,
        /// Queries per second.
        pub qps: f64,
        /// Per-query energy breakdown.
        pub energy: EnergyBreakdown,
        /// Queries per joule (equivalently QPS per watt).
        pub qps_per_watt: f64,
        /// The activity the estimate was built from.
        pub activity: QueryActivity,
    }

    /// Build the full-scale activity of one REIS query.
    pub fn full_scale_activity(
        profile: &DatasetProfile,
        config: &ReisConfig,
        mode: SearchMode,
        pass_fraction: f64,
        k: usize,
    ) -> QueryActivity {
        let geometry = config.ssd.geometry;
        let slot = profile.binary_bytes().next_power_of_two();
        let per_page_capacity = geometry.page_size_bytes / slot;
        let per_page_oob = geometry.oob_size_bytes / reis_nand::OobEntry::SIZE;
        let epp = per_page_capacity.min(per_page_oob).max(1);
        let entries = profile.full_entries;

        let (coarse_pages, coarse_entries, scanned_entries) = match mode {
            SearchMode::BruteForce => (0usize, 0usize, entries),
            SearchMode::Ivf { nprobe_fraction } => {
                let centroid_pages = (profile.full_nlist as u64).div_ceil(epp as u64) as usize;
                let probed = (entries as f64 * nprobe_fraction.clamp(0.0, 1.0)) as u64;
                (centroid_pages, profile.full_nlist, probed)
            }
        };
        let fine_pages = scanned_entries.div_ceil(epp as u64) as usize;
        let fine_entries = (scanned_entries as f64 * pass_fraction.clamp(0.0, 1.0)) as usize;
        let rerank_candidates = config.rerank_factor * k;
        let int8_per_page = (geometry.page_size_bytes / profile.dim.max(1)).max(1);
        let int8_pages = rerank_candidates.div_ceil(int8_per_page);
        QueryActivity {
            coarse_pages,
            coarse_entries,
            fine_pages,
            fine_entries: fine_entries.max(rerank_candidates),
            // Full-scale extrapolations price the static-threshold scan; the
            // windowed adaptive maintenance is a measured, not extrapolated,
            // quantity.
            fine_windows: 0,
            rerank_candidates,
            int8_pages,
            documents: k,
            embedding_slot_bytes: slot,
            dim: profile.dim,
            doc_slot_bytes: 4096,
        }
    }

    /// Approximate the flash statistics of one full-scale query from its
    /// activity (for the energy model).
    pub fn activity_flash_stats(activity: &QueryActivity, config: &ReisConfig) -> FlashStats {
        let geometry = config.ssd.geometry;
        let pages = (activity.coarse_pages + activity.fine_pages) as u64;
        let entry_bytes = (activity.embedding_slot_bytes + config.ttl_metadata_bytes) as u64;
        FlashStats {
            page_reads: pages + activity.int8_pages as u64 + activity.documents as u64,
            page_programs: 0,
            block_erases: 0,
            xor_ops: pages,
            bit_count_ops: pages,
            pass_fail_ops: pages,
            broadcast_ops: geometry.total_dies() as u64,
            bytes_to_controller: (activity.coarse_entries + activity.fine_entries) as u64
                * entry_bytes
                + (activity.int8_pages * geometry.page_size_bytes) as u64
                + (activity.documents * activity.doc_slot_bytes) as u64,
            bytes_from_controller: (geometry.total_dies() * activity.embedding_slot_bytes) as u64,
            injected_bit_errors: 0,
        }
    }

    /// Full-scale REIS estimate for one dataset / mode / recall point.
    pub fn estimate_reis(
        profile: &DatasetProfile,
        config: &ReisConfig,
        mode: SearchMode,
        pass_fraction: f64,
        k: usize,
    ) -> ReisEstimate {
        let activity = full_scale_activity(profile, config, mode, pass_fraction, k);
        let perf = PerfModel::new(*config);
        let latency = perf.query_latency(&activity, k).total();
        let core_busy = perf.core_busy(&activity, k);
        let flash = activity_flash_stats(&activity, config);
        let energy = EnergyModel::default().query_energy(
            &flash,
            flash.bytes_to_controller,
            core_busy,
            latency,
        );
        let secs = latency.as_secs_f64();
        let qps = if secs > 0.0 { 1.0 / secs } else { 0.0 };
        let joules = energy.total_j();
        let qps_per_watt = if joules > 0.0 { 1.0 / joules } else { 0.0 };
        ReisEstimate {
            latency,
            qps,
            energy,
            qps_per_watt,
            activity,
        }
    }
}

pub mod seed_reference {
    //! Byte-at-a-time reference kernels matching the seed implementation.
    //!
    //! The single baseline both the criterion `kernels` bench and
    //! `fig07b_batch_throughput` measure the u64-word kernels against, so
    //! the reported speedups always refer to the same code. The
    //! implementations live in the workspace's kernel crate
    //! ([`reis_kernels::reference`]) next to the word kernels they baseline.

    pub use reis_kernels::reference::{count_per_chunk, hamming, xor};
}

pub mod report {
    //! Formatting helpers shared by the figure binaries.

    /// Print a figure/table header with the experiment id and a description.
    pub fn header(experiment: &str, description: &str) {
        println!("==================================================================");
        println!("{experiment}: {description}");
        println!("==================================================================");
    }

    /// Resolve the output path of a benchmark's JSON artifact: an
    /// `--output PATH` (or `--output=PATH`) command-line argument wins,
    /// then the `REIS_BENCH_OUT` environment variable, then `default`.
    ///
    /// `BENCH_pr*.json` files at the repository root are committed
    /// artifacts (the run a PR shipped with). Benchmarks whose artifact
    /// belongs to an *earlier* PR default to a non-committed,
    /// `.gitignore`d path so a casual re-run never clobbers the recorded
    /// measurement — refreshing one takes an explicit
    /// `--output BENCH_prN.json`. A benchmark introduced by the current PR
    /// may default to its own `BENCH_prN.json`, since that file is exactly
    /// the run it is expected to (re)produce. See `docs/BENCHMARKS.md` for
    /// the regeneration workflow.
    ///
    /// # Panics
    ///
    /// Panics if `--output` is given without a value (or followed by
    /// another flag): silently falling back to the default could overwrite
    /// a committed artifact the flag was meant to protect.
    pub fn output_path(default: &str) -> String {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--output" {
                match args.next() {
                    Some(path) if !path.starts_with("--") => return path,
                    _ => panic!("--output requires a path argument"),
                }
            } else if let Some(path) = arg.strip_prefix("--output=") {
                return path.to_string();
            }
        }
        std::env::var("REIS_BENCH_OUT").unwrap_or_else(|_| default.to_string())
    }

    /// Print one labelled series as `label: v1 v2 v3 …` with fixed precision.
    pub fn series(label: &str, values: &[(String, f64)]) {
        println!("{label}");
        for (name, value) in values {
            println!("    {name:<42} {value:>12.3}");
        }
    }

    /// Format a normalized value as the paper's figures report them.
    pub fn normalized(value: f64, baseline: f64) -> f64 {
        if baseline <= 0.0 {
            0.0
        } else {
            value / baseline
        }
    }

    /// Geometric mean of a slice of positive values (used for "average
    /// speedup" claims).
    pub fn geomean(values: &[f64]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
        (sum / values.len() as f64).exp()
    }
}

pub mod artifacts {
    //! Schema validation of the measured-benchmark JSON artifacts.
    //!
    //! Every figure binary hand-writes its JSON (there is no serializer in
    //! the offline workspace), which historically meant a malformed or
    //! key-renamed artifact could land in the repository — or be uploaded
    //! from CI — unnoticed until a reader choked on it. The
    //! `validate-bench-artifacts` binary runs [`validate_file`] over the
    //! committed `BENCH_pr*.json` files and the freshly produced smoke
    //! artifacts in CI, enforcing the schemas documented in
    //! `docs/BENCHMARKS.md`: required keys, value types, and
    //! `available_cores` present on every measured artifact (it is the key
    //! readers must consult before trusting any scaling column).

    /// A parsed JSON value (minimal offline parser — the shimmed `serde`
    /// has no deserializer).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, kept as `f64`.
        Num(f64),
        /// A string (escape sequences decoded).
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, in source order.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Look up a key of an object (`None` for non-objects).
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The human name of the value's type, for error messages.
        pub fn type_name(&self) -> &'static str {
            match self {
                Json::Null => "null",
                Json::Bool(_) => "bool",
                Json::Num(_) => "number",
                Json::Str(_) => "string",
                Json::Arr(_) => "array",
                Json::Obj(_) => "object",
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-annotated message on malformed input,
    /// including trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&what) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", what as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        literal: &str,
        value: Json,
    ) -> Result<Json, String> {
        if bytes[*pos..].starts_with(literal.as_bytes()) {
            *pos += literal.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("malformed number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = bytes
                        .get(*pos..*pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("bad UTF-8 at byte {}", *pos))?;
                    out.push_str(chunk);
                    *pos += len;
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            fields.push((key, parse_value(bytes, pos)?));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    /// The expected type of a required key.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Kind {
        /// A JSON number.
        Num,
        /// A JSON string.
        Str,
        /// A JSON bool.
        Bool,
        /// A JSON object.
        Obj,
        /// A non-empty JSON array.
        Arr,
    }

    fn check_kind(value: &Json, kind: Kind) -> bool {
        match kind {
            Kind::Num => matches!(value, Json::Num(_)),
            Kind::Str => matches!(value, Json::Str(_)),
            Kind::Bool => matches!(value, Json::Bool(_)),
            Kind::Obj => matches!(value, Json::Obj(_)),
            Kind::Arr => matches!(value, Json::Arr(items) if !items.is_empty()),
        }
    }

    /// The required top-level keys of one artifact family, keyed off the
    /// file name (`BENCH_pr5.json` and `BENCH_adaptive_smoke.json` share a
    /// family, etc.). `None` for file names no schema is known for.
    pub fn required_keys(file_name: &str) -> Option<&'static [(&'static str, Kind)]> {
        const BATCH: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("dataset", Kind::Obj),
            ("kernels", Kind::Obj),
            ("batch_qps", Kind::Obj),
            ("modelled_device_qps", Kind::Num),
        ];
        const INTRA: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("dataset", Kind::Obj),
            ("queries", Kind::Num),
            ("repeats_per_point", Kind::Num),
            ("single_query_latency_us", Kind::Obj),
            ("speedup_at_best_shard_count", Kind::Obj),
        ];
        const UPDATE: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("dataset", Kind::Obj),
            ("insert", Kind::Obj),
            ("upsert", Kind::Obj),
            ("delete", Kind::Obj),
            ("search_under_update", Kind::Obj),
            ("compaction", Kind::Obj),
        ];
        const FUSED: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("results_identical_to_sequential", Kind::Bool),
            ("brute_force", Kind::Obj),
            ("ivf_nprobe8", Kind::Obj),
            ("modelled_bf_scan_batch8_us", Kind::Obj),
            ("bf_batch8_sense_reduction", Kind::Num),
        ];
        const ADAPTIVE: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("dataset", Kind::Obj),
            ("queries", Kind::Num),
            ("repeats_per_point", Kind::Num),
            ("k", Kind::Num),
            ("partition_invariant", Kind::Bool),
            ("static_baseline", Kind::Obj),
            ("window_sweep", Kind::Arr),
        ];
        const PERSISTENCE: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("dataset", Kind::Obj),
            ("results_identical_to_precrash", Kind::Bool),
            ("snapshot", Kind::Obj),
            ("wal", Kind::Obj),
            ("recovery", Kind::Obj),
            ("torn_tail", Kind::Obj),
        ];
        const SCALEOUT: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("dataset", Kind::Obj),
            ("results_identical_to_single_device", Kind::Bool),
            ("leaf_sweep", Kind::Arr),
            ("hedging", Kind::Obj),
        ];
        const TELEMETRY: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("dataset", Kind::Obj),
            ("results_identical_with_telemetry", Kind::Bool),
            ("fused_batch8", Kind::Obj),
            ("interference", Kind::Obj),
            ("hedge_quantiles", Kind::Obj),
            ("exporters", Kind::Obj),
        ];
        const FAULT: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("dataset", Kind::Obj),
            ("results_identical_when_covered", Kind::Bool),
            ("retry_overhead", Kind::Obj),
            ("failure_sweep", Kind::Arr),
        ];
        const SCHEDULER: &[(&str, Kind)] = &[
            ("available_cores", Kind::Num),
            ("mode", Kind::Str),
            ("dataset", Kind::Obj),
            ("results_identical_to_spawn", Kind::Bool),
            ("batch_formation_wins", Kind::Bool),
            ("pool_window_sweep", Kind::Arr),
            ("pipeline_sweep", Kind::Arr),
        ];
        let base = file_name.rsplit('/').next().unwrap_or(file_name);
        match base {
            "BENCH_pr1.json" => Some(BATCH),
            "BENCH_pr2.json" => Some(INTRA),
            "BENCH_pr3.json" => Some(UPDATE),
            "BENCH_pr4.json" => Some(FUSED),
            "BENCH_pr5.json" => Some(ADAPTIVE),
            "BENCH_pr6.json" => Some(PERSISTENCE),
            "BENCH_pr7.json" => Some(SCALEOUT),
            "BENCH_pr8.json" => Some(TELEMETRY),
            "BENCH_pr9.json" => Some(FAULT),
            "BENCH_pr10.json" => Some(SCHEDULER),
            _ if base.contains("fig07b") => Some(BATCH),
            _ if base.contains("scheduler") => Some(SCHEDULER),
            _ if base.contains("intra_query") => Some(INTRA),
            _ if base.contains("telemetry") => Some(TELEMETRY),
            _ if base.contains("fault") => Some(FAULT),
            _ if base.contains("update") => Some(UPDATE),
            _ if base.contains("fused") => Some(FUSED),
            _ if base.contains("adaptive") => Some(ADAPTIVE),
            _ if base.contains("persistence") => Some(PERSISTENCE),
            _ if base.contains("scaleout") => Some(SCALEOUT),
            _ => None,
        }
    }

    /// Validate one artifact's parsed document against its family schema,
    /// returning every violation (empty = valid).
    pub fn validate(file_name: &str, doc: &Json) -> Vec<String> {
        let base = file_name.rsplit('/').next().unwrap_or(file_name);
        let mut problems = Vec::new();
        if base.contains("kernels-bench") {
            // The criterion-shim emits a flat list of name/ns entries.
            match doc {
                Json::Arr(items) if !items.is_empty() => {
                    for (i, item) in items.iter().enumerate() {
                        if !matches!(item.get("name"), Some(Json::Str(_)))
                            || !matches!(item.get("ns_per_iter"), Some(Json::Num(_)))
                        {
                            problems.push(format!(
                                "entry {i}: expected {{ name: string, ns_per_iter: number }}"
                            ));
                        }
                    }
                }
                _ => problems.push("expected a non-empty array of benchmark entries".into()),
            }
            return problems;
        }
        let Some(required) = required_keys(base) else {
            problems.push(format!(
                "no schema known for '{base}' (see docs/BENCHMARKS.md)"
            ));
            return problems;
        };
        if !matches!(doc, Json::Obj(_)) {
            problems.push(format!(
                "expected a top-level object, got {}",
                doc.type_name()
            ));
            return problems;
        }
        for &(key, kind) in required {
            match doc.get(key) {
                None => problems.push(format!("missing required key '{key}'")),
                Some(value) if !check_kind(value, kind) => problems.push(format!(
                    "key '{key}': expected {kind:?}, got {}",
                    value.type_name()
                )),
                Some(_) => {}
            }
        }
        // Family-specific invariants beyond key presence.
        if let Some(Json::Arr(points)) = doc.get("window_sweep") {
            for (i, point) in points.iter().enumerate() {
                for key in [
                    "window",
                    "fine_entries",
                    "barriers",
                    "modelled_us",
                    "sequential_us",
                    "sharded_us",
                ] {
                    if !matches!(point.get(key), Some(Json::Num(_))) {
                        problems.push(format!("window_sweep[{i}]: missing numeric '{key}'"));
                    }
                }
            }
            if doc.get("partition_invariant") != Some(&Json::Bool(true)) {
                problems.push("partition_invariant must be true".into());
            }
        }
        // Scheduler family: pooled execution must be bit-identical to the
        // spawn-per-window executor, batch formation must win the sweep's
        // top offered load, and every row carries its columns. The
        // pooled-vs-spawn wall-clock comparison gates only `mode: "full"`
        // artifacts (smoke runs on shared CI runners are too noisy).
        if let Some(Json::Arr(points)) = doc.get("pool_window_sweep") {
            if doc.get("results_identical_to_spawn") != Some(&Json::Bool(true)) {
                problems.push("results_identical_to_spawn must be true".into());
            }
            let full = doc.get("mode") == Some(&Json::Str("full".into()));
            for (i, point) in points.iter().enumerate() {
                for key in [
                    "window",
                    "fine_entries",
                    "barriers",
                    "modelled_us",
                    "pooled_us",
                    "spawn_us",
                ] {
                    if !matches!(point.get(key), Some(Json::Num(_))) {
                        problems.push(format!("pool_window_sweep[{i}]: missing numeric '{key}'"));
                    }
                }
                if full {
                    if let (
                        Some(Json::Num(window)),
                        Some(Json::Num(pooled)),
                        Some(Json::Num(spawn)),
                    ) = (
                        point.get("window"),
                        point.get("pooled_us"),
                        point.get("spawn_us"),
                    ) {
                        if (4.0..=32.0).contains(window) && *pooled > *spawn {
                            problems.push(format!(
                                "pool_window_sweep[{i}]: pooled_us ({pooled}) must not exceed \
                                 spawn_us ({spawn}) at window {window} in full mode"
                            ));
                        }
                    }
                }
            }
        }
        if let Some(Json::Arr(points)) = doc.get("pipeline_sweep") {
            if doc.get("batch_formation_wins") != Some(&Json::Bool(true)) {
                problems.push("batch_formation_wins must be true".into());
            }
            for (i, point) in points.iter().enumerate() {
                for key in [
                    "offered_qps",
                    "max_batch",
                    "requests",
                    "completed",
                    "shed",
                    "p50_us",
                    "p99_us",
                    "throughput_qps",
                ] {
                    if !matches!(point.get(key), Some(Json::Num(_))) {
                        problems.push(format!("pipeline_sweep[{i}]: missing numeric '{key}'"));
                    }
                }
            }
        }
        if let Some(torn) = doc.get("torn_tail") {
            if doc.get("results_identical_to_precrash") != Some(&Json::Bool(true)) {
                problems.push("results_identical_to_precrash must be true".into());
            }
            if torn.get("quarantined") != Some(&Json::Bool(true)) {
                problems.push("torn_tail.quarantined must be true".into());
            }
            for (section, keys) in [
                ("snapshot", &["bytes", "write_us", "bytes_per_entry"][..]),
                (
                    "wal",
                    &["ops", "bytes", "logged_ops_per_s", "unlogged_ops_per_s"][..],
                ),
                ("recovery", &["wal_records_replayed", "recover_us"][..]),
            ] {
                let Some(obj) = doc.get(section) else {
                    continue;
                };
                for key in keys {
                    if !matches!(obj.get(key), Some(Json::Num(_))) {
                        problems.push(format!("{section}: missing numeric '{key}'"));
                    }
                }
            }
        }
        // Telemetry family: the enabled-run must be result-identical, and
        // the committed (full-mode) overhead on the fused batch-8 path must
        // stay within the PR 8 budget. Smoke runs on shared CI runners are
        // too noisy to gate on the percentage, so only `mode: "full"`
        // artifacts enforce the bound.
        if let Some(fused8) = doc.get("fused_batch8") {
            if doc.get("results_identical_with_telemetry") != Some(&Json::Bool(true)) {
                problems.push("results_identical_with_telemetry must be true".into());
            }
            for key in ["off_qps", "on_qps", "overhead_pct"] {
                if !matches!(fused8.get(key), Some(Json::Num(_))) {
                    problems.push(format!("fused_batch8: missing numeric '{key}'"));
                }
            }
            if doc.get("mode") == Some(&Json::Str("full".into())) {
                if let Some(Json::Num(pct)) = fused8.get("overhead_pct") {
                    if *pct > 3.0 {
                        problems.push(format!(
                            "fused_batch8.overhead_pct must be <= 3.0 in full mode, got {pct}"
                        ));
                    }
                }
            }
            if let Some(exporters) = doc.get("exporters") {
                for key in ["prometheus_bytes", "json_snapshot_valid"] {
                    if exporters.get(key).is_none() {
                        problems.push(format!("exporters: missing '{key}'"));
                    }
                }
            }
        }
        // The modelled search-vs-mutation interference section (always
        // present in the telemetry family, opt-in for the update family —
        // the committed `BENCH_pr3.json` predates it).
        if let Some(interference) = doc.get("interference") {
            for key in [
                "quiescent_p50_us",
                "quiescent_p95_us",
                "quiescent_p99_us",
                "dirty_p50_us",
                "dirty_p95_us",
                "dirty_p99_us",
                "mutation_p50_us",
                "mutation_p99_us",
            ] {
                if !matches!(interference.get(key), Some(Json::Num(_))) {
                    problems.push(format!("interference: missing numeric '{key}'"));
                }
            }
        }
        // Fault-tolerance family: every covered (full-coverage) answer must
        // be bit-identical to the no-fault run, and each sweep row carries
        // the availability/latency columns.
        if let Some(Json::Arr(points)) = doc.get("failure_sweep") {
            if doc.get("results_identical_when_covered") != Some(&Json::Bool(true)) {
                problems.push("results_identical_when_covered must be true".into());
            }
            for (i, point) in points.iter().enumerate() {
                for key in [
                    "replication",
                    "fail_ppm",
                    "modelled_qps",
                    "fanout_p99_us",
                    "availability",
                    "degraded_queries",
                ] {
                    if !matches!(point.get(key), Some(Json::Num(_))) {
                        problems.push(format!("failure_sweep[{i}]: missing numeric '{key}'"));
                    }
                }
            }
        }
        // The retry/backoff machinery must be free on the healthy path:
        // the PR 9 budget caps the full-mode overhead of running with a
        // zero-rate fault plan at 3% (smoke runs are too noisy to gate).
        if let Some(overhead) = doc.get("retry_overhead") {
            for key in ["healthy_qps", "guarded_qps", "overhead_pct"] {
                if !matches!(overhead.get(key), Some(Json::Num(_))) {
                    problems.push(format!("retry_overhead: missing numeric '{key}'"));
                }
            }
            if doc.get("mode") == Some(&Json::Str("full".into())) {
                if let Some(Json::Num(pct)) = overhead.get("overhead_pct") {
                    if *pct > 3.0 {
                        problems.push(format!(
                            "retry_overhead.overhead_pct must be <= 3.0 in full mode, got {pct}"
                        ));
                    }
                }
            }
        }
        // Per-policy hedge completion quantiles: any `policies` row that
        // carries one quantile must carry the full p50/p95/p99 triple
        // (opt-in for the scaleout family — `BENCH_pr7.json` predates it).
        for section in ["hedging", "hedge_quantiles"] {
            let Some(Json::Arr(policies)) = doc.get(section).and_then(|h| h.get("policies")) else {
                continue;
            };
            let mandatory = section == "hedge_quantiles";
            for (i, policy) in policies.iter().enumerate() {
                if !mandatory && policy.get("completion_p50_us").is_none() {
                    continue;
                }
                for key in [
                    "completion_p50_us",
                    "completion_p95_us",
                    "completion_p99_us",
                ] {
                    if !matches!(policy.get(key), Some(Json::Num(_))) {
                        problems.push(format!("{section}.policies[{i}]: missing numeric '{key}'"));
                    }
                }
            }
        }
        problems
    }

    /// Read, parse and validate one artifact file.
    ///
    /// # Errors
    ///
    /// Returns the list of violations (I/O and parse errors included).
    pub fn validate_file(path: &str) -> Result<(), Vec<String>> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => return Err(vec![format!("cannot read: {error}")]),
        };
        let doc = match parse(&text) {
            Ok(doc) => doc,
            Err(error) => return Err(vec![format!("malformed JSON: {error}")]),
        };
        let problems = validate(path, &doc);
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod artifact_tests {
    use super::artifacts::{parse, required_keys, validate, Json, Kind};

    #[test]
    fn parser_round_trips_the_artifact_shapes() {
        let doc = parse(
            r#"{ "a": 1.5, "b": [true, null, "x\n\"yA"], "nested": { "k": -2e3 }, "empty": [], "eo": {} }"#,
        )
        .unwrap();
        assert_eq!(doc.get("a"), Some(&Json::Num(1.5)));
        assert_eq!(
            doc.get("b"),
            Some(&Json::Arr(vec![
                Json::Bool(true),
                Json::Null,
                Json::Str("x\n\"yA".into())
            ]))
        );
        assert_eq!(
            doc.get("nested").unwrap().get("k"),
            Some(&Json::Num(-2000.0))
        );
        assert_eq!(doc.get("empty"), Some(&Json::Arr(vec![])));
        assert!(parse("{ \"unterminated\": ").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("[1, 2,]").is_err());
    }

    #[test]
    fn committed_artifacts_validate_and_corruptions_fail() {
        // The real committed artifacts at the repository root must pass.
        for name in [
            "BENCH_pr1.json",
            "BENCH_pr2.json",
            "BENCH_pr3.json",
            "BENCH_pr4.json",
            "BENCH_pr5.json",
            "BENCH_pr6.json",
            "BENCH_pr7.json",
            "BENCH_pr8.json",
            "BENCH_pr9.json",
            "BENCH_pr10.json",
        ] {
            let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&path).expect("committed artifact readable");
            let doc = parse(&text).expect("committed artifact parses");
            let problems = validate(name, &doc);
            assert!(problems.is_empty(), "{name}: {problems:?}");

            // Dropping any required key must be caught.
            let (first_key, _) = required_keys(name).unwrap()[0];
            if let Json::Obj(ref fields) = doc {
                let stripped = Json::Obj(
                    fields
                        .iter()
                        .filter(|(k, _)| k != first_key)
                        .cloned()
                        .collect(),
                );
                assert!(
                    !validate(name, &stripped).is_empty(),
                    "{name}: dropping '{first_key}' must fail validation"
                );
            }
        }
    }

    #[test]
    fn schema_families_cover_smoke_artifacts_and_reject_unknown() {
        assert_eq!(
            required_keys("BENCH_adaptive_smoke.json"),
            required_keys("BENCH_pr5.json")
        );
        assert_eq!(
            required_keys("BENCH_fused_smoke.json"),
            required_keys("BENCH_pr4.json")
        );
        assert_eq!(
            required_keys("BENCH_update_smoke.json"),
            required_keys("BENCH_pr3.json")
        );
        assert_eq!(
            required_keys("path/to/BENCH_intra_query.json"),
            required_keys("BENCH_pr2.json")
        );
        assert_eq!(
            required_keys("BENCH_fig07b.json"),
            required_keys("BENCH_pr1.json")
        );
        assert_eq!(
            required_keys("BENCH_persistence_smoke.json"),
            required_keys("BENCH_pr6.json")
        );
        assert_eq!(
            required_keys("BENCH_scaleout_smoke.json"),
            required_keys("BENCH_pr7.json")
        );
        assert_eq!(
            required_keys("BENCH_telemetry_smoke.json"),
            required_keys("BENCH_pr8.json")
        );
        assert_eq!(
            required_keys("BENCH_fault_tolerance_smoke.json"),
            required_keys("BENCH_pr9.json")
        );
        assert_eq!(
            required_keys("BENCH_scheduler_smoke.json"),
            required_keys("BENCH_pr10.json")
        );
        assert!(required_keys("mystery.json").is_none());
        assert!(!validate("mystery.json", &Json::Obj(vec![])).is_empty());
        // A wrongly typed required key is reported with both types.
        let doc = parse(r#"{ "available_cores": "one" }"#).unwrap();
        let problems = validate("BENCH_pr2.json", &doc);
        assert!(problems.iter().any(|p| p.contains("available_cores")));
        // The kernels list validates entry by entry.
        let kernels = parse(r#"[ { "name": "x", "ns_per_iter": 1.0 } ]"#).unwrap();
        assert!(validate("kernels-bench.json", &kernels).is_empty());
        let bad = parse(r#"[ { "name": 3 } ]"#).unwrap();
        assert!(!validate("kernels-bench.json", &bad).is_empty());
        let _ = Kind::Num;
    }

    #[test]
    fn telemetry_family_enforces_overhead_and_quantile_invariants() {
        let doc = parse(
            r#"{ "mode": "full", "results_identical_with_telemetry": false,
                 "fused_batch8": { "off_qps": 100.0, "on_qps": 90.0, "overhead_pct": 10.0 },
                 "hedge_quantiles": { "policies": [ { "deadline": "none" } ] } }"#,
        )
        .unwrap();
        let problems = validate("BENCH_pr8.json", &doc);
        assert!(problems.iter().any(|p| p.contains("overhead_pct must")));
        assert!(problems
            .iter()
            .any(|p| p.contains("results_identical_with_telemetry")));
        assert!(problems.iter().any(|p| p.contains("completion_p50_us")));
        // Smoke artifacts are too noisy to gate on the percentage.
        let smoke = parse(
            r#"{ "mode": "smoke", "results_identical_with_telemetry": true,
                 "fused_batch8": { "off_qps": 100.0, "on_qps": 90.0, "overhead_pct": 10.0 } }"#,
        )
        .unwrap();
        let smoke_problems = validate("BENCH_telemetry_smoke.json", &smoke);
        assert!(!smoke_problems
            .iter()
            .any(|p| p.contains("overhead_pct must")));
        // An update artifact that opts into the interference section must
        // carry the full quantile set; scaleout policy rows that opt into
        // completion quantiles must carry the whole triple.
        let update = parse(r#"{ "interference": { "quiescent_p50_us": 1.0 } }"#).unwrap();
        assert!(validate("BENCH_pr3.json", &update)
            .iter()
            .any(|p| p.contains("dirty_p99_us")));
        let scaleout = parse(
            r#"{ "hedging": { "policies": [
                 { "deadline": "none", "completion_p50_us": 1.0 },
                 { "deadline": "none" } ] } }"#,
        )
        .unwrap();
        let scaleout_problems = validate("BENCH_pr7.json", &scaleout);
        assert!(scaleout_problems
            .iter()
            .any(|p| p.contains("policies[0]") && p.contains("completion_p95_us")));
        assert!(!scaleout_problems.iter().any(|p| p.contains("policies[1]")));
    }

    #[test]
    fn scheduler_family_enforces_identity_and_formation_invariants() {
        // Identity and formation-win flags must be true, sweep rows carry
        // their columns, and the pooled-vs-spawn wall comparison gates
        // full-mode artifacts only.
        let doc = parse(
            r#"{ "mode": "full", "results_identical_to_spawn": false,
                 "batch_formation_wins": false,
                 "pool_window_sweep": [ { "window": 8, "fine_entries": 1, "barriers": 1,
                                          "modelled_us": 1.0, "pooled_us": 20.0,
                                          "spawn_us": 10.0 } ],
                 "pipeline_sweep": [ { "offered_qps": 1000.0 } ] }"#,
        )
        .unwrap();
        let problems = validate("BENCH_pr10.json", &doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("results_identical_to_spawn")));
        assert!(problems.iter().any(|p| p.contains("batch_formation_wins")));
        assert!(problems
            .iter()
            .any(|p| p.contains("pooled_us") && p.contains("must not exceed")));
        assert!(problems
            .iter()
            .any(|p| p.contains("pipeline_sweep[0]") && p.contains("p99_us")));
        // The same slow-pooled point passes in smoke mode (wall-clock noise
        // on shared runners), while the structural checks still apply.
        let smoke = parse(
            r#"{ "available_cores": 1, "mode": "smoke",
                 "dataset": { "entries": 4096, "dim": 768 },
                 "results_identical_to_spawn": true,
                 "batch_formation_wins": true,
                 "pool_window_sweep": [ { "window": 8, "fine_entries": 1, "barriers": 1,
                                          "modelled_us": 1.0, "pooled_us": 20.0,
                                          "spawn_us": 10.0 } ],
                 "pipeline_sweep": [ { "offered_qps": 1000.0, "max_batch": 8,
                                       "requests": 10, "completed": 10, "shed": 0,
                                       "p50_us": 1.0, "p99_us": 2.0,
                                       "throughput_qps": 900.0 } ] }"#,
        )
        .unwrap();
        let smoke_problems = validate("BENCH_scheduler_smoke.json", &smoke);
        assert!(
            smoke_problems.is_empty(),
            "smoke artifact must pass: {smoke_problems:?}"
        );
    }

    #[test]
    fn fault_family_enforces_identity_columns_and_overhead() {
        // Full-coverage identity must hold, sweep rows carry the columns,
        // and the healthy-path retry overhead is budgeted in full mode.
        let doc = parse(
            r#"{ "mode": "full", "results_identical_when_covered": false,
                 "retry_overhead": { "healthy_qps": 100.0, "guarded_qps": 90.0,
                                     "overhead_pct": 10.0 },
                 "failure_sweep": [ { "replication": 1 } ] }"#,
        )
        .unwrap();
        let problems = validate("BENCH_pr9.json", &doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("results_identical_when_covered")));
        assert!(problems
            .iter()
            .any(|p| p.contains("overhead_pct must be <= 3.0")));
        assert!(problems
            .iter()
            .any(|p| p.contains("failure_sweep[0]") && p.contains("availability")));
        // Smoke artifacts are too noisy to gate on the percentage.
        let smoke = parse(
            r#"{ "mode": "smoke",
                 "retry_overhead": { "healthy_qps": 100.0, "guarded_qps": 90.0,
                                     "overhead_pct": 10.0 } }"#,
        )
        .unwrap();
        let smoke_problems = validate("BENCH_fault_tolerance_smoke.json", &smoke);
        assert!(!smoke_problems
            .iter()
            .any(|p| p.contains("overhead_pct must")));
    }
}

#[cfg(test)]
mod tests {
    use super::calibration::{calibrate, measure_pass_fraction, nprobe_fraction_for_recall};
    use super::fullscale::{estimate_reis, SearchMode};
    use super::report::geomean;
    use reis_core::ReisConfig;
    use reis_workloads::{DatasetProfile, SyntheticDataset};

    fn small_dataset() -> SyntheticDataset {
        SyntheticDataset::generate(DatasetProfile::hotpotqa().scaled(512).with_queries(4), 13)
    }

    #[test]
    fn calibration_produces_monotone_recall_curve_and_plausible_pass_fraction() {
        let dataset = small_dataset();
        let calibration = calibrate(&dataset, 0.47, 10);
        assert!(calibration.pass_fraction > 0.0 && calibration.pass_fraction < 1.0);
        let recalls: Vec<f64> = calibration.recall_curve.iter().map(|&(_, r)| r).collect();
        assert!(
            recalls.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            "recall must not drop as nprobe grows: {recalls:?}"
        );
        assert!(*recalls.last().unwrap() > 0.8);
        let fraction = nprobe_fraction_for_recall(&calibration, 0.5);
        assert!(fraction <= 1.0);
        assert!(measure_pass_fraction(&dataset, 0.0) < 0.05);
    }

    #[test]
    fn full_scale_estimates_follow_the_paper_shapes() {
        let profile = DatasetProfile::wiki_en();
        let ssd1 = ReisConfig::ssd1();
        let ssd2 = ReisConfig::ssd2();
        let bf1 = estimate_reis(&profile, &ssd1, SearchMode::BruteForce, 0.01, 10);
        let bf2 = estimate_reis(&profile, &ssd2, SearchMode::BruteForce, 0.01, 10);
        let ivf1 = estimate_reis(
            &profile,
            &ssd1,
            SearchMode::Ivf {
                nprobe_fraction: 0.02,
            },
            0.01,
            10,
        );
        // SSD2 beats SSD1; IVF beats brute force.
        assert!(bf2.qps > bf1.qps);
        assert!(ivf1.qps > bf1.qps);
        assert!(bf1.energy.total_j() > 0.0);
        assert!(bf1.qps_per_watt > 0.0);
        assert!(geomean(&[2.0, 8.0]) - 4.0 < 1e-9);
    }
}
