//! Validate measured-benchmark JSON artifacts against the schemas of
//! `docs/BENCHMARKS.md`.
//!
//! Usage: `validate_bench_artifacts FILE [FILE …]`
//!
//! Each file is parsed with the offline JSON parser and checked for its
//! family's required keys and types (`reis_bench::artifacts`); the binary
//! prints one line per file and exits non-zero if any file fails. CI runs
//! this over the committed `BENCH_pr*.json` files and every freshly
//! produced smoke artifact before uploading them, so a hand-written JSON
//! emitter can never silently drift from the documented schema.

use reis_bench::artifacts;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: validate_bench_artifacts FILE [FILE ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for file in &files {
        match artifacts::validate_file(file) {
            Ok(()) => println!("ok      {file}"),
            Err(problems) => {
                failed = true;
                println!("FAILED  {file}");
                for problem in problems {
                    println!("        - {problem}");
                }
            }
        }
    }
    if failed {
        eprintln!("\nbenchmark artifact validation failed (schemas: docs/BENCHMARKS.md)");
        std::process::exit(1);
    }
    println!("\n{} artifact(s) valid", files.len());
}
