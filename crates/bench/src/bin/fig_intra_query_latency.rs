//! Intra-query scan sharding: measured (wall-clock) single-query latency of
//! the functional simulator versus the shard count.
//!
//! PR 1's `fig07b_batch_throughput` shows throughput scaling *across*
//! queries; this benchmark shows the complementary REIS claim — that
//! flash-internal parallelism shortens the latency of *one* query — by
//! sweeping `ScanParallelism` over one deployment and timing individual
//! `search` / `ivf_search` calls. It also re-verifies, on every shard
//! count, that the sharded results are identical to the sequential scan.
//!
//! Results are written to `BENCH_intra_query.json` by default (the
//! committed `BENCH_pr2.json` is PR 2's recorded run; refreshing it takes
//! an explicit `--output BENCH_pr2.json`); pass `--output PATH` (or set
//! `REIS_BENCH_OUT`) to write elsewhere. Like all wall-clock benchmarks in
//! this repo, the scaling column is only meaningful on multi-core hosts —
//! the emitted JSON records `available_cores` so readers can tell (see
//! `docs/BENCHMARKS.md`).
//!
//! Adaptive distance filtering stays enabled (brute-force scans adapt by
//! default): since the windowed threshold schedule is partition-invariant,
//! the brute-force sweep genuinely shards while transferring the same
//! entries at every shard count — the per-point identity check covers the
//! adaptive path too. The window is raised to 64 pages because a window is
//! the unit of parallel work between two barriers: under the default
//! 16-page per-shard minimum the default 4-page window (tuned for transfer
//! cuts, not parallelism) would run every window sequentially and make the
//! BF sweep a no-op. (`fig_adaptive_window` sweeps the window size itself
//! and shows that trade.)

use std::time::Instant;

use reis_bench::report;
use reis_core::{ReisConfig, ReisSystem, ScanParallelism, VectorDatabase};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const ENTRIES: usize = 32_768;
const NLIST: usize = 64;
const NPROBE: usize = 16;
const K: usize = 10;
const QUERIES: usize = 4;
const REPEATS: usize = 5;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct LatencyPoint {
    shards: usize,
    mean_us: f64,
    identical: bool,
}

/// Reference signature of one query's results: ids and distances in rank
/// order, used to check shard-count invariance.
fn signature(
    system: &mut ReisSystem,
    db_id: u32,
    query: &[f32],
    nprobe: Option<usize>,
) -> Vec<(usize, f32)> {
    let outcome = match nprobe {
        Some(np) => system
            .ivf_search_with_nprobe(db_id, query, K, np)
            .expect("ivf search"),
        None => system.search(db_id, query, K).expect("search"),
    };
    outcome.results.iter().map(|n| (n.id, n.distance)).collect()
}

/// Best-of-`REPEATS` wall-clock latency of each query, averaged over the
/// query set, in microseconds.
fn measure(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    nprobe: Option<usize>,
) -> f64 {
    let mut total_us = 0.0;
    for query in queries {
        let mut best = f64::INFINITY;
        for _ in 0..REPEATS {
            let start = Instant::now();
            match nprobe {
                Some(np) => {
                    system
                        .ivf_search_with_nprobe(db_id, query, K, np)
                        .expect("ivf search");
                }
                None => {
                    system.search(db_id, query, K).expect("search");
                }
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        total_us += best;
    }
    total_us / queries.len() as f64
}

fn sweep(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    nprobe: Option<usize>,
    label: &str,
) -> Vec<LatencyPoint> {
    // Sequential reference signatures for the invariance check. Pinned:
    // the plain `sequential()` default would be auto-upgraded to
    // `available_parallelism` shards by single-query search.
    system.set_scan_parallelism(ScanParallelism::pinned_sequential());
    let reference: Vec<_> = queries
        .iter()
        .map(|q| signature(system, db_id, q, nprobe))
        .collect();

    println!("\n{label}:");
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            system.set_scan_parallelism(if shards == 1 {
                ScanParallelism::pinned_sequential()
            } else {
                ScanParallelism::sharded(shards)
            });
            let identical = queries
                .iter()
                .zip(&reference)
                .all(|(q, r)| signature(system, db_id, q, nprobe) == *r);
            let mean_us = measure(system, db_id, queries, nprobe);
            println!(
                "    {shards:>2} shard(s)  {mean_us:>10.1} us/query   identical_to_sequential: {identical}"
            );
            LatencyPoint {
                shards,
                mean_us,
                identical,
            }
        })
        .collect()
}

fn points_json(points: &[LatencyPoint]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"shards\": {}, \"mean_us\": {:.1}, \"identical_to_sequential\": {} }}",
                p.shards, p.mean_us, p.identical
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn speedup(points: &[LatencyPoint]) -> f64 {
    let sequential = points.first().map(|p| p.mean_us).unwrap_or(0.0);
    let best = points
        .iter()
        .map(|p| p.mean_us)
        .fold(f64::INFINITY, f64::min);
    if best > 0.0 {
        sequential / best
    } else {
        0.0
    }
}

fn main() {
    report::header(
        "Intra-query latency",
        "Measured single-query latency vs. scan shard count",
    );

    println!("Building {ENTRIES}-entry synthetic dataset (IVF, nlist {NLIST})…");
    let dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(ENTRIES)
            .with_queries(QUERIES),
        43,
    );
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), NLIST)
        .expect("database construction");
    let mut system = ReisSystem::new(ReisConfig::ssd1());
    // 64-page windows clear the default per-shard page minimum (16), so
    // each adaptive window splits into up to 4 channel/die shards and the
    // BF sweep exercises sharded-adaptive execution (see module docs).
    system.set_adaptive_window(64);
    let db_id = system.deploy(&database).expect("deployment");
    let queries: Vec<Vec<f32>> = dataset.queries().to_vec();

    let bf = sweep(
        &mut system,
        db_id,
        &queries,
        None,
        "Brute-force single-query latency",
    );
    let ivf = sweep(
        &mut system,
        db_id,
        &queries,
        Some(NPROBE),
        "IVF single-query latency (nprobe 16)",
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nBest speedup over sequential on {cores} core(s): brute force {:.2}x, IVF {:.2}x",
        speedup(&bf),
        speedup(&ivf)
    );
    if cores == 1 {
        println!(
            "note: only one CPU is available, so shard workers can only add overhead; \
             the latency column is meaningful on multi-core hosts"
        );
    }

    let all_identical = bf.iter().chain(&ivf).all(|p| p.identical);
    assert!(
        all_identical,
        "sharded results diverged from the sequential scan"
    );

    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \
         \"dataset\": {{ \"entries\": {ENTRIES}, \"dim\": 1024, \"nlist\": {NLIST} }},\n  \
         \"queries\": {QUERIES},\n  \"repeats_per_point\": {REPEATS},\n  \
         \"single_query_latency_us\": {{\n    \"brute_force\": [\n{}\n    ],\n    \
         \"ivf_nprobe{NPROBE}\": [\n{}\n    ]\n  }},\n  \
         \"speedup_at_best_shard_count\": {{ \"brute_force\": {:.2}, \"ivf_nprobe{NPROBE}\": {:.2} }}\n}}\n",
        points_json(&bf),
        points_json(&ivf),
        speedup(&bf),
        speedup(&ivf),
    );
    let path = report::output_path("BENCH_intra_query.json");
    std::fs::write(&path, json).expect("write benchmark json");
    println!("\nwrote {path}");
}
