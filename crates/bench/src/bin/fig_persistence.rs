//! Durability costs and crash recovery: checkpoint size and write time,
//! WAL logging overhead on the mutation path, and recovery latency — with
//! an in-binary check that the recovered system answers searches exactly
//! like the one that "crashed".
//!
//! Four measurements:
//!
//! * **Snapshot** — bytes and wall time of the deploy checkpoint (the full
//!   corpus read back from simulated flash and serialized with per-section
//!   CRC32C).
//! * **WAL overhead** — the same seeded mutation trace driven through an
//!   in-memory system and a durably opened one; the delta is the cost of
//!   framing + checksumming + appending one record per mutation.
//! * **Recovery** — wall time of `ReisSystem::recover` (newest snapshot +
//!   full WAL replay through the normal mutation paths), and the
//!   recovered-equals-pre-crash search check that gates the artifact.
//! * **Torn tail** — recovery time and quarantine flag when the WAL ends
//!   mid-frame, as after a real power cut.
//!
//! Results are written to `BENCH_pr6.json` by default (this benchmark's
//! committed artifact); pass `--output PATH` (or `REIS_BENCH_OUT`) to
//! write elsewhere, and `--smoke` (or `REIS_BENCH_SMOKE=1`) for the fast
//! CI variant.

use std::time::Instant;

use reis_bench::report;
use reis_core::{CompactionPolicy, DirVfs, DurableStore, ReisConfig, ReisSystem, VectorDatabase};
use reis_workloads::{MutationMix, MutationOp, MutationTrace};

const DIM: usize = 64;
const TRACE_DOC_BYTES: usize = 64;
const INIT_DOC_BYTES: usize = 72;
const K: usize = 10;
const TRACE_SEED: u64 = 0x9E15_7ED5;

struct RunShape {
    mode: &'static str,
    entries: usize,
    mutations: usize,
}

fn shape() -> RunShape {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    if smoke {
        RunShape {
            mode: "smoke",
            entries: 1_024,
            mutations: 64,
        }
    } else {
        RunShape {
            mode: "full",
            entries: 8_192,
            mutations: 512,
        }
    }
}

fn vector_for(id: u32) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            let x = (id as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(d as u64 * 0x85EB_CA6B);
            ((x >> 7) % 23) as f32 - 11.0
        })
        .collect()
}

fn doc_for(id: u32) -> Vec<u8> {
    let mut text = format!("persistence bench doc {id:06} ");
    while text.len() < INIT_DOC_BYTES {
        text.push('.');
    }
    text.into_bytes()
}

/// Apply the trace's mutating ops (searches are skipped — this times the
/// write path), returning the op count and elapsed seconds.
fn run_mutations(system: &mut ReisSystem, db: u32, trace: &MutationTrace) -> (usize, f64) {
    let start = Instant::now();
    let mut ops = 0usize;
    for op in trace.ops() {
        match op {
            MutationOp::Insert { vector, document } => {
                system.insert(db, vector, document.clone()).expect("insert");
            }
            MutationOp::Delete { target } => {
                system.delete(db, *target as u32).expect("delete");
            }
            MutationOp::Upsert {
                target,
                vector,
                document,
            } => {
                system
                    .upsert(db, *target as u32, vector, document)
                    .expect("upsert");
            }
            MutationOp::Search { .. } => continue,
        }
        ops += 1;
    }
    (ops, start.elapsed().as_secs_f64())
}

fn search_signatures(system: &mut ReisSystem, db: u32) -> Vec<Vec<(usize, u32)>> {
    (0..4u32)
        .map(|q| {
            let outcome = system
                .search(db, &vector_for(500_000 + q), K)
                .expect("search");
            outcome
                .results
                .iter()
                .map(|n| (n.id, n.distance.to_bits()))
                .collect()
        })
        .collect()
}

fn file_bytes(root: &std::path::Path, prefix: &str) -> u64 {
    std::fs::read_dir(root)
        .expect("store dir")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with(prefix))
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum()
}

fn main() {
    let shape = shape();
    report::header(
        "Persistence and crash recovery",
        "Snapshot size/time, WAL logging overhead, recovery latency",
    );

    let entries = shape.entries;
    println!("Building {entries}-entry corpus ({} mode)…", shape.mode);
    let vectors: Vec<Vec<f32>> = (0..entries as u32).map(vector_for).collect();
    let documents: Vec<Vec<u8>> = (0..entries as u32).map(doc_for).collect();
    let template = VectorDatabase::flat(&vectors, documents).expect("database");
    let trace = MutationTrace::generate(
        entries,
        DIM,
        TRACE_DOC_BYTES,
        shape.mutations,
        MutationMix::ingest_heavy(),
        TRACE_SEED,
    );
    let config = ReisConfig::ssd1().with_compaction(CompactionPolicy::manual());

    // --- Baseline leg: the same trace with durability off. -------------
    let mut volatile = ReisSystem::new(config);
    let vol_db = volatile.deploy(&template).expect("deploy");
    let (ops, unlogged_s) = run_mutations(&mut volatile, vol_db, &trace);
    let unlogged_ops_per_s = ops as f64 / unlogged_s.max(1e-12);
    drop(volatile);

    // --- Durable leg: deploy checkpoint + logged mutations. ------------
    let root = std::env::temp_dir().join("reis-fig-persistence");
    let _ = std::fs::remove_dir_all(&root);
    let store = DurableStore::new(Box::new(DirVfs::new(&root)));
    let (mut system, _) = ReisSystem::open(config, store).expect("open");
    let start = Instant::now();
    let db = system.deploy(&template).expect("deploy durable");
    let snapshot_us = start.elapsed().as_secs_f64() * 1e6;
    let snapshot_bytes = file_bytes(&root, &DurableStore::snapshot_name(1));
    println!(
        "\nDeploy checkpoint: {snapshot_bytes} bytes \
         ({:.1} bytes/entry), {snapshot_us:.0} us",
        snapshot_bytes as f64 / entries as f64
    );

    let (logged_ops, logged_s) = run_mutations(&mut system, db, &trace);
    assert_eq!(ops, logged_ops);
    let logged_ops_per_s = logged_ops as f64 / logged_s.max(1e-12);
    let wal_bytes = file_bytes(&root, &DurableStore::wal_name(1));
    let overhead_pct = (logged_s / unlogged_s.max(1e-12) - 1.0) * 100.0;
    println!(
        "Mutations ({ops} ops): {unlogged_ops_per_s:.0} ops/s volatile, \
         {logged_ops_per_s:.0} ops/s logged ({overhead_pct:+.1}% wall), \
         WAL {wal_bytes} bytes ({:.1} bytes/op)",
        wal_bytes as f64 / ops as f64
    );

    let before = search_signatures(&mut system, db);
    drop(system); // crash: the mutations exist only in the WAL

    // --- Recovery. ------------------------------------------------------
    let store = DurableStore::new(Box::new(DirVfs::new(&root)));
    let start = Instant::now();
    let (mut recovered, rep) = ReisSystem::recover(config, store).expect("recover");
    let recover_us = start.elapsed().as_secs_f64() * 1e6;
    let identical = search_signatures(&mut recovered, db) == before;
    assert!(identical, "recovered searches diverged from pre-crash");
    assert_eq!(rep.wal_records_applied, ops as u64);
    assert!(rep.quarantined.is_none());
    println!(
        "Recovery: {} WAL records replayed in {recover_us:.0} us \
         ({:.2} us/record); searches bit-identical to pre-crash",
        rep.wal_records_applied,
        recover_us / ops.max(1) as f64
    );
    drop(recovered);

    // --- Torn-tail recovery. ---------------------------------------------
    // Recovery re-checkpointed, so the newest WAL is empty; tear it the
    // way a mid-append power cut would and recover once more.
    let newest_wal = std::fs::read_dir(&root)
        .expect("store dir")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("wal-"))
        .max()
        .expect("a WAL exists");
    let mut torn = std::fs::read(root.join(&newest_wal)).expect("read wal");
    torn.extend_from_slice(&[0x01, 0x02, 0x03, 0x04, 0x05]);
    std::fs::write(root.join(&newest_wal), torn).expect("tear wal");
    let store = DurableStore::new(Box::new(DirVfs::new(&root)));
    let start = Instant::now();
    let (mut after_tear, rep2) = ReisSystem::recover(config, store).expect("recover torn");
    let torn_recover_us = start.elapsed().as_secs_f64() * 1e6;
    let quarantined = rep2.quarantined.is_some();
    assert!(quarantined, "the torn tail must be quarantined");
    assert!(
        search_signatures(&mut after_tear, db) == before,
        "torn-tail recovery diverged"
    );
    println!("Torn-tail recovery: quarantined and recovered in {torn_recover_us:.0} us");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{}\",\n  \
         \"dataset\": {{ \"entries\": {entries}, \"dim\": {DIM} }},\n  \
         \"results_identical_to_precrash\": {identical},\n  \
         \"snapshot\": {{ \"bytes\": {snapshot_bytes}, \"write_us\": {snapshot_us:.1}, \
         \"bytes_per_entry\": {:.2} }},\n  \
         \"wal\": {{ \"ops\": {ops}, \"bytes\": {wal_bytes}, \
         \"bytes_per_op\": {:.2}, \"logged_ops_per_s\": {logged_ops_per_s:.1}, \
         \"unlogged_ops_per_s\": {unlogged_ops_per_s:.1}, \
         \"logging_overhead_pct\": {overhead_pct:.2} }},\n  \
         \"recovery\": {{ \"wal_records_replayed\": {}, \"recover_us\": {recover_us:.1}, \
         \"us_per_record\": {:.3} }},\n  \
         \"torn_tail\": {{ \"quarantined\": {quarantined}, \
         \"recover_us\": {torn_recover_us:.1} }}\n}}\n",
        shape.mode,
        snapshot_bytes as f64 / entries as f64,
        wal_bytes as f64 / ops as f64,
        rep.wal_records_applied,
        recover_us / ops.max(1) as f64,
    );
    let path = report::output_path("BENCH_pr6.json");
    std::fs::write(&path, json).expect("write benchmark artifact");
    println!("\nWrote {path}");
}
