//! Fused batch execution: measured throughput and physical page senses of
//! the page-major shared-device batch path versus the per-worker-replica
//! baseline.
//!
//! PR 4 rebuilds `ReisSystem::search_batch` on a fused multi-query scan:
//! the batch's probed pages are sensed once each and scored against every
//! in-flight query in a single pass over the page words, instead of every
//! query re-sensing every page on its own device replica. This benchmark
//! sweeps the batch size and reports, for both execution modes:
//!
//! 1. **Wall-clock batch QPS** (best of a few rounds).
//! 2. **Pages sensed per query** — the device-level `page_reads` delta of
//!    one batch divided by the batch size. This is the amortization
//!    headline: fused senses the union once, replicas sense per query.
//! 3. **Results identity** — every fused outcome is asserted bit-identical
//!    (results, documents, activity, modelled latency) to running the same
//!    query alone through `ReisSystem::search`.
//! 4. The **modelled** single-sense/multi-score scan latency
//!    (`PerfModel::fused_scan`) against `B` independent modelled scans.
//!
//! Results are written to `BENCH_pr4.json` by default (this is PR 4's own
//! committed artifact); pass `--output PATH` (or set `REIS_BENCH_OUT`) to
//! write elsewhere. Pass `--smoke` (or set `REIS_BENCH_SMOKE=1`) for the
//! fast CI configuration; the emitted JSON records which mode produced it.

use std::time::Instant;

use reis_bench::report;
use reis_core::{BatchFusion, PerfModel, ReisConfig, ReisSystem, SearchOutcome, VectorDatabase};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const NPROBE: usize = 8;
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

struct Scale {
    mode: &'static str,
    bf_entries: usize,
    ivf_entries: usize,
    nlist: usize,
    min_measure_secs: f64,
}

impl Scale {
    fn pick() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
        if smoke {
            Scale {
                mode: "smoke",
                bf_entries: 2_048,
                ivf_entries: 768,
                nlist: 16,
                min_measure_secs: 0.05,
            }
        } else {
            // 131072 entries = 1024 embedding pages: the brute-force scan
            // dominates the (batch-invariant) rerank/document senses, so
            // the batch-8 amortization is visible in the device totals.
            Scale {
                mode: "full",
                bf_entries: 131_072,
                ivf_entries: 10_240,
                nlist: 64,
                min_measure_secs: 0.3,
            }
        }
    }
}

struct BatchPoint {
    batch: usize,
    fused_qps: f64,
    replica_qps: f64,
    fused_senses_per_query: f64,
    replica_senses_per_query: f64,
}

impl BatchPoint {
    fn sense_reduction(&self) -> f64 {
        if self.fused_senses_per_query <= 0.0 {
            0.0
        } else {
            self.replica_senses_per_query / self.fused_senses_per_query
        }
    }
}

fn run_batch(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    nprobe: Option<usize>,
) -> Vec<SearchOutcome> {
    match nprobe {
        Some(np) => system
            .ivf_search_batch_with_nprobe(db_id, queries, K, np, queries.len())
            .expect("batch search"),
        None => system
            .search_batch(db_id, queries, K, queries.len())
            .expect("batch search"),
    }
}

/// Wall-clock QPS of the batch: repeat until at least `min_secs` have been
/// measured and report the best single-round rate.
fn measure_qps(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    nprobe: Option<usize>,
    min_secs: f64,
) -> f64 {
    let mut best = 0.0f64;
    let mut elapsed_total = 0.0;
    while elapsed_total < min_secs {
        let start = Instant::now();
        let outcomes = run_batch(system, db_id, queries, nprobe);
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(outcomes.len(), queries.len());
        elapsed_total += secs;
        best = best.max(queries.len() as f64 / secs);
    }
    best
}

/// Device-level page senses of exactly one batch, per query.
fn measure_senses(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    nprobe: Option<usize>,
) -> f64 {
    let before = system.controller().device().stats().page_reads;
    run_batch(system, db_id, queries, nprobe);
    let delta = system.controller().device().stats().page_reads - before;
    delta as f64 / queries.len() as f64
}

/// One query's reference signature: result ids, distances and documents.
fn signature(outcome: &SearchOutcome) -> (Vec<(usize, f32)>, Vec<Vec<u8>>) {
    (
        outcome.results.iter().map(|n| (n.id, n.distance)).collect(),
        outcome.documents.clone(),
    )
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    fused: &mut ReisSystem,
    fused_id: u32,
    replicas: &mut ReisSystem,
    replica_id: u32,
    queries: &[Vec<f32>],
    nprobe: Option<usize>,
    min_secs: f64,
    label: &str,
) -> Vec<BatchPoint> {
    // Sequential per-query references for the identity assertion.
    let reference: Vec<_> = queries
        .iter()
        .map(|q| {
            let outcome = match nprobe {
                Some(np) => fused
                    .ivf_search_with_nprobe(fused_id, q, K, np)
                    .expect("sequential reference"),
                None => fused.search(fused_id, q, K).expect("sequential reference"),
            };
            (signature(&outcome), outcome.latency, outcome.activity)
        })
        .collect();

    println!("\n{label}:");
    BATCH_SIZES
        .iter()
        .map(|&batch| {
            let chunk = &queries[..batch.min(queries.len())];
            // Identity: every fused outcome equals its sequential reference.
            let outcomes = run_batch(fused, fused_id, chunk, nprobe);
            for (i, outcome) in outcomes.iter().enumerate() {
                let (expected_sig, expected_latency, expected_activity) = &reference[i];
                assert_eq!(&signature(outcome), expected_sig, "results, query {i}");
                assert_eq!(&outcome.latency, expected_latency, "latency, query {i}");
                assert_eq!(&outcome.activity, expected_activity, "activity, query {i}");
            }
            let fused_senses = measure_senses(fused, fused_id, chunk, nprobe);
            let replica_senses = measure_senses(replicas, replica_id, chunk, nprobe);
            let fused_qps = measure_qps(fused, fused_id, chunk, nprobe, min_secs);
            let replica_qps = measure_qps(replicas, replica_id, chunk, nprobe, min_secs);
            let point = BatchPoint {
                batch,
                fused_qps,
                replica_qps,
                fused_senses_per_query: fused_senses,
                replica_senses_per_query: replica_senses,
            };
            println!(
                "    batch {batch:>2}  fused {fused_qps:>9.1} QPS / {fused_senses:>8.1} senses-per-query   \
                 replicas {replica_qps:>9.1} QPS / {replica_senses:>8.1} senses-per-query   \
                 sense reduction {:.2}x",
                point.sense_reduction()
            );
            point
        })
        .collect()
}

fn points_json(points: &[BatchPoint]) -> String {
    points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"batch\": {}, \"fused_qps\": {:.1}, \"replica_qps\": {:.1}, \
                 \"fused_senses_per_query\": {:.1}, \"replica_senses_per_query\": {:.1}, \
                 \"sense_reduction\": {:.2} }}",
                p.batch,
                p.fused_qps,
                p.replica_qps,
                p.fused_senses_per_query,
                p.replica_senses_per_query,
                p.sense_reduction()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let scale = Scale::pick();
    report::header(
        "Fused batch",
        "Page-major fused batch execution vs per-worker replicas",
    );
    println!(
        "mode {} · brute force {} entries · IVF {} entries, nlist {}",
        scale.mode, scale.bf_entries, scale.ivf_entries, scale.nlist
    );

    // ---- Brute force: a flat database, every query scans the whole
    // embedding region — the strongest case for sense amortization.
    println!("\nBuilding {}-entry flat dataset…", scale.bf_entries);
    let bf_dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(scale.bf_entries)
            .with_queries(BATCH_SIZES[BATCH_SIZES.len() - 1]),
        59,
    );
    let bf_database = VectorDatabase::flat(bf_dataset.vectors(), bf_dataset.documents_owned())
        .expect("flat database");
    let mut bf_fused = ReisSystem::new(ReisConfig::ssd1());
    let bf_fused_id = bf_fused.deploy(&bf_database).expect("deploy");
    let mut bf_replicas =
        ReisSystem::new(ReisConfig::ssd1().with_batch_fusion(BatchFusion::Replicas));
    let bf_replica_id = bf_replicas.deploy(&bf_database).expect("deploy");
    let bf_queries: Vec<Vec<f32>> = bf_dataset.queries().to_vec();
    let bf_points = sweep(
        &mut bf_fused,
        bf_fused_id,
        &mut bf_replicas,
        bf_replica_id,
        &bf_queries,
        None,
        scale.min_measure_secs,
        "Brute-force batch",
    );

    // ---- IVF: queries probe different cluster subsets; fusion amortizes
    // the centroid pages and every shared probed page.
    println!(
        "\nBuilding {}-entry IVF dataset (nlist {})…",
        scale.ivf_entries, scale.nlist
    );
    let ivf_dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(scale.ivf_entries)
            .with_queries(BATCH_SIZES[BATCH_SIZES.len() - 1]),
        61,
    );
    let ivf_database = VectorDatabase::ivf(
        ivf_dataset.vectors(),
        ivf_dataset.documents_owned(),
        scale.nlist,
    )
    .expect("ivf database");
    let mut ivf_fused = ReisSystem::new(ReisConfig::ssd1());
    let ivf_fused_id = ivf_fused.deploy(&ivf_database).expect("deploy");
    let mut ivf_replicas =
        ReisSystem::new(ReisConfig::ssd1().with_batch_fusion(BatchFusion::Replicas));
    let ivf_replica_id = ivf_replicas.deploy(&ivf_database).expect("deploy");
    let ivf_queries: Vec<Vec<f32>> = ivf_dataset.queries().to_vec();
    let ivf_points = sweep(
        &mut ivf_fused,
        ivf_fused_id,
        &mut ivf_replicas,
        ivf_replica_id,
        &ivf_queries,
        Some(NPROBE),
        scale.min_measure_secs,
        "IVF batch (nprobe 8)",
    );

    // ---- The modelled view of the same asymmetry: one fused pass over the
    // brute-force region scoring B queries versus B independent scans.
    let model = PerfModel::new(ReisConfig::ssd1());
    let layout = bf_fused.database(bf_fused_id).expect("db").layout;
    let pages = layout.embedding_pages;
    let entries_per_scan = layout.entries / 50; // a representative pass rate
    let batch8 = BATCH_SIZES[BATCH_SIZES.len() - 1];
    let modelled_fused_us = model
        .fused_scan(
            pages,
            batch8,
            entries_per_scan * batch8,
            layout.embedding_slot_bytes,
        )
        .as_secs_f64()
        * 1e6;
    let modelled_independent_us = model
        .scan(pages, entries_per_scan, layout.embedding_slot_bytes)
        .as_secs_f64()
        * 1e6
        * batch8 as f64;
    println!(
        "\nModelled batch-{batch8} brute-force scan: fused {modelled_fused_us:.1} us vs {modelled_independent_us:.1} us independent"
    );

    let bf_at_8 = bf_points.last().expect("batch-8 point");
    println!(
        "\nBrute-force batch 8: {:.2}x fewer senses per query, QPS {:.1} (fused) vs {:.1} (replicas)",
        bf_at_8.sense_reduction(),
        bf_at_8.fused_qps,
        bf_at_8.replica_qps
    );
    if scale.mode == "full" {
        assert!(
            bf_at_8.sense_reduction() >= 4.0,
            "brute-force batch 8 must amortize senses by at least 4x, got {:.2}x",
            bf_at_8.sense_reduction()
        );
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{mode}\",\n  \
         \"results_identical_to_sequential\": true,\n  \
         \"brute_force\": {{\n    \"entries\": {bf_entries}, \"dim\": 1024,\n    \"points\": [\n{bf}\n    ]\n  }},\n  \
         \"ivf_nprobe{NPROBE}\": {{\n    \"entries\": {ivf_entries}, \"nlist\": {nlist},\n    \"points\": [\n{ivf}\n    ]\n  }},\n  \
         \"modelled_bf_scan_batch8_us\": {{ \"fused\": {modelled_fused_us:.1}, \"independent\": {modelled_independent_us:.1} }},\n  \
         \"bf_batch8_sense_reduction\": {:.2}\n}}\n",
        bf_at_8.sense_reduction(),
        mode = scale.mode,
        bf_entries = scale.bf_entries,
        ivf_entries = scale.ivf_entries,
        nlist = scale.nlist,
        bf = points_json(&bf_points),
        ivf = points_json(&ivf_points),
    );
    let path = report::output_path("BENCH_pr4.json");
    std::fs::write(&path, json).expect("write benchmark json");
    println!("\nwrote {path}");
}
