//! Figure 10: speedup of REIS over the ICE in-flash similarity-search
//! accelerator (and its idealised ICE-ESP variant), for brute force and IVF
//! at Recall@10 targets of 0.98 / 0.94 / 0.90 on the four main datasets.

use reis_baseline::{IceModel, IceVariant};
use reis_bench::calibration::calibrate;
use reis_bench::fullscale::{estimate_reis, SearchMode};
use reis_bench::report;
use reis_core::{ReisConfig, ReisSystem};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const RECALLS: [f64; 3] = [0.98, 0.94, 0.90];

fn main() {
    report::header(
        "Figure 10",
        "Speedup of REIS over ICE (and ICE-ESP) per dataset and recall",
    );
    let mut all_speedups = Vec::new();
    for profile in DatasetProfile::main_evaluation() {
        let scaled = profile.clone().scaled(1_024).with_queries(8);
        let dataset = SyntheticDataset::generate(scaled, 55);
        let calibration = calibrate(&dataset, ReisConfig::ssd1().filter_threshold_fraction, K);
        println!("\n{}:", profile.name);
        println!(
            "{:<20} {:>16} {:>16} {:>16} {:>16}",
            "configuration", "SSD1 vs ICE", "SSD2 vs ICE", "SSD1 vs ICE-ESP", "SSD2 vs ICE-ESP"
        );
        let mut settings: Vec<(String, SearchMode, u64)> =
            vec![("BF".into(), SearchMode::BruteForce, profile.full_entries)];
        for recall in RECALLS {
            let nprobe = ReisSystem::nprobe_for_recall(profile.full_nlist, recall);
            let fraction = nprobe as f64 / profile.full_nlist as f64;
            settings.push((
                format!("IVF R@10={recall:.2}"),
                SearchMode::Ivf {
                    nprobe_fraction: fraction,
                },
                IceModel::ivf_entries(&profile, nprobe),
            ));
        }
        for (label, mode, ice_entries) in settings {
            print!("{label:<20}");
            for config in [ReisConfig::ssd1(), ReisConfig::ssd2()] {
                let reis = estimate_reis(&profile, &config, mode, calibration.pass_fraction, K);
                let ice = IceModel::new(config, IceVariant::Published);
                let speedup = reis.qps / ice.qps(&profile, ice_entries, K);
                print!(" {speedup:>15.1}x");
                all_speedups.push(speedup);
            }
            for config in [ReisConfig::ssd1(), ReisConfig::ssd2()] {
                let reis = estimate_reis(&profile, &config, mode, calibration.pass_fraction, K);
                let ice_esp = IceModel::new(config, IceVariant::EspIdeal);
                let speedup = reis.qps / ice_esp.qps(&profile, ice_entries, K);
                print!(" {speedup:>15.1}x");
            }
            println!();
        }
    }
    println!(
        "\nGeometric-mean speedup of REIS over ICE: {:.1}x (paper: 7.1x at R@10=0.90 rising to \
         22.9x at 0.98 for SSD-2, and >10x for brute force; vs ICE-ESP the paper reports 2-4x)",
        report::geomean(&all_speedups)
    );
}
