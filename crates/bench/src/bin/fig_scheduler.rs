//! The persistent worker pool and the async request pipeline, measured.
//!
//! PR-5's adaptive-window sweep recorded the cost this PR removes: under
//! small threshold windows the sharded scan paid one scoped-thread spawn
//! set *per window*, which on its committed run made 4–32-page windows
//! slower sharded than sequential. PR-10 replaced every per-window spawn
//! with the persistent work-stealing pool (`reis-sched`), and put an
//! asynchronous batching pipeline in front of the executors. This
//! benchmark measures both halves:
//!
//! * **Part A — pooled vs spawn-per-window.** The same sharded adaptive
//!   sweep, run under `ScanExecutor::Pooled` and
//!   `ScanExecutor::SpawnScoped` on the same deployment. Results and
//!   transferred-entry accounting are asserted bit-identical on every
//!   point (`results_identical_to_spawn`); only the wall clock may move.
//!   On the windows that PR-5 flagged (4–32 pages), pooled must not lose
//!   to spawn — the committed full-mode artifact gates on it.
//! * **Part B — batch formation under load.** A seeded Poisson arrival
//!   trace drives the `Pipeline` at several offered loads, with batch
//!   formation off (`max_batch 1`) and on (`max_batch 8`). The pipeline
//!   runs on *virtual time* — completions are priced by the modelled
//!   device latency — so its QPS-vs-p99 columns are deterministic,
//!   machine-independent, and meaningful even on this one-core host.
//!   `batch_formation_wins` records that at the top offered load the
//!   batching pipeline sustains higher throughput at no worse p99.
//!
//! Results go to `BENCH_pr10.json` (this PR's committed artifact); pass
//! `--output PATH` / `REIS_BENCH_OUT` to write elsewhere, `--smoke` /
//! `REIS_BENCH_SMOKE=1` for the fast CI variant.

use std::time::Instant;

use reis_bench::report;
use reis_core::{
    PipelineConfig, PipelineRequest, ReisConfig, ReisSystem, ScanExecutor, ScanParallelism,
    VectorDatabase,
};
use reis_workloads::{ArrivalTrace, DatasetProfile, SyntheticDataset};

const K: usize = 10;
const SHARDS: usize = 8;

struct RunShape {
    mode: &'static str,
    entries: usize,
    queries: usize,
    repeats: usize,
    windows: &'static [usize],
    pipeline_requests: usize,
}

fn shape() -> RunShape {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    if smoke {
        RunShape {
            mode: "smoke",
            entries: 4_096,
            queries: 2,
            repeats: 2,
            windows: &[4, 16],
            pipeline_requests: 48,
        }
    } else {
        RunShape {
            mode: "full",
            entries: 32_768,
            queries: 4,
            repeats: 5,
            windows: &[4, 8, 16, 32],
            pipeline_requests: 256,
        }
    }
}

struct WindowPoint {
    window: usize,
    fine_entries: usize,
    fine_windows: usize,
    modelled_us: f64,
    pooled_us: f64,
    spawn_us: f64,
}

struct PipelinePoint {
    offered_qps: f64,
    max_batch: usize,
    requests: usize,
    completed: usize,
    shed: u64,
    p50_us: f64,
    p99_us: f64,
    throughput_qps: f64,
}

/// Best-of-`repeats` wall latency of each query, averaged, in microseconds.
fn measure(system: &mut ReisSystem, db_id: u32, queries: &[Vec<f32>], repeats: usize) -> f64 {
    let mut total_us = 0.0;
    for query in queries {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = Instant::now();
            system.search(db_id, query, K).expect("search");
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        total_us += best;
    }
    total_us / queries.len() as f64
}

/// Result signatures plus summed transferred-entry accounting and mean
/// modelled latency of one sweep point.
type SweepSignature = (Vec<Vec<(usize, f32)>>, usize, usize, f64);

fn signatures(system: &mut ReisSystem, db_id: u32, queries: &[Vec<f32>]) -> SweepSignature {
    let mut sigs = Vec::new();
    let mut entries = 0usize;
    let mut windows = 0usize;
    let mut modelled_us = 0.0;
    for query in queries {
        let outcome = system.search(db_id, query, K).expect("search");
        sigs.push(outcome.results.iter().map(|n| (n.id, n.distance)).collect());
        entries += outcome.activity.fine_entries;
        windows += outcome.activity.fine_windows;
        modelled_us += outcome.total_latency().as_secs_f64() * 1e6;
    }
    (sigs, entries, windows, modelled_us / queries.len() as f64)
}

/// Virtual-time percentile of a sorted sojourn list, in microseconds.
fn percentile_us(sorted_ns: &[u64], fraction: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 * fraction).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[rank] as f64 / 1e3
}

/// Run one pipeline sweep point: a seeded arrival trace at `offered_qps`
/// through a pipeline with the given formation bound. Everything reported
/// is virtual-time, hence deterministic.
fn pipeline_point(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    offered_qps: f64,
    max_batch: usize,
    requests: usize,
) -> PipelinePoint {
    // Horizon sized to cover `requests` arrivals (doubled deterministically
    // if the draw runs short, which 2x the expected span makes rare).
    let mut duration_us = ((requests as f64 / offered_qps) * 2e6).ceil() as u64 + 1_000;
    let mut trace = ArrivalTrace::poisson(offered_qps, duration_us, queries.len(), 0x5EED);
    while trace.len() < requests {
        duration_us *= 2;
        trace = ArrivalTrace::poisson(offered_qps, duration_us, queries.len(), 0x5EED);
    }
    let config = PipelineConfig::default()
        .with_max_batch(max_batch)
        .with_max_wait_us(200);
    let mut pipeline = system.pipeline(db_id, config);
    let mut accepted = 0usize;
    for event in trace.events().iter().take(requests) {
        let submitted = pipeline.submit(
            event.at_ns,
            PipelineRequest::Search {
                query: queries[event.query_index].clone(),
                k: K,
            },
        );
        if submitted.is_ok() {
            accepted += 1;
        }
    }
    pipeline.flush();
    let shed = pipeline.shed();
    let completions = pipeline.drain_completions();
    assert_eq!(
        completions.len(),
        accepted,
        "every accepted request completes"
    );

    let mut sojourns_ns: Vec<u64> = completions
        .iter()
        .map(|c| c.completed_ns - c.submitted_ns)
        .collect();
    sojourns_ns.sort_unstable();
    let first_in = completions
        .iter()
        .map(|c| c.submitted_ns)
        .min()
        .unwrap_or(0);
    let last_out = completions
        .iter()
        .map(|c| c.completed_ns)
        .max()
        .unwrap_or(0);
    let makespan_s = (last_out.saturating_sub(first_in)) as f64 / 1e9;
    PipelinePoint {
        offered_qps,
        max_batch,
        requests,
        completed: completions.len(),
        shed,
        p50_us: percentile_us(&sojourns_ns, 0.50),
        p99_us: percentile_us(&sojourns_ns, 0.99),
        throughput_qps: if makespan_s > 0.0 {
            completions.len() as f64 / makespan_s
        } else {
            0.0
        },
    }
}

fn main() {
    let shape = shape();
    report::header(
        "Scheduler: worker pool + request pipeline",
        "Pooled vs spawn-per-window wall clock, and batch formation under load",
    );

    println!(
        "Building {}-entry synthetic dataset ({} mode)…",
        shape.entries, shape.mode
    );
    let dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(shape.entries)
            .with_queries(shape.queries),
        47,
    );
    let database = VectorDatabase::flat(dataset.vectors(), dataset.documents_owned())
        .expect("database construction");
    let queries: Vec<Vec<f32>> = dataset.queries().to_vec();

    // Two deployments of the same database, differing only in who executes
    // the shard tasks. Both shard with a 1-page minimum so every window is
    // genuinely partitioned — exactly the regime where PR-5 measured the
    // per-window spawn cost.
    let sharding = ScanParallelism::sharded(SHARDS).with_min_pages_per_shard(1);
    let mut pooled = ReisSystem::new(
        ReisConfig::ssd1()
            .with_scan_parallelism(sharding)
            .with_scan_executor(ScanExecutor::Pooled),
    );
    let pooled_id = pooled.deploy(&database).expect("deployment");
    let mut spawn = ReisSystem::new(
        ReisConfig::ssd1()
            .with_scan_parallelism(sharding)
            .with_scan_executor(ScanExecutor::SpawnScoped),
    );
    let spawn_id = spawn.deploy(&database).expect("deployment");

    println!("\nPart A — pooled vs spawn-per-window (sharded adaptive scan, k {K}):");
    println!(
        "  {:>7}  {:>10}  {:>9}  {:>12}  {:>11}  {:>11}",
        "window", "entries", "barriers", "modelled_us", "pooled_us", "spawn_us"
    );
    let mut points: Vec<WindowPoint> = Vec::new();
    for &window in shape.windows {
        pooled.set_adaptive_window(window);
        spawn.set_adaptive_window(window);
        let (pooled_sigs, pooled_entries, pooled_windows, modelled_us) =
            signatures(&mut pooled, pooled_id, &queries);
        let (spawn_sigs, spawn_entries, spawn_windows, spawn_modelled) =
            signatures(&mut spawn, spawn_id, &queries);

        // Scheduler identity, asserted on every sweep point: the executor
        // must never change what a query returns or what it transfers.
        assert_eq!(
            pooled_sigs, spawn_sigs,
            "pooled results diverged from spawn at window {window}"
        );
        assert_eq!(
            (pooled_entries, pooled_windows),
            (spawn_entries, spawn_windows),
            "pooled accounting diverged from spawn at window {window}"
        );
        assert!(
            (modelled_us - spawn_modelled).abs() < 1e-9,
            "modelled latency diverged at window {window}"
        );

        let pooled_us = measure(&mut pooled, pooled_id, &queries, shape.repeats);
        let spawn_us = measure(&mut spawn, spawn_id, &queries, shape.repeats);
        println!(
            "  {window:>7}  {pooled_entries:>10}  {pooled_windows:>9}  {modelled_us:>12.1}  \
             {pooled_us:>11.1}  {spawn_us:>11.1}"
        );
        points.push(WindowPoint {
            window,
            fine_entries: pooled_entries,
            fine_windows: pooled_windows,
            modelled_us,
            pooled_us,
            spawn_us,
        });
    }

    // Part B — the request pipeline under a seeded open-loop arrival
    // process. Offered loads are set relative to the modelled single-query
    // service rate, so the sweep spans under-load to saturation at any
    // dataset size.
    let service_ns = {
        let outcome = pooled.search(pooled_id, &queries[0], K).expect("probe");
        outcome.total_latency().as_nanos().max(1)
    };
    let service_qps = 1e9 / service_ns as f64;
    println!(
        "\nPart B — pipeline batch formation (modelled service rate {service_qps:.0} QPS, \
         virtual time):"
    );
    println!(
        "  {:>12}  {:>9}  {:>9}  {:>6}  {:>10}  {:>10}  {:>14}",
        "offered_qps", "max_batch", "completed", "shed", "p50_us", "p99_us", "throughput_qps"
    );
    let mut pipeline_points: Vec<PipelinePoint> = Vec::new();
    for load_factor in [0.5, 2.0, 6.0] {
        for max_batch in [1usize, 8] {
            let point = pipeline_point(
                &mut pooled,
                pooled_id,
                &queries,
                service_qps * load_factor,
                max_batch,
                shape.pipeline_requests,
            );
            println!(
                "  {:>12.0}  {:>9}  {:>9}  {:>6}  {:>10.1}  {:>10.1}  {:>14.0}",
                point.offered_qps,
                point.max_batch,
                point.completed,
                point.shed,
                point.p50_us,
                point.p99_us,
                point.throughput_qps
            );
            pipeline_points.push(point);
        }
    }

    // At the top offered load, batch formation must sustain higher
    // throughput at no worse tail latency than dispatch-on-arrival.
    let top = &pipeline_points[pipeline_points.len() - 2..];
    let (unbatched, batched) = (&top[0], &top[1]);
    let batch_formation_wins =
        batched.throughput_qps > unbatched.throughput_qps && batched.p99_us <= unbatched.p99_us;
    assert!(
        batch_formation_wins,
        "batch formation must win at the top offered load: \
         batched {:.0} QPS / p99 {:.1} us vs unbatched {:.0} QPS / p99 {:.1} us",
        batched.throughput_qps, batched.p99_us, unbatched.throughput_qps, unbatched.p99_us
    );
    println!(
        "\nBatch formation at {:.1}x the service rate: {:.0} QPS at p99 {:.1} us \
         (vs {:.0} QPS at p99 {:.1} us without formation).",
        6.0, batched.throughput_qps, batched.p99_us, unbatched.throughput_qps, unbatched.p99_us
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores == 1 {
        println!(
            "note: only one CPU is available, so Part A's wall columns measure spawn/join \
             overhead rather than parallel speedup; Part B is virtual-time and unaffected"
        );
    }

    let window_json = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"window\": {}, \"fine_entries\": {}, \"barriers\": {}, \
                 \"modelled_us\": {:.1}, \"pooled_us\": {:.1}, \"spawn_us\": {:.1} }}",
                p.window, p.fine_entries, p.fine_windows, p.modelled_us, p.pooled_us, p.spawn_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let pipeline_json = pipeline_points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"offered_qps\": {:.1}, \"max_batch\": {}, \"requests\": {}, \
                 \"completed\": {}, \"shed\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"throughput_qps\": {:.1} }}",
                p.offered_qps,
                p.max_batch,
                p.requests,
                p.completed,
                p.shed,
                p.p50_us,
                p.p99_us,
                p.throughput_qps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{}\",\n  \
         \"dataset\": {{ \"entries\": {}, \"dim\": {} }},\n  \
         \"queries\": {},\n  \"repeats_per_point\": {},\n  \"k\": {K},\n  \
         \"modelled_service_qps\": {service_qps:.1},\n  \
         \"results_identical_to_spawn\": true,\n  \
         \"batch_formation_wins\": {batch_formation_wins},\n  \
         \"pool_window_sweep\": [\n{window_json}\n  ],\n  \
         \"pipeline_sweep\": [\n{pipeline_json}\n  ]\n}}\n",
        shape.mode,
        shape.entries,
        dataset.profile().dim,
        shape.queries,
        shape.repeats,
    );
    let path = report::output_path("BENCH_pr10.json");
    std::fs::write(&path, json).expect("write benchmark artifact");
    println!("\nWrote {path}");
}
