//! Figure 7 companion: measured (wall-clock) throughput of the functional
//! simulator's query hot path, and its scaling with batch-search workers.
//!
//! Unlike `fig07_retrieval_qps` (which reports the *modelled* full-scale QPS
//! of the paper's figure), this benchmark measures how fast the simulator
//! itself executes queries: the word-level XOR/popcount kernels versus the
//! byte-wise reference they replaced, and end-to-end `search_batch` /
//! `ivf_search_batch` throughput versus worker-thread count on a ≥10k-vector
//! synthetic dataset. Results are written to `BENCH_fig07b.json` by default;
//! pass `--output PATH` (or set `REIS_BENCH_OUT`) to write elsewhere — the
//! committed `BENCH_pr1.json` artifact is only refreshed by an explicit
//! `--output BENCH_pr1.json`. See `docs/BENCHMARKS.md` for the workflow and
//! the JSON schema.
//!
//! The sweep pins the *replica* batch path (`BatchFusion::Replicas`, static
//! thresholds) so the worker column keeps measuring what `BENCH_pr1.json`
//! recorded — per-worker device replicas scaling with threads. The fused
//! shared-device path that is now the `search_batch` default is measured by
//! its own benchmark, `fig_fused_batch`.

use std::time::Instant;

use reis_bench::{report, seed_reference};
use reis_core::{BatchFusion, ReisConfig, ReisSystem, VectorDatabase};
use reis_nand::peripheral::{FailBitCounter, XorLogic};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const ENTRIES: usize = 10_240;
const NLIST: usize = 64;
const NPROBE: usize = 8;
const K: usize = 10;
const IVF_QUERIES: usize = 64;
const BF_QUERIES: usize = 16;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Run `f` repeatedly until at least ~50 ms have been measured and return
/// the average nanoseconds per invocation.
fn time_ns_per_iter<O>(mut f: impl FnMut() -> O) -> f64 {
    std::hint::black_box(f());
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 10_000_000 {
            return elapsed.as_nanos() as f64 / iters as f64;
        }
        iters *= 4;
    }
}

struct KernelResult {
    word_ns: f64,
    bytewise_ns: f64,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        if self.word_ns <= 0.0 {
            0.0
        } else {
            self.bytewise_ns / self.word_ns
        }
    }
}

/// Word-kernel vs byte-wise XOR + per-chunk popcount over one 16 KB page of
/// 128-byte mini-pages — the innermost operation of every page scan.
///
/// Inputs pass through `black_box` inside the timed closure so the optimizer
/// can neither hoist the pure computation out of the loop nor fold it away.
fn measure_page_kernel() -> KernelResult {
    let page: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
    let broadcast: Vec<u8> = (0..16 * 1024).map(|i| ((i * 7) % 256) as u8).collect();
    let mut xor_buf = Vec::new();
    let mut counts = Vec::new();
    let word_ns = time_ns_per_iter(|| {
        let (p, q) = (
            std::hint::black_box(&page[..]),
            std::hint::black_box(&broadcast[..]),
        );
        XorLogic::xor_into(p, q, &mut xor_buf);
        FailBitCounter::count_per_chunk_into(&xor_buf, 128, &mut counts);
        counts.iter().sum::<u32>()
    });
    let bytewise_ns = time_ns_per_iter(|| {
        let (p, q) = (
            std::hint::black_box(&page[..]),
            std::hint::black_box(&broadcast[..]),
        );
        let xored = seed_reference::xor(p, q);
        seed_reference::count_per_chunk(&xored, 128)
            .iter()
            .sum::<u32>()
    });
    KernelResult {
        word_ns,
        bytewise_ns,
    }
}

/// Word-kernel vs byte-wise Hamming distance between two 1024-d binary
/// embeddings (the host-side mirror of the in-plane distance).
fn measure_hamming_kernel() -> KernelResult {
    let a: Vec<u8> = (0..128).map(|i| (i * 31 + 7) as u8).collect();
    let b: Vec<u8> = (0..128).map(|i| (i * 17 + 3) as u8).collect();
    let word_ns = time_ns_per_iter(|| {
        let (x, y) = (std::hint::black_box(&a[..]), std::hint::black_box(&b[..]));
        reis_ann::vector::hamming_bytes(x, y)
    });
    let bytewise_ns = time_ns_per_iter(|| {
        let (x, y) = (std::hint::black_box(&a[..]), std::hint::black_box(&b[..]));
        seed_reference::hamming(x, y)
    });
    KernelResult {
        word_ns,
        bytewise_ns,
    }
}

struct ScalingPoint {
    workers: usize,
    qps: f64,
}

fn measure_batch_scaling(
    system: &mut ReisSystem,
    db_id: u32,
    queries: &[Vec<f32>],
    nprobe: Option<usize>,
) -> Vec<ScalingPoint> {
    WORKER_COUNTS
        .iter()
        .map(|&workers| {
            // Two rounds; keep the faster one to damp scheduler noise.
            let mut best_qps = 0.0f64;
            for _ in 0..2 {
                let start = Instant::now();
                let outcomes = match nprobe {
                    Some(np) => system
                        .ivf_search_batch_with_nprobe(db_id, queries, K, np, workers)
                        .expect("batch search"),
                    None => system
                        .search_batch(db_id, queries, K, workers)
                        .expect("batch search"),
                };
                let secs = start.elapsed().as_secs_f64();
                assert_eq!(outcomes.len(), queries.len());
                best_qps = best_qps.max(queries.len() as f64 / secs);
            }
            ScalingPoint {
                workers,
                qps: best_qps,
            }
        })
        .collect()
}

fn scaling_json(points: &[ScalingPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"workers\": {}, \"qps\": {:.1} }}",
                p.workers, p.qps
            )
        })
        .collect();
    rows.join(",\n")
}

fn main() {
    report::header(
        "Figure 7b",
        "Measured simulator throughput: word kernels and batch-search scaling",
    );

    let page_kernel = measure_page_kernel();
    let hamming_kernel = measure_hamming_kernel();
    println!(
        "16 KB page XOR+popcount : word {:>10.1} ns, bytewise {:>10.1} ns, speedup {:.2}x",
        page_kernel.word_ns,
        page_kernel.bytewise_ns,
        page_kernel.speedup()
    );
    println!(
        "1024-d hamming distance : word {:>10.1} ns, bytewise {:>10.1} ns, speedup {:.2}x",
        hamming_kernel.word_ns,
        hamming_kernel.bytewise_ns,
        hamming_kernel.speedup()
    );

    println!("\nBuilding {ENTRIES}-entry synthetic dataset (IVF, nlist {NLIST})…");
    let dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(ENTRIES)
            .with_queries(IVF_QUERIES),
        41,
    );
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), NLIST)
        .expect("database construction");
    let config = ReisConfig::ssd1()
        .with_batch_fusion(BatchFusion::Replicas)
        .with_adaptive_filtering(false);
    let mut system = ReisSystem::new(config);
    let db_id = system.deploy(&database).expect("deployment");

    let ivf_queries: Vec<Vec<f32>> = dataset.queries().to_vec();
    let bf_queries: Vec<Vec<f32>> = ivf_queries.iter().take(BF_QUERIES).cloned().collect();

    println!("\nIVF batch (nprobe {NPROBE}, {IVF_QUERIES} queries):");
    let ivf_scaling = measure_batch_scaling(&mut system, db_id, &ivf_queries, Some(NPROBE));
    for point in &ivf_scaling {
        println!("    {:>2} workers  {:>12.1} QPS", point.workers, point.qps);
    }

    println!("\nBrute-force batch ({BF_QUERIES} queries):");
    let bf_scaling = measure_batch_scaling(&mut system, db_id, &bf_queries, None);
    for point in &bf_scaling {
        println!("    {:>2} workers  {:>12.1} QPS", point.workers, point.qps);
    }

    // Modelled (simulated-device) per-query figures for reference.
    let modelled = system
        .ivf_search_batch_with_nprobe(db_id, &ivf_queries[..1], K, NPROBE, 1)
        .expect("modelled query");
    let modelled_qps = modelled[0].qps();
    println!("\nModelled device-side QPS of one IVF query: {modelled_qps:.1}");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let single = ivf_scaling.first().map(|p| p.qps).unwrap_or(0.0);
    let peak = ivf_scaling.iter().map(|p| p.qps).fold(0.0f64, f64::max);
    println!(
        "Batch scaling on {cores} core(s): {:.2}x peak over single-worker ({:.1} → {:.1} QPS)",
        if single > 0.0 { peak / single } else { 0.0 },
        single,
        peak
    );
    if cores == 1 {
        println!(
            "note: only one CPU is available, so added workers can only add overhead; \
             the scaling column is meaningful on multi-core hosts"
        );
    }

    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \
         \"dataset\": {{ \"entries\": {ENTRIES}, \"dim\": 1024, \"nlist\": {NLIST} }},\n  \
         \"kernels\": {{\n    \"page_xor_popcount\": {{ \"word_ns\": {:.1}, \"bytewise_ns\": {:.1}, \"speedup\": {:.2} }},\n    \
         \"hamming_1024d\": {{ \"word_ns\": {:.1}, \"bytewise_ns\": {:.1}, \"speedup\": {:.2} }}\n  }},\n  \
         \"batch_qps\": {{\n    \"ivf_nprobe{NPROBE}\": [\n{}\n    ],\n    \"brute_force\": [\n{}\n    ]\n  }},\n  \
         \"modelled_device_qps\": {:.1}\n}}\n",
        page_kernel.word_ns,
        page_kernel.bytewise_ns,
        page_kernel.speedup(),
        hamming_kernel.word_ns,
        hamming_kernel.bytewise_ns,
        hamming_kernel.speedup(),
        scaling_json(&ivf_scaling),
        scaling_json(&bf_scaling),
        modelled_qps,
    );
    let path = report::output_path("BENCH_fig07b.json");
    std::fs::write(&path, json).expect("write benchmark json");
    println!("\nwrote {path}");
}
