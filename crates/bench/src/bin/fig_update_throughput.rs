//! Online update throughput and search-under-update latency.
//!
//! PR 3 adds the mutation subsystem (`ReisSystem::{insert, delete,
//! upsert}`, append segments, tombstones, compaction). This benchmark
//! measures what it costs and what it preserves:
//!
//! 1. **Insert throughput** — batched appends into per-cluster segments
//!    (wall-clock ops/s plus the modelled flash latency per op).
//! 2. **Delete/upsert throughput** — tombstones and relocations.
//! 3. **Search under update** — single-query latency on the clean
//!    deployment, after the mutation trace dirtied it (segments +
//!    tombstones), and again after compaction folded it back; plus the
//!    check that compaction leaves results bit-identical.
//! 4. **Compaction** — wall-clock and modelled cost, pages rewritten and
//!    blocks erased.
//!
//! Results are written to `BENCH_update.json` by default (the committed
//! `BENCH_pr3.json` is PR 3's recorded run, whose mutation-latency model
//! was still flash-only; refreshing it takes an explicit
//! `--output BENCH_pr3.json`); pass `--output PATH` (or set
//! `REIS_BENCH_OUT`) to write elsewhere. Pass `--smoke` (or set
//! `REIS_BENCH_SMOKE=1`) for the fast CI configuration; the emitted JSON
//! records which mode produced it.

use std::time::Instant;

use reis_bench::report;
use reis_core::{
    CompactionPolicy, HistogramId, HistogramSnapshot, ReisConfig, ReisSystem, SearchOutcome,
    VectorDatabase,
};
use reis_workloads::{DatasetProfile, MutationMix, MutationOp, MutationTrace, SyntheticDataset};

const K: usize = 10;
const NPROBE: usize = 16;

struct Scale {
    mode: &'static str,
    entries: usize,
    nlist: usize,
    insert_batches: usize,
    batch_size: usize,
    trace_ops: usize,
    probe_queries: usize,
}

impl Scale {
    fn pick() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
        if smoke {
            Scale {
                mode: "smoke",
                entries: 768,
                nlist: 16,
                insert_batches: 4,
                batch_size: 16,
                trace_ops: 60,
                probe_queries: 2,
            }
        } else {
            Scale {
                mode: "full",
                entries: 16_384,
                nlist: 64,
                insert_batches: 16,
                batch_size: 64,
                trace_ops: 600,
                probe_queries: 4,
            }
        }
    }
}

fn signature(outcome: &SearchOutcome) -> Vec<(usize, f32)> {
    outcome.results.iter().map(|n| (n.id, n.distance)).collect()
}

/// `[p50, p95, p99]` of a histogram delta, in microseconds.
fn quantiles_us(delta: &HistogramSnapshot) -> [f64; 3] {
    [0.50, 0.95, 0.99].map(|q| delta.quantile(q) / 1e3)
}

/// Mean wall-clock latency (µs) of one IVF search per probe query.
fn probe_search_us(system: &mut ReisSystem, db: u32, queries: &[Vec<f32>]) -> f64 {
    let mut total = 0.0;
    for query in queries {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            system
                .ivf_search_with_nprobe(db, query, K, NPROBE)
                .expect("probe search");
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        total += best;
    }
    total / queries.len() as f64
}

fn main() {
    let scale = Scale::pick();
    report::header(
        "Update throughput",
        "Insert/delete QPS and search latency under online mutations",
    );
    println!(
        "mode {} · {} entries · nlist {}",
        scale.mode, scale.entries, scale.nlist
    );

    let dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(scale.entries)
            .with_queries(scale.probe_queries),
        47,
    );
    let database = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), scale.nlist)
        .expect("database construction");
    let config = ReisConfig::ssd1().with_compaction(CompactionPolicy::manual());
    let mut system = ReisSystem::new(config);
    let db = system.deploy(&database).expect("deployment");
    // Telemetry watches the whole run (provably non-perturbing); the
    // modelled-latency histograms feed the interference quantiles below.
    system.enable_telemetry();
    let probe_queries: Vec<Vec<f32>> = dataset.queries().to_vec();
    let dim = dataset.profile().dim;
    let doc_bytes = dataset.profile().doc_bytes;

    // ---- Clean-deployment search baseline.
    let before = system.telemetry().histogram(HistogramId::QueryModelledNs);
    let clean_us = probe_search_us(&mut system, db, &probe_queries);
    let quiescent_q = quantiles_us(
        &system
            .telemetry()
            .histogram(HistogramId::QueryModelledNs)
            .delta(&before),
    );
    println!("\nclean search            {clean_us:>10.1} us/query");

    // ---- Insert throughput (batched).
    let trace = MutationTrace::generate(
        scale.entries,
        dim,
        doc_bytes,
        scale.insert_batches * scale.batch_size,
        MutationMix {
            insert: 1,
            delete: 0,
            upsert: 0,
            search: 0,
        },
        11,
    );
    let inserts: Vec<(Vec<f32>, Vec<u8>)> = trace
        .ops()
        .iter()
        .map(|op| match op {
            MutationOp::Insert { vector, document } => (vector.clone(), document.clone()),
            _ => unreachable!("insert-only mix"),
        })
        .collect();
    let mut inserted_ids = Vec::new();
    let mut modeled_insert_us = 0.0;
    let mut insert_pages = 0usize;
    let insert_start = Instant::now();
    for batch in inserts.chunks(scale.batch_size) {
        let vectors: Vec<Vec<f32>> = batch.iter().map(|(v, _)| v.clone()).collect();
        let documents: Vec<Vec<u8>> = batch.iter().map(|(_, d)| d.clone()).collect();
        let outcome = system
            .insert_batch(db, &vectors, documents)
            .expect("insert batch");
        modeled_insert_us += outcome.latency.as_secs_f64() * 1e6;
        insert_pages += outcome.pages_programmed;
        inserted_ids.extend(outcome.ids);
    }
    let insert_wall = insert_start.elapsed().as_secs_f64();
    let insert_qps = inserted_ids.len() as f64 / insert_wall;
    println!(
        "inserts                 {insert_qps:>10.0} ops/s wall ({} entries, {} pages programmed)",
        inserted_ids.len(),
        insert_pages
    );

    // ---- Upsert + delete throughput.
    let upsert_count = inserted_ids.len() / 2;
    let upsert_start = Instant::now();
    for (i, &id) in inserted_ids.iter().take(upsert_count).enumerate() {
        let (vector, _) = &inserts[i];
        system
            .upsert(db, id, vector, b"upserted during the benchmark run")
            .expect("upsert");
    }
    let upsert_wall = upsert_start.elapsed().as_secs_f64();
    let upsert_qps = upsert_count as f64 / upsert_wall.max(1e-9);

    let delete_count = inserted_ids.len() / 4;
    let delete_start = Instant::now();
    for &id in inserted_ids.iter().rev().take(delete_count) {
        system.delete(db, id).expect("delete");
    }
    let delete_wall = delete_start.elapsed().as_secs_f64();
    let delete_qps = delete_count as f64 / delete_wall.max(1e-9);
    println!("upserts                 {upsert_qps:>10.0} ops/s wall ({upsert_count} ops)");
    println!("deletes                 {delete_qps:>10.0} ops/s wall ({delete_count} ops)");

    // ---- Search under update: replay a mixed trace, probing latency.
    let mixed = MutationTrace::generate(
        scale.entries,
        dim,
        doc_bytes,
        scale.trace_ops,
        MutationMix::balanced(),
        13,
    );
    // Logical trace ids -> stable system ids: initial entries map 1:1, and
    // fresh inserts are appended in trace order.
    let mut logical_to_stable: Vec<Option<u32>> = (0..scale.entries as u32).map(Some).collect();
    let mut trace_searches = 0usize;
    for op in mixed.ops() {
        match op {
            MutationOp::Insert { vector, document } => {
                let outcome = system
                    .insert(db, vector, document.clone())
                    .expect("trace insert");
                logical_to_stable.push(Some(outcome.ids[0]));
            }
            MutationOp::Delete { target } => {
                if let Some(id) = logical_to_stable[*target].take() {
                    system.delete(db, id).expect("trace delete");
                }
            }
            MutationOp::Upsert {
                target,
                vector,
                document,
            } => {
                if let Some(id) = logical_to_stable[*target] {
                    system
                        .upsert(db, id, vector, document)
                        .expect("trace upsert");
                }
            }
            MutationOp::Search { query } => {
                system
                    .ivf_search_with_nprobe(db, query, K, NPROBE)
                    .expect("trace search");
                trace_searches += 1;
            }
        }
    }
    let deployed = system.database(db).expect("deployed");
    let segment_entries = deployed.updates.store.len();
    let tombstones = deployed.updates.tombstones.dead_count();
    // Every mutation so far (batch inserts, upserts, deletes, the mixed
    // trace) landed in the modelled-mutation histogram.
    let mutation_q = quantiles_us(
        &system
            .telemetry()
            .histogram(HistogramId::MutationModelledNs),
    );
    let before = system.telemetry().histogram(HistogramId::QueryModelledNs);
    let dirty_us = probe_search_us(&mut system, db, &probe_queries);
    let dirty_q = quantiles_us(
        &system
            .telemetry()
            .histogram(HistogramId::QueryModelledNs)
            .delta(&before),
    );
    println!(
        "dirty search            {dirty_us:>10.1} us/query ({segment_entries} segment entries, {tombstones} tombstones)"
    );

    // ---- Compaction: fold back, verify results unchanged, re-probe.
    let before: Vec<_> = probe_queries
        .iter()
        .map(|q| {
            signature(
                &system
                    .ivf_search_with_nprobe(db, q, K, NPROBE)
                    .expect("pre-compaction search"),
            )
        })
        .collect();
    let compact_start = Instant::now();
    let compaction = system.compact(db).expect("compaction");
    let compact_wall_ms = compact_start.elapsed().as_secs_f64() * 1e3;
    let identical = probe_queries.iter().zip(&before).all(|(q, reference)| {
        signature(
            &system
                .ivf_search_with_nprobe(db, q, K, NPROBE)
                .expect("post-compaction search"),
        ) == *reference
    });
    assert!(identical, "compaction changed search results");
    let before = system.telemetry().histogram(HistogramId::QueryModelledNs);
    let compacted_us = probe_search_us(&mut system, db, &probe_queries);
    let compacted_q = quantiles_us(
        &system
            .telemetry()
            .histogram(HistogramId::QueryModelledNs)
            .delta(&before),
    );
    println!(
        "compacted search        {compacted_us:>10.1} us/query (identical_to_pre_compaction: {identical})"
    );
    println!(
        "compaction              {compact_wall_ms:>10.1} ms wall · {} pages rewritten · {} blocks reclaimed",
        compaction.pages_rewritten, compaction.blocks_reclaimed
    );

    // ---- Interference: the modelled (not wall-clock) view of the same
    // probes, read back from the telemetry histograms — how much latency
    // the un-compacted mutation state adds to every search.
    println!("\nmodelled search quantiles (p50/p95/p99 us):");
    println!(
        "    quiescent        {:>8.1} {:>8.1} {:>8.1}",
        quiescent_q[0], quiescent_q[1], quiescent_q[2]
    );
    println!(
        "    dirty            {:>8.1} {:>8.1} {:>8.1}",
        dirty_q[0], dirty_q[1], dirty_q[2]
    );
    println!(
        "    post-compaction  {:>8.1} {:>8.1} {:>8.1}",
        compacted_q[0], compacted_q[1], compacted_q[2]
    );
    println!(
        "    mutations        {:>8.1} {:>8.1} {:>8.1}",
        mutation_q[0], mutation_q[1], mutation_q[2]
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{mode}\",\n  \
         \"dataset\": {{ \"entries\": {entries}, \"dim\": {dim}, \"nlist\": {nlist} }},\n  \
         \"insert\": {{ \"batch_size\": {batch}, \"entries\": {ins}, \"wall_qps\": {insert_qps:.0}, \
         \"modeled_latency_us_per_op\": {model_ins:.2}, \"pages_programmed\": {insert_pages} }},\n  \
         \"upsert\": {{ \"ops\": {upsert_count}, \"wall_qps\": {upsert_qps:.0} }},\n  \
         \"delete\": {{ \"ops\": {delete_count}, \"wall_qps\": {delete_qps:.0} }},\n  \
         \"search_under_update\": {{ \"trace_ops\": {trace_ops}, \"trace_searches\": {trace_searches}, \
         \"clean_mean_us\": {clean_us:.1}, \"dirty_mean_us\": {dirty_us:.1}, \
         \"post_compaction_mean_us\": {compacted_us:.1}, \"segment_entries_at_peak\": {segment_entries}, \
         \"tombstones_at_peak\": {tombstones}, \"identical_after_compaction\": {identical} }},\n  \
         \"compaction\": {{ \"wall_ms\": {compact_wall_ms:.1}, \"modeled_latency_ms\": {model_comp:.2}, \
         \"pages_rewritten\": {rewritten}, \"blocks_reclaimed\": {reclaimed} }},\n  \
         \"interference\": {{ \"quiescent_p50_us\": {qq0:.2}, \"quiescent_p95_us\": {qq1:.2}, \
         \"quiescent_p99_us\": {qq2:.2}, \"dirty_p50_us\": {dq0:.2}, \"dirty_p95_us\": {dq1:.2}, \
         \"dirty_p99_us\": {dq2:.2}, \"post_compaction_p50_us\": {cq0:.2}, \
         \"mutation_p50_us\": {mq0:.2}, \"mutation_p99_us\": {mq2:.2} }}\n}}\n",
        mode = scale.mode,
        entries = scale.entries,
        nlist = scale.nlist,
        batch = scale.batch_size,
        ins = inserted_ids.len(),
        model_ins = modeled_insert_us / inserted_ids.len().max(1) as f64,
        trace_ops = scale.trace_ops,
        model_comp = compaction.latency.as_secs_f64() * 1e3,
        rewritten = compaction.pages_rewritten,
        reclaimed = compaction.blocks_reclaimed,
        qq0 = quiescent_q[0],
        qq1 = quiescent_q[1],
        qq2 = quiescent_q[2],
        dq0 = dirty_q[0],
        dq1 = dirty_q[1],
        dq2 = dirty_q[2],
        cq0 = compacted_q[0],
        mq0 = mutation_q[0],
        mq2 = mutation_q[2],
    );
    let path = report::output_path("BENCH_update.json");
    std::fs::write(&path, json).expect("write benchmark json");
    println!("\nwrote {path}");
}
