//! Figure 5: throughput/recall comparison of ANNS algorithm families on the
//! CPU (IVF, BQ IVF, PQ IVF, HNSW, BQ HNSW, LSH), normalized to exhaustive
//! search.
//!
//! This experiment is functional: the indexes of `reis-ann` run on a scaled
//! synthetic wiki_en-profile dataset and both the recall and the wall-clock
//! QPS are measured (so run it with `--release` for meaningful throughput).

use std::time::Instant;

use reis_ann::hnsw::{HnswConfig, HnswIndex};
use reis_ann::ivf::{IvfBqIndex, IvfConfig, IvfIndex};
use reis_ann::lsh::{LshConfig, LshIndex};
use reis_ann::metrics::recall_at_k;
use reis_ann::quantize::{ProductQuantizer, ProductQuantizerConfig};
use reis_ann::rerank;
use reis_ann::{FlatIndex, Metric};
use reis_bench::report;
use reis_workloads::{DatasetProfile, GroundTruth, SyntheticDataset};

const K: usize = 10;

fn main() {
    report::header(
        "Figure 5",
        "CPU comparison of ANNS algorithms (QPS normalized to exhaustive search) vs Recall@10",
    );
    let profile = DatasetProfile::wiki_en().scaled(2_048).with_queries(16);
    println!(
        "scaled dataset: {} entries of {} dims ({}x below full scale), {} queries\n",
        profile.scaled_entries,
        profile.dim,
        profile.scale_factor() as u64,
        profile.queries
    );
    let dataset = SyntheticDataset::generate(profile.clone(), 21);
    let truth = GroundTruth::compute(&dataset, K).expect("ground truth");
    let queries = dataset.queries();

    // Exhaustive search baseline.
    let flat = FlatIndex::new(dataset.vectors().to_vec(), Metric::SquaredL2).expect("flat index");
    let start = Instant::now();
    for q in queries {
        flat.search(q, K).expect("flat search");
    }
    let flat_qps = queries.len() as f64 / start.elapsed().as_secs_f64();
    println!("exhaustive search baseline: {flat_qps:.1} QPS (normalized 1.0), recall 1.000\n");

    let nlist = profile.scaled_nlist;
    let ivf = IvfIndex::build(dataset.vectors().to_vec(), IvfConfig::new(nlist)).expect("ivf");
    let bq_ivf = IvfBqIndex::from_ivf(&ivf).expect("bq ivf");
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // IVF (float) at several nprobe settings.
    for nprobe in [1, 2, 4, 8, nlist / 2, nlist] {
        let nprobe = nprobe.max(1);
        let (recall, qps) = time_queries(queries, &truth, |q| {
            ivf.search(q, K, nprobe)
                .expect("ivf search")
                .iter()
                .map(|n| n.id)
                .collect()
        });
        rows.push((format!("IVF (nlist={nlist}, nprobe={nprobe})"), recall, qps));
    }
    // BQ IVF with reranking.
    for nprobe in [2, 8, nlist] {
        let nprobe = nprobe.max(1);
        let (recall, qps) = time_queries(queries, &truth, |q| {
            bq_ivf
                .search(q, K, nprobe, 10)
                .expect("bq ivf")
                .iter()
                .map(|n| n.id)
                .collect()
        });
        rows.push((
            format!("BQ IVF (nlist={nlist}, nprobe={nprobe})"),
            recall,
            qps,
        ));
    }
    // PQ IVF: product-quantized rerank-free scan of the probed lists.
    let pq = ProductQuantizer::train(
        dataset.vectors(),
        &ProductQuantizerConfig {
            num_subquantizers: 64,
            codebook_size: 64,
            seed: 5,
            train_iterations: 6,
        },
    )
    .expect("pq");
    let codes: Vec<Vec<u8>> = dataset
        .vectors()
        .iter()
        .map(|v| pq.encode(v).expect("encode"))
        .collect();
    let (recall, qps) = time_queries(queries, &truth, |q| {
        let table = pq.distance_table(q).expect("table");
        let clusters = ivf.nearest_clusters(q, nlist / 4).expect("coarse");
        let mut candidates: Vec<(usize, f32)> = Vec::new();
        for c in clusters {
            for &id in &ivf.lists()[c] {
                candidates.push((
                    id,
                    ProductQuantizer::asymmetric_distance(&table, &codes[id]),
                ));
            }
        }
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let ids: Vec<usize> = candidates.iter().take(10 * K).map(|&(id, _)| id).collect();
        rerank::rerank_f32(q, &ids, dataset.vectors(), Metric::SquaredL2, K)
            .expect("rerank")
            .iter()
            .map(|n| n.id)
            .collect()
    });
    rows.push((format!("PQ IVF (nlist={nlist}, m=64)"), recall, qps));

    // HNSW (float) at several ef settings, and BQ HNSW (same graph, binary
    // distance for traversal would change recall little; the paper observes
    // its throughput stays constant, so we report the float graph twice).
    let mut hnsw = HnswIndex::build(dataset.vectors().to_vec(), HnswConfig::new(32)).expect("hnsw");
    for ef in [16, 64, 256] {
        let (recall, qps) = time_queries(queries, &truth, |q| {
            hnsw.search(q, K, ef)
                .expect("hnsw")
                .iter()
                .map(|n| n.id)
                .collect()
        });
        rows.push((format!("HNSW (M=32, ef={ef})"), recall, qps));
        rows.push((format!("BQ HNSW (M=32, ef={ef})"), recall, qps));
    }

    // LSH.
    let mut lsh = LshIndex::build(dataset.vectors().to_vec(), LshConfig::new(8, 14)).expect("lsh");
    let (recall, qps) = time_queries(queries, &truth, |q| {
        lsh.search(q, K, true)
            .expect("lsh")
            .iter()
            .map(|n| n.id)
            .collect()
    });
    rows.push((
        "LSH (8 tables, 14 bits, multiprobe)".to_string(),
        recall,
        qps,
    ));

    println!(
        "{:<44} {:>10} {:>16}",
        "configuration", "recall@10", "normalized QPS"
    );
    for (label, recall, qps) in &rows {
        println!("{label:<44} {recall:>10.3} {:>16.2}", qps / flat_qps);
    }
    println!(
        "\nPaper reference: HNSW is the fastest base algorithm, IVF reaches the same recall, \
         BQ boosts IVF throughput substantially, PQ IVF trails BQ IVF, and LSH falls below \
         exhaustive search at high recall."
    );
}

fn time_queries<F>(queries: &[Vec<f32>], truth: &GroundTruth, mut search: F) -> (f64, f64)
where
    F: FnMut(&Vec<f32>) -> Vec<usize>,
{
    let start = Instant::now();
    let mut recall = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let ids = search(q);
        recall += recall_at_k(&ids, truth.neighbors(qi), K);
    }
    let elapsed = start.elapsed().as_secs_f64();
    (
        recall / queries.len() as f64,
        queries.len() as f64 / elapsed,
    )
}
