//! Windowed adaptive filtering: transferred entries and measured latency
//! versus the threshold-window size, under sequential and sharded scans.
//!
//! PR 4 made adaptive brute-force filtering the default but pinned adapting
//! scans sequential; the windowed schedule removed that restriction. This
//! benchmark demonstrates both halves of the trade:
//!
//! * **Window size → transfers.** Smaller windows tighten the in-plane
//!   threshold sooner, so fewer Temporal-Top-List entries cross the flash
//!   channels (window 1 is the historical per-page schedule; a window
//!   larger than the scan is the static threshold).
//! * **Partition invariance.** At every window size the transferred-entry
//!   counts, results and modelled latency of the sequential and the sharded
//!   scan are asserted identical in-binary — the sharded column differs
//!   only in wall-clock, which is the whole point of deleting the
//!   "adapting scans run sequentially" rule. The sharded leg uses a 1-page
//!   per-shard minimum so every window ≥ 2 pages really is partitioned;
//!   its wall column therefore also shows the cost side of small windows
//!   (one worker-spawn set per window) against the amortization of large
//!   ones.
//!
//! Results are written to `BENCH_pr5.json` by default (this is the
//! benchmark's own committed artifact); pass `--output PATH` (or set
//! `REIS_BENCH_OUT`) to write elsewhere, and `--smoke` (or
//! `REIS_BENCH_SMOKE=1`) for the fast CI variant. Wall-clock columns are
//! meaningful on multi-core hosts; the JSON records `available_cores` (see
//! `docs/BENCHMARKS.md`).

use std::time::Instant;

use reis_bench::report;
use reis_core::{ReisConfig, ReisSystem, ScanParallelism, VectorDatabase};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const SHARDS: usize = 8;

struct RunShape {
    mode: &'static str,
    entries: usize,
    queries: usize,
    repeats: usize,
    windows: &'static [usize],
}

fn shape() -> RunShape {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    if smoke {
        RunShape {
            mode: "smoke",
            entries: 4_096,
            queries: 2,
            repeats: 2,
            windows: &[1, 4, 16],
        }
    } else {
        RunShape {
            mode: "full",
            entries: 32_768,
            queries: 4,
            repeats: 5,
            windows: &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512],
        }
    }
}

struct WindowPoint {
    window: usize,
    fine_entries: usize,
    fine_windows: usize,
    modelled_us: f64,
    sequential_us: f64,
    sharded_us: f64,
}

/// Best-of-`repeats` wall latency of each query, averaged, in microseconds.
fn measure(system: &mut ReisSystem, db_id: u32, queries: &[Vec<f32>], repeats: usize) -> f64 {
    let mut total_us = 0.0;
    for query in queries {
        let mut best = f64::INFINITY;
        for _ in 0..repeats {
            let start = Instant::now();
            system.search(db_id, query, K).expect("search");
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        total_us += best;
    }
    total_us / queries.len() as f64
}

/// Result signatures of every query, plus the summed transferred entries,
/// summed barrier count and mean modelled latency of one sweep point.
type SweepSignature = (Vec<Vec<(usize, f32)>>, usize, usize, f64);

/// Per-query signature plus summed activity of one sweep point.
fn signatures(system: &mut ReisSystem, db_id: u32, queries: &[Vec<f32>]) -> SweepSignature {
    let mut sigs = Vec::new();
    let mut entries = 0usize;
    let mut windows = 0usize;
    let mut modelled_us = 0.0;
    for query in queries {
        let outcome = system.search(db_id, query, K).expect("search");
        sigs.push(outcome.results.iter().map(|n| (n.id, n.distance)).collect());
        entries += outcome.activity.fine_entries;
        windows += outcome.activity.fine_windows;
        modelled_us += outcome.total_latency().as_secs_f64() * 1e6;
    }
    (sigs, entries, windows, modelled_us / queries.len() as f64)
}

fn main() {
    let shape = shape();
    report::header(
        "Adaptive window sweep",
        "Transferred entries and single-query latency vs. threshold-window size",
    );

    println!(
        "Building {}-entry synthetic dataset ({} mode)…",
        shape.entries, shape.mode
    );
    let dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(shape.entries)
            .with_queries(shape.queries),
        47,
    );
    let database = VectorDatabase::flat(dataset.vectors(), dataset.documents_owned())
        .expect("database construction");
    let queries: Vec<Vec<f32>> = dataset.queries().to_vec();

    // Two deployments of the same database: a pinned-sequential system and
    // a sharded one. The window (like the parallelism) is a host-side knob
    // swept at runtime over one deployment.
    let mut seq = ReisSystem::new(
        ReisConfig::ssd1().with_scan_parallelism(ScanParallelism::pinned_sequential()),
    );
    let seq_id = seq.deploy(&database).expect("deployment");
    // The sharded leg drops the per-shard page minimum to 1 so sharding
    // genuinely engages at every window size (a window is the unit of
    // parallel work, and a shard never gets more pages than the window
    // holds): small windows then honestly pay one worker-spawn set per
    // window, large windows amortize it — that cost curve is half of what
    // this sweep exists to show.
    let mut sharded = ReisSystem::new(
        ReisConfig::ssd1()
            .with_scan_parallelism(ScanParallelism::sharded(SHARDS).with_min_pages_per_shard(1)),
    );
    let sharded_id = sharded.deploy(&database).expect("deployment");

    // Static baseline: a window larger than any scan never reaches a
    // barrier, which is exactly the static threshold.
    seq.set_adaptive_window(usize::MAX);
    let (static_sigs, static_entries, _, static_modelled) = signatures(&mut seq, seq_id, &queries);
    let static_us = measure(&mut seq, seq_id, &queries, shape.repeats);
    println!(
        "\nStatic threshold (baseline): {static_entries} transferred entries, \
         {static_us:.1} us/query wall, {static_modelled:.1} us modelled"
    );

    println!("\nWindow sweep (adaptive brute force, k {K}):");
    println!(
        "  {:>7}  {:>10}  {:>9}  {:>12}  {:>12}  {:>12}",
        "window", "entries", "barriers", "modelled_us", "seq_us", "sharded_us"
    );
    let mut points: Vec<WindowPoint> = Vec::new();
    for &window in shape.windows {
        // Sequential leg: pinned single-threaded scans.
        seq.set_adaptive_window(window);
        let (seq_sigs, seq_entries, seq_windows, modelled_us) =
            signatures(&mut seq, seq_id, &queries);
        let sequential_us = measure(&mut seq, seq_id, &queries, shape.repeats);

        // Sharded leg: up to SHARDS channel/die workers per window (capped
        // by the window's own page count).
        sharded.set_adaptive_window(window);
        let (sharded_sigs, sharded_entries, sharded_windows, sharded_modelled) =
            signatures(&mut sharded, sharded_id, &queries);
        let sharded_us = measure(&mut sharded, sharded_id, &queries, shape.repeats);

        // Partition invariance, asserted on every sweep point: identical
        // results and identical transferred-entry accounting.
        assert_eq!(
            seq_sigs, sharded_sigs,
            "sharded adaptive results diverged at window {window}"
        );
        assert_eq!(
            (seq_entries, seq_windows),
            (sharded_entries, sharded_windows),
            "sharded adaptive accounting diverged at window {window}"
        );
        assert_eq!(
            seq_sigs, static_sigs,
            "adaptive top-k diverged from static at window {window}"
        );
        assert!(
            (modelled_us - sharded_modelled).abs() < 1e-9,
            "modelled latency diverged at window {window}"
        );

        println!(
            "  {window:>7}  {seq_entries:>10}  {seq_windows:>9}  {modelled_us:>12.1}  \
             {sequential_us:>12.1}  {sharded_us:>12.1}"
        );
        points.push(WindowPoint {
            window,
            fine_entries: seq_entries,
            fine_windows: seq_windows,
            modelled_us,
            sequential_us,
            sharded_us,
        });
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let best = points
        .iter()
        .min_by(|a, b| a.sharded_us.total_cmp(&b.sharded_us))
        .expect("non-empty sweep");
    println!(
        "\nAll window sizes transferred identical entries under sequential and sharded \
         scans (partition invariance)."
    );
    println!(
        "Best sharded-adaptive point: window {} at {:.1} us/query ({} entries vs static {}) \
         on {cores} core(s).",
        best.window, best.sharded_us, best.fine_entries, static_entries
    );
    if cores == 1 {
        println!(
            "note: only one CPU is available, so shard workers gain only the borrowed-read \
             path; the wall-clock columns are meaningful on multi-core hosts"
        );
    }

    let points_json = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"window\": {}, \"fine_entries\": {}, \"barriers\": {}, \
                 \"modelled_us\": {:.1}, \"sequential_us\": {:.1}, \"sharded_us\": {:.1} }}",
                p.window,
                p.fine_entries,
                p.fine_windows,
                p.modelled_us,
                p.sequential_us,
                p.sharded_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{}\",\n  \
         \"dataset\": {{ \"entries\": {}, \"dim\": {} }},\n  \
         \"queries\": {},\n  \"repeats_per_point\": {},\n  \"k\": {K},\n  \
         \"partition_invariant\": true,\n  \
         \"static_baseline\": {{ \"fine_entries\": {static_entries}, \
         \"modelled_us\": {static_modelled:.1}, \"sequential_us\": {static_us:.1} }},\n  \
         \"window_sweep\": [\n{points_json}\n  ]\n}}\n",
        shape.mode,
        shape.entries,
        dataset.profile().dim,
        shape.queries,
        shape.repeats,
    );
    let path = report::output_path("BENCH_pr5.json");
    std::fs::write(&path, json).expect("write benchmark artifact");
    println!("\nWrote {path}");
}
