//! Figure 2: latency breakdown of a typical (CPU-based, full-precision) RAG
//! pipeline on HotpotQA and wiki_en.
//!
//! Regenerates the stacked-bar series of Fig. 2: the fraction of end-to-end
//! execution time spent in each pipeline stage, plus the total time, for a
//! flat FAISS-style index over f32 embeddings served from storage.

use reis_baseline::{CpuPrecision, CpuSystem};
use reis_bench::report;
use reis_rag::{RagPipeline, RagStage};
use reis_workloads::DatasetProfile;

fn main() {
    report::header(
        "Figure 2",
        "RAG pipeline latency breakdown, CPU retrieval over f32 embeddings",
    );
    let pipeline = RagPipeline::default();
    let cpu = CpuSystem::default();
    for profile in [DatasetProfile::hotpotqa(), DatasetProfile::wiki_en()] {
        let breakdown = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::Float32);
        println!(
            "\n{name}  (full scale: {entries} entries, {gb:.1} GB loaded)  total = {total:.2} s",
            name = profile.name,
            entries = profile.full_entries,
            gb = profile.full_load_bytes_f32() as f64 / 1e9,
            total = breakdown.total(),
        );
        let rows: Vec<(String, f64)> = RagStage::all()
            .iter()
            .map(|&stage| {
                (
                    format!("{} (% of total)", stage.label()),
                    breakdown.fraction(stage) * 100.0,
                )
            })
            .collect();
        report::series("  stage fractions:", &rows);
        println!(
            "  retrieval stage (dataset loading + search): {:.1}% of end-to-end time",
            breakdown.retrieval_fraction() * 100.0
        );
    }
    println!(
        "\nPaper reference: dataset loading reaches 84% of the pipeline for wiki_en \
         and 46% for HotpotQA; the shape to check is that wiki_en's retrieval share \
         is far larger and grows with dataset size."
    );
}
