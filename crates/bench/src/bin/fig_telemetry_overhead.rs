//! Telemetry overhead, search-vs-mutation interference, and hedge tail
//! quantiles — the observability figure of PR 8.
//!
//! Four measurements:
//!
//! 1. **Fused batch-8 overhead** — wall-clock QPS of the fused batch-8
//!    brute-force scan with telemetry disabled versus enabled, on two
//!    systems holding the same deployment. Every enabled-run outcome is
//!    asserted bit-identical (results, documents, modelled latency,
//!    activity) to the disabled run first: the counters may only watch
//!    the computation, never steer it. The committed full-mode artifact
//!    must show `overhead_pct <= 3` (enforced by the artifact validator).
//! 2. **Interference** — modelled single-query latency quantiles read
//!    from the `reis_query_modelled_ns` histogram on a quiescent IVF
//!    deployment, again after a mutation trace dirtied it (append
//!    segments + tombstones), and once more after compaction folded it
//!    back; plus the modelled per-mutation quantiles the same trace left
//!    in `reis_mutation_modelled_ns`.
//! 3. **Hedge quantiles** — p50/p95/p99 per-leaf completion times from
//!    the aggregator's `reis_leaf_completion_ns` histogram under a seeded
//!    straggler skew model, swept over hedging deadlines. Tightening the
//!    deadline cuts the tail quantiles while the merged results stay
//!    bit-identical across every policy.
//! 4. **Exporters** — the Prometheus scrape is spot-checked for the
//!    expected series and the JSON snapshot is parsed and shape-checked
//!    with `reis_bench::artifacts` (the same parser that validates this
//!    artifact).
//!
//! Results are written to `BENCH_pr8.json` by default (this benchmark's
//! committed artifact); pass `--output PATH` (or `REIS_BENCH_OUT`) to
//! write elsewhere, and `--smoke` (or `REIS_BENCH_SMOKE=1`) for the fast
//! CI variant.

use std::time::Instant;

use reis_bench::{artifacts, report};
use reis_cluster::{ClusterSystem, HedgePolicy, LatencyModel};
use reis_core::{
    CompactionPolicy, CounterId, HistogramId, ReisConfig, ReisSystem, SearchOutcome, VectorDatabase,
};
use reis_nand::Nanos;
use reis_workloads::{DatasetProfile, MutationMix, MutationOp, MutationTrace, SyntheticDataset};

const K: usize = 10;
const BATCH: usize = 8;
const NPROBE: usize = 16;
const CLUSTER_LEAVES: usize = 4;
const CLUSTER_DIM: usize = 16;
const SKEW_SEED: u64 = 0x0B5E_7AB1;
const SKEW_BASE_NS: u64 = 100_000;
const SKEW_JITTER_NS: u64 = 3_000_000;

struct Scale {
    mode: &'static str,
    bf_entries: usize,
    ivf_entries: usize,
    nlist: usize,
    trace_ops: usize,
    probe_rounds: usize,
    cluster_entries: usize,
    cluster_queries: usize,
    min_measure_secs: f64,
    qps_rounds: usize,
}

impl Scale {
    fn pick() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke")
            || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
        if smoke {
            Scale {
                mode: "smoke",
                bf_entries: 2_048,
                ivf_entries: 768,
                nlist: 16,
                trace_ops: 60,
                probe_rounds: 4,
                cluster_entries: 4_096,
                cluster_queries: 8,
                min_measure_secs: 0.05,
                qps_rounds: 2,
            }
        } else {
            // 131072 entries = 1024 embedding pages, the same shape the
            // fused-batch figure uses: the scan dominates, so any
            // per-query telemetry cost shows up as honestly as possible.
            Scale {
                mode: "full",
                bf_entries: 131_072,
                ivf_entries: 10_240,
                nlist: 64,
                trace_ops: 600,
                probe_rounds: 8,
                cluster_entries: 16_384,
                cluster_queries: 32,
                min_measure_secs: 0.3,
                qps_rounds: 3,
            }
        }
    }
}

/// One cluster query's identity signature: result ids plus documents.
type ClusterSignature = (Vec<usize>, Vec<Vec<u8>>);

/// The full bit-identity signature of one outcome.
fn signature(outcome: &SearchOutcome) -> (Vec<(usize, u32)>, Vec<Vec<u8>>) {
    (
        outcome
            .results
            .iter()
            .map(|n| (n.id, n.distance.to_bits()))
            .collect(),
        outcome.documents.clone(),
    )
}

/// Best single-round batch QPS over at least `min_secs` of measurement.
fn measure_qps(system: &mut ReisSystem, db: u32, queries: &[Vec<f32>], min_secs: f64) -> f64 {
    let mut best = 0.0f64;
    let mut elapsed = 0.0;
    while elapsed < min_secs {
        let start = Instant::now();
        let outcomes = system
            .search_batch(db, queries, K, queries.len())
            .expect("batch search");
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(outcomes.len(), queries.len());
        elapsed += secs;
        best = best.max(queries.len() as f64 / secs);
    }
    best
}

/// `[p50, p95, p99]` of a histogram snapshot, converted to microseconds.
fn quantiles_us(snapshot: &reis_core::Telemetry, id: HistogramId) -> [f64; 3] {
    let snap = snapshot.histogram(id);
    [0.50, 0.95, 0.99].map(|q| snap.quantile(q) / 1e3)
}

fn vector_for(id: u32) -> Vec<f32> {
    (0..CLUSTER_DIM)
        .map(|d| {
            let mut x = (id as u64) << 32 | d as u64;
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x % 201) as f32 - 100.0
        })
        .collect()
}

fn main() {
    let scale = Scale::pick();
    report::header(
        "Telemetry overhead",
        "Enabled-telemetry cost, interference quantiles, hedge tails",
    );
    println!(
        "mode {} · brute force {} entries · IVF {} entries · cluster {} entries x {} leaves",
        scale.mode, scale.bf_entries, scale.ivf_entries, scale.cluster_entries, CLUSTER_LEAVES
    );

    // ---- 1. Fused batch-8 QPS, telemetry off vs on. ---------------------
    println!("\nBuilding {}-entry flat dataset…", scale.bf_entries);
    let dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(scale.bf_entries)
            .with_queries(BATCH),
        59,
    );
    let database =
        VectorDatabase::flat(dataset.vectors(), dataset.documents_owned()).expect("flat database");
    let mut off = ReisSystem::new(ReisConfig::ssd1());
    let off_db = off.deploy(&database).expect("deploy");
    let mut on = ReisSystem::new(ReisConfig::ssd1());
    let on_db = on.deploy(&database).expect("deploy");
    on.enable_telemetry();
    let queries: Vec<Vec<f32>> = dataset.queries().to_vec();

    // Identity first: the enabled system must answer the batch with
    // bit-identical results, modelled latency and logical accounting.
    let off_outcomes = off
        .search_batch(off_db, &queries, K, queries.len())
        .expect("batch search");
    let on_outcomes = on
        .search_batch(on_db, &queries, K, queries.len())
        .expect("batch search");
    let identical = off_outcomes.iter().zip(&on_outcomes).all(|(a, b)| {
        signature(a) == signature(b) && a.latency == b.latency && a.activity == b.activity
    });
    assert!(
        identical,
        "telemetry perturbed search outcomes — the artifact must not ship"
    );

    // Interleave the off/on rounds so drift on the host biases neither
    // side, and keep the best round of each.
    let mut off_qps = 0.0f64;
    let mut on_qps = 0.0f64;
    for _ in 0..scale.qps_rounds {
        off_qps = off_qps.max(measure_qps(
            &mut off,
            off_db,
            &queries,
            scale.min_measure_secs,
        ));
        on_qps = on_qps.max(measure_qps(
            &mut on,
            on_db,
            &queries,
            scale.min_measure_secs,
        ));
    }
    let overhead_pct = (1.0 - on_qps / off_qps) * 100.0;
    println!(
        "\nFused batch-{BATCH} brute force: {off_qps:.1} QPS off · {on_qps:.1} QPS on · overhead {overhead_pct:.2}%"
    );
    if scale.mode == "full" {
        assert!(
            overhead_pct <= 3.0,
            "enabled telemetry must cost <= 3% of fused batch-8 QPS, got {overhead_pct:.2}%"
        );
    }
    let per_query_observed = on.telemetry().counter(CounterId::Queries);
    assert!(
        per_query_observed >= queries.len() as u64,
        "query counter running"
    );

    // ---- 2. Modelled search-vs-mutation interference. -------------------
    println!(
        "\nBuilding {}-entry IVF dataset (nlist {})…",
        scale.ivf_entries, scale.nlist
    );
    let ivf_dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa()
            .scaled(scale.ivf_entries)
            .with_queries(4),
        47,
    );
    let ivf_database = VectorDatabase::ivf(
        ivf_dataset.vectors(),
        ivf_dataset.documents_owned(),
        scale.nlist,
    )
    .expect("ivf database");
    let mut system =
        ReisSystem::new(ReisConfig::ssd1().with_compaction(CompactionPolicy::manual()));
    let db = system.deploy(&ivf_database).expect("deploy");
    system.enable_telemetry();
    let probes: Vec<Vec<f32>> = ivf_dataset.queries().to_vec();
    let dim = ivf_dataset.profile().dim;
    let doc_bytes = ivf_dataset.profile().doc_bytes;

    let probe_round = |system: &mut ReisSystem, rounds: usize| {
        for _ in 0..rounds {
            for query in &probes {
                system
                    .ivf_search_with_nprobe(db, query, K, NPROBE)
                    .expect("probe search");
            }
        }
    };

    let before = system.telemetry().histogram(HistogramId::QueryModelledNs);
    probe_round(&mut system, scale.probe_rounds);
    let quiescent = system
        .telemetry()
        .histogram(HistogramId::QueryModelledNs)
        .delta(&before);
    let quiescent_us = [0.50, 0.95, 0.99].map(|q| quiescent.quantile(q) / 1e3);

    // Dirty the deployment with a mixed mutation trace, then re-probe.
    let trace = MutationTrace::generate(
        scale.ivf_entries,
        dim,
        doc_bytes,
        scale.trace_ops,
        MutationMix {
            insert: 2,
            delete: 1,
            upsert: 1,
            search: 0,
        },
        13,
    );
    let mut logical_to_stable: Vec<Option<u32>> = (0..scale.ivf_entries as u32).map(Some).collect();
    for op in trace.ops() {
        match op {
            MutationOp::Insert { vector, document } => {
                let outcome = system.insert(db, vector, document.clone()).expect("insert");
                logical_to_stable.push(Some(outcome.ids[0]));
            }
            MutationOp::Delete { target } => {
                if let Some(id) = logical_to_stable[*target].take() {
                    system.delete(db, id).expect("delete");
                }
            }
            MutationOp::Upsert {
                target,
                vector,
                document,
            } => {
                if let Some(id) = logical_to_stable[*target] {
                    system.upsert(db, id, vector, document).expect("upsert");
                }
            }
            MutationOp::Search { .. } => {}
        }
    }
    let mutation_us = quantiles_us(system.telemetry(), HistogramId::MutationModelledNs);
    let mutations_recorded = system
        .telemetry()
        .histogram(HistogramId::MutationModelledNs)
        .count;
    assert!(
        mutations_recorded > 0,
        "mutation histogram must be populated"
    );

    let before = system.telemetry().histogram(HistogramId::QueryModelledNs);
    probe_round(&mut system, scale.probe_rounds);
    let dirty = system
        .telemetry()
        .histogram(HistogramId::QueryModelledNs)
        .delta(&before);
    let dirty_us = [0.50, 0.95, 0.99].map(|q| dirty.quantile(q) / 1e3);

    system.compact(db).expect("compaction");
    let before = system.telemetry().histogram(HistogramId::QueryModelledNs);
    probe_round(&mut system, scale.probe_rounds);
    let compacted = system
        .telemetry()
        .histogram(HistogramId::QueryModelledNs)
        .delta(&before);
    let compacted_us = [0.50, 0.95, 0.99].map(|q| compacted.quantile(q) / 1e3);

    println!("\nModelled search latency under mutations (p50/p95/p99 us):");
    println!(
        "    quiescent        {:>8.1} {:>8.1} {:>8.1}",
        quiescent_us[0], quiescent_us[1], quiescent_us[2]
    );
    println!(
        "    dirty            {:>8.1} {:>8.1} {:>8.1}",
        dirty_us[0], dirty_us[1], dirty_us[2]
    );
    println!(
        "    post-compaction  {:>8.1} {:>8.1} {:>8.1}",
        compacted_us[0], compacted_us[1], compacted_us[2]
    );
    println!(
        "    mutations        {:>8.1} {:>8.1} {:>8.1}  ({} ops)",
        mutation_us[0], mutation_us[1], mutation_us[2], mutations_recorded
    );
    // The interference story: scans over segments + tombstone filtering
    // cannot make the modelled query cheaper than the quiescent scan.
    assert!(
        dirty_us[0] >= quiescent_us[0] * 0.99,
        "dirty p50 must not undercut the quiescent p50"
    );

    // ---- 3. Hedge completion-time quantiles from the aggregator. --------
    println!(
        "\nHedge quantiles ({CLUSTER_LEAVES} leaves, seeded skew, {} queries):",
        scale.cluster_queries
    );
    println!(
        "{:>13} {:>10} {:>10} {:>10} {:>8}",
        "deadline", "p50 (us)", "p95 (us)", "p99 (us)", "hedges"
    );
    let cluster_vectors: Vec<Vec<f32>> =
        (0..scale.cluster_entries as u32).map(vector_for).collect();
    let cluster_documents: Vec<Vec<u8>> = (0..scale.cluster_entries as u32)
        .map(|id| format!("telemetry bench doc {id:06}").into_bytes())
        .collect();
    let cluster_queries: Vec<Vec<f32>> = (0..scale.cluster_queries as u32)
        .map(|q| vector_for(1_000_000 + q))
        .collect();
    let deadlines: [Option<u64>; 3] = [None, Some(800_000), Some(400_000)];
    let mut policy_rows: Vec<(String, [f64; 3], u64)> = Vec::new();
    let mut reference: Option<Vec<ClusterSignature>> = None;
    for deadline_ns in deadlines {
        let mut cluster = ClusterSystem::new(ReisConfig::ssd1(), CLUSTER_LEAVES)
            .expect("cluster")
            .with_latency_model(LatencyModel::new(SKEW_SEED, SKEW_BASE_NS, SKEW_JITTER_NS))
            .with_hedging(deadline_ns.map(|ns| HedgePolicy::new(Nanos::from_nanos(ns))));
        cluster
            .deploy_flat(&cluster_vectors, &cluster_documents)
            .expect("sharded deploy");
        cluster.enable_telemetry();
        let signatures: Vec<ClusterSignature> = cluster_queries
            .iter()
            .map(|query| {
                let outcome = cluster.search(query, K).expect("cluster search");
                (
                    outcome.results.iter().map(|n| n.id).collect(),
                    outcome.documents.clone(),
                )
            })
            .collect();
        match &reference {
            None => reference = Some(signatures),
            Some(expected) => assert_eq!(
                expected, &signatures,
                "hedged schedules changed results — the merge must be schedule-independent"
            ),
        }
        let completion_us = quantiles_us(cluster.telemetry(), HistogramId::LeafCompletionNs);
        let hedges = cluster.telemetry().counter(CounterId::HedgesLaunched);
        let leaf_requests = cluster.telemetry().counter(CounterId::LeafRequests);
        assert_eq!(
            leaf_requests,
            (scale.cluster_queries * CLUSTER_LEAVES) as u64,
            "every leaf request must be observed"
        );
        let label = match deadline_ns {
            None => "none".to_string(),
            Some(ns) => format!("{} us", ns / 1_000),
        };
        println!(
            "{label:>13} {:>10.1} {:>10.1} {:>10.1} {hedges:>8}",
            completion_us[0], completion_us[1], completion_us[2]
        );
        policy_rows.push((label, completion_us, hedges));
    }
    let (loose_p99, tight_p99) = (policy_rows[0].1[2], policy_rows.last().unwrap().1[2]);
    assert!(
        tight_p99 <= loose_p99,
        "tightening the hedge deadline must not worsen the completion p99 \
         ({tight_p99:.1} us vs {loose_p99:.1} us unhedged)"
    );

    // ---- 4. Exporters. --------------------------------------------------
    let scrape = on.telemetry().prometheus();
    assert!(scrape.contains("# TYPE reis_queries_total counter"));
    assert!(scrape.contains("# TYPE reis_query_modelled_ns histogram"));
    let snapshot = on.telemetry().json_snapshot();
    let parsed = artifacts::parse(&snapshot).expect("json snapshot parses");
    let json_snapshot_valid = ["counters", "gauges", "histograms"].iter().all(
        |key| matches!(parsed.get(key), Some(artifacts::Json::Obj(fields)) if !fields.is_empty()),
    );
    assert!(
        json_snapshot_valid,
        "json snapshot must carry all three sections"
    );
    println!(
        "\nExporters: {} B Prometheus scrape, JSON snapshot valid: {json_snapshot_valid}",
        scrape.len()
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let policies_json: Vec<String> = policy_rows
        .iter()
        .map(|(label, q, hedges)| {
            format!(
                "{{ \"deadline\": \"{label}\", \"completion_p50_us\": {:.2}, \
                 \"completion_p95_us\": {:.2}, \"completion_p99_us\": {:.2}, \
                 \"hedges_launched\": {hedges} }}",
                q[0], q[1], q[2]
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{mode}\",\n  \
         \"dataset\": {{ \"bf_entries\": {bf}, \"dim\": 1024, \"ivf_entries\": {ivf}, \
         \"nlist\": {nlist}, \"cluster_entries\": {ce}, \"cluster_dim\": {CLUSTER_DIM} }},\n  \
         \"results_identical_with_telemetry\": {identical},\n  \
         \"fused_batch8\": {{ \"batch\": {BATCH}, \"off_qps\": {off_qps:.1}, \
         \"on_qps\": {on_qps:.1}, \"overhead_pct\": {overhead_pct:.2} }},\n  \
         \"interference\": {{ \"trace_ops\": {trace_ops}, \
         \"quiescent_p50_us\": {qp50:.2}, \"quiescent_p95_us\": {qp95:.2}, \"quiescent_p99_us\": {qp99:.2}, \
         \"dirty_p50_us\": {dp50:.2}, \"dirty_p95_us\": {dp95:.2}, \"dirty_p99_us\": {dp99:.2}, \
         \"post_compaction_p50_us\": {cp50:.2}, \
         \"mutation_p50_us\": {mp50:.2}, \"mutation_p99_us\": {mp99:.2} }},\n  \
         \"hedge_quantiles\": {{ \"leaves\": {CLUSTER_LEAVES}, \"skew_base_ns\": {SKEW_BASE_NS}, \
         \"skew_jitter_ns\": {SKEW_JITTER_NS}, \"policies\": [\n    {policies}\n  ] }},\n  \
         \"exporters\": {{ \"prometheus_bytes\": {prom_bytes}, \
         \"json_snapshot_valid\": {json_snapshot_valid} }}\n}}\n",
        mode = scale.mode,
        bf = scale.bf_entries,
        ivf = scale.ivf_entries,
        nlist = scale.nlist,
        ce = scale.cluster_entries,
        trace_ops = scale.trace_ops,
        qp50 = quiescent_us[0],
        qp95 = quiescent_us[1],
        qp99 = quiescent_us[2],
        dp50 = dirty_us[0],
        dp95 = dirty_us[1],
        dp99 = dirty_us[2],
        cp50 = compacted_us[0],
        mp50 = mutation_us[0],
        mp99 = mutation_us[2],
        policies = policies_json.join(",\n    "),
        prom_bytes = scrape.len(),
    );
    let path = report::output_path("BENCH_pr8.json");
    std::fs::write(&path, json).expect("write benchmark artifact");
    println!("\nWrote {path}");
}
