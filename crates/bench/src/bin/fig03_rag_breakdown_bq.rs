//! Figure 3: latency breakdown of the RAG pipeline when the embeddings are
//! binary-quantized (documents and INT8 rescoring data still move).

use reis_baseline::{CpuPrecision, CpuSystem};
use reis_bench::report;
use reis_rag::{RagPipeline, RagStage};
use reis_workloads::DatasetProfile;

fn main() {
    report::header(
        "Figure 3",
        "RAG pipeline latency breakdown with Binary Quantization (CPU retrieval)",
    );
    let pipeline = RagPipeline::default();
    let cpu = CpuSystem::default();
    for profile in [DatasetProfile::hotpotqa(), DatasetProfile::wiki_en()] {
        let f32_breakdown = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::Float32);
        let bq_breakdown = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::BinaryWithRerank);
        println!(
            "\n{name}  (BQ load: {gb:.1} GB, of which documents {doc_gb:.1} GB)  total = {total:.2} s",
            name = profile.name,
            gb = profile.full_load_bytes_bq() as f64 / 1e9,
            doc_gb = profile.full_document_bytes() as f64 / 1e9,
            total = bq_breakdown.total(),
        );
        let rows: Vec<(String, f64)> = RagStage::all()
            .iter()
            .map(|&stage| {
                (
                    format!("{} (% of total)", stage.label()),
                    bq_breakdown.fraction(stage) * 100.0,
                )
            })
            .collect();
        report::series("  stage fractions:", &rows);
        println!(
            "  dataset-loading share: {:.1}% (was {:.1}% without BQ) — reduced but not eliminated",
            bq_breakdown.fraction(RagStage::DatasetLoading) * 100.0,
            f32_breakdown.fraction(RagStage::DatasetLoading) * 100.0,
        );
    }
    println!(
        "\nPaper reference: BQ cuts the I/O share by 17-29% but dataset loading still \
         accounts for ~67% of the wiki_en pipeline, because document chunks cannot be quantized."
    );
}
