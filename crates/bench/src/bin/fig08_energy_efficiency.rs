//! Figure 8: energy efficiency (QPS/W) of REIS-SSD1 and REIS-SSD2 normalized
//! to CPU-Real, for the same dataset / recall sweep as Fig. 7.

use reis_baseline::{CpuPrecision, CpuSystem};
use reis_bench::calibration::calibrate;
use reis_bench::fullscale::{estimate_reis, SearchMode};
use reis_bench::report;
use reis_core::{ReisConfig, ReisSystem};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const QUERY_BATCH: usize = 1_000;
const RECALLS: [f64; 3] = [0.98, 0.94, 0.90];

fn main() {
    report::header(
        "Figure 8",
        "Energy efficiency (QPS/W) normalized to CPU-Real",
    );
    let cpu = CpuSystem::default();
    let mut reis1_gains = Vec::new();

    for profile in DatasetProfile::main_evaluation() {
        let scaled = profile.clone().scaled(1_024).with_queries(8);
        let dataset = SyntheticDataset::generate(scaled, 33);
        let calibration = calibrate(&dataset, ReisConfig::ssd1().filter_threshold_fraction, K);
        println!("\n{name}:", name = profile.name);
        println!(
            "{:<26} {:>14} {:>14}",
            "configuration", "REIS-SSD1", "REIS-SSD2"
        );

        let mut rows: Vec<(String, Option<usize>, SearchMode, CpuPrecision)> = vec![(
            "BF".to_string(),
            None,
            SearchMode::BruteForce,
            CpuPrecision::Float32,
        )];
        for recall in RECALLS {
            let fraction = ReisSystem::nprobe_for_recall(profile.full_nlist, recall) as f64
                / profile.full_nlist as f64;
            rows.push((
                format!("IVF R@10={recall:.2}"),
                Some(((profile.full_nlist as f64 * fraction) as usize).max(1)),
                SearchMode::Ivf {
                    nprobe_fraction: fraction,
                },
                CpuPrecision::BinaryWithRerank,
            ));
        }

        for (label, nprobe, mode, precision) in rows {
            let cpu_real = cpu.cpu_real(&profile, QUERY_BATCH, nprobe, precision);
            let r1 = estimate_reis(
                &profile,
                &ReisConfig::ssd1(),
                mode,
                calibration.pass_fraction,
                K,
            );
            let r2 = estimate_reis(
                &profile,
                &ReisConfig::ssd2(),
                mode,
                calibration.pass_fraction,
                K,
            );
            let n1 = report::normalized(r1.qps_per_watt, cpu_real.qps_per_watt());
            let n2 = report::normalized(r2.qps_per_watt, cpu_real.qps_per_watt());
            println!("{label:<26} {n1:>14.1} {n2:>14.1}");
            reis1_gains.push(n1);
        }
    }
    println!(
        "\nGeometric-mean energy-efficiency gain of REIS-SSD1 over CPU-Real: {:.0}x \
         (paper: ~55x average, up to 157x, driven by the ~30x lower SSD power)",
        report::geomean(&reis1_gains)
    );
}
