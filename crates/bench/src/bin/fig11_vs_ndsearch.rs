//! Figure 11: performance of REIS (IVF) against NDSearch running HNSW and
//! DiskANN on the billion-scale SIFT-1B and DEEP-1B collections.

use reis_baseline::{NdSearchAlgorithm, NdSearchModel};
use reis_bench::fullscale::{estimate_reis, SearchMode};
use reis_bench::report;
use reis_core::ReisConfig;
use reis_workloads::DatasetProfile;

const K: usize = 10;

fn main() {
    report::header(
        "Figure 11",
        "REIS throughput normalized to NDSearch (HNSW and DiskANN) on billion-scale datasets",
    );
    // The Fig. 11 operating points: SIFT-1B at R@10 = 0.94, DEEP-1B at 0.93.
    let settings = [
        (DatasetProfile::sift_1b(), 0.94, 0.010),
        (DatasetProfile::deep_1b(), 0.93, 0.009),
    ];
    // Billion-scale corpora are far less clustered than text corpora; the
    // distance filter still removes the bulk of candidates (Sec. 4.3.3).
    let pass_fraction = 0.02;
    let mut speedups = Vec::new();
    println!(
        "{:<28} {:>22} {:>22}",
        "dataset (target recall)", "speedup vs ND-HNSW", "speedup vs ND-DiskANN"
    );
    for (profile, recall, nprobe_fraction) in settings {
        let reis = estimate_reis(
            &profile,
            &ReisConfig::ssd2(),
            SearchMode::Ivf { nprobe_fraction },
            pass_fraction,
            K,
        );
        let hnsw = NdSearchModel::new(ReisConfig::ssd2(), NdSearchAlgorithm::Hnsw);
        let diskann = NdSearchModel::new(ReisConfig::ssd2(), NdSearchAlgorithm::DiskAnn);
        let s_hnsw = reis.qps / hnsw.qps(&profile);
        let s_diskann = reis.qps / diskann.qps(&profile);
        println!(
            "{:<28} {:>21.2}x {:>21.2}x",
            format!("{} (R@10={recall})", profile.name),
            s_hnsw,
            s_diskann
        );
        speedups.push(s_hnsw);
        speedups.push(s_diskann);
    }
    println!(
        "\nGeometric-mean speedup over NDSearch: {:.2}x (paper: 1.7x average, up to 2.6x)",
        report::geomean(&speedups)
    );
}
