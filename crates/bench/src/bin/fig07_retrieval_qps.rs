//! Figure 7: retrieval performance (QPS) of REIS-SSD1 / REIS-SSD2 / No-I/O
//! normalized to CPU-Real, for brute force and IVF at Recall@10 targets of
//! 0.98 / 0.94 / 0.90, on NQ, HotpotQA, wiki_en and wiki_full.

use reis_baseline::{CpuPrecision, CpuSystem};
use reis_bench::calibration::calibrate;
use reis_bench::fullscale::{estimate_reis, SearchMode};
use reis_bench::report;
use reis_core::{ReisConfig, ReisSystem};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const QUERY_BATCH: usize = 1_000;
const RECALLS: [f64; 3] = [0.98, 0.94, 0.90];

fn main() {
    report::header(
        "Figure 7",
        "Retrieval QPS normalized to CPU-Real (higher is better)",
    );
    let cpu = CpuSystem::default();
    let mut reis1_speedups = Vec::new();
    let mut reis2_over_reis1 = Vec::new();

    for profile in DatasetProfile::main_evaluation() {
        let scaled = profile.clone().scaled(1_024).with_queries(8);
        let dataset = SyntheticDataset::generate(scaled, 33);
        let calibration = calibrate(&dataset, ReisConfig::ssd1().filter_threshold_fraction, K);
        println!(
            "\n{name}: full scale {entries} entries; calibration on {scaled_n} entries \
             (pass fraction {pf:.3})",
            name = profile.name,
            entries = profile.full_entries,
            scaled_n = dataset.len(),
            pf = calibration.pass_fraction,
        );
        println!(
            "{:<26} {:>14} {:>14} {:>14}",
            "configuration", "No-I/O", "REIS-SSD1", "REIS-SSD2"
        );

        // Brute force row.
        let cpu_real = cpu.cpu_real(&profile, QUERY_BATCH, None, CpuPrecision::Float32);
        let no_io = cpu.no_io(&profile, QUERY_BATCH, None, CpuPrecision::Float32);
        let r1 = estimate_reis(
            &profile,
            &ReisConfig::ssd1(),
            SearchMode::BruteForce,
            calibration.pass_fraction,
            K,
        );
        let r2 = estimate_reis(
            &profile,
            &ReisConfig::ssd2(),
            SearchMode::BruteForce,
            calibration.pass_fraction,
            K,
        );
        print_row("BF", cpu_real.qps(), no_io.qps(), r1.qps, r2.qps);
        reis1_speedups.push(r1.qps / cpu_real.qps());
        reis2_over_reis1.push(r2.qps / r1.qps);

        // IVF rows at each recall target.
        for recall in RECALLS {
            // The synthetic calibration curve saturates early (see
            // EXPERIMENTS.md), so the nprobe mapping uses the paper's
            // device-side recall heuristic at full scale.
            let fraction = ReisSystem::nprobe_for_recall(profile.full_nlist, recall) as f64
                / profile.full_nlist as f64;
            let nprobe_full = ((profile.full_nlist as f64 * fraction) as usize).max(1);
            let cpu_real = cpu.cpu_real(
                &profile,
                QUERY_BATCH,
                Some(nprobe_full),
                CpuPrecision::BinaryWithRerank,
            );
            let no_io = cpu.no_io(
                &profile,
                QUERY_BATCH,
                Some(nprobe_full),
                CpuPrecision::BinaryWithRerank,
            );
            let r1 = estimate_reis(
                &profile,
                &ReisConfig::ssd1(),
                SearchMode::Ivf {
                    nprobe_fraction: fraction,
                },
                calibration.pass_fraction,
                K,
            );
            let r2 = estimate_reis(
                &profile,
                &ReisConfig::ssd2(),
                SearchMode::Ivf {
                    nprobe_fraction: fraction,
                },
                calibration.pass_fraction,
                K,
            );
            print_row(
                &format!("IVF R@10={recall:.2}"),
                cpu_real.qps(),
                no_io.qps(),
                r1.qps,
                r2.qps,
            );
            reis1_speedups.push(r1.qps / cpu_real.qps());
            reis2_over_reis1.push(r2.qps / r1.qps);
        }
    }

    println!(
        "\nGeometric-mean speedup of REIS-SSD1 over CPU-Real: {:.1}x (paper: ~13x average, up to 112x)",
        report::geomean(&reis1_speedups)
    );
    println!(
        "Geometric-mean speedup of REIS-SSD2 over REIS-SSD1: {:.1}x (paper: ~2.6x average)",
        report::geomean(&reis2_over_reis1)
    );
}

fn print_row(label: &str, cpu_real: f64, no_io: f64, reis1: f64, reis2: f64) {
    println!(
        "{label:<26} {:>14.2} {:>14.2} {:>14.2}",
        report::normalized(no_io, cpu_real),
        report::normalized(reis1, cpu_real),
        report::normalized(reis2, cpu_real),
    );
}
