//! Figure 9: sensitivity of REIS throughput to its optimizations
//! (No-OPT, +DF, +PL, +MPIBC) on wiki_full, for both SSD configurations,
//! normalized to CPU-Real.

use reis_baseline::{CpuPrecision, CpuSystem};
use reis_bench::calibration::calibrate;
use reis_bench::fullscale::{estimate_reis, SearchMode};
use reis_bench::report;
use reis_core::{Optimizations, ReisConfig, ReisSystem};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const QUERY_BATCH: usize = 1_000;
const RECALLS: [f64; 5] = [0.98, 0.96, 0.94, 0.92, 0.90];

fn main() {
    report::header(
        "Figure 9",
        "Effect of DF / PL / MPIBC on throughput (wiki_full, normalized to CPU-Real)",
    );
    let profile = DatasetProfile::wiki_full();
    let scaled = profile.clone().scaled(1_024).with_queries(8);
    let dataset = SyntheticDataset::generate(scaled, 41);
    let calibration = calibrate(&dataset, ReisConfig::ssd1().filter_threshold_fraction, K);
    let cpu = CpuSystem::default();

    let ladder = [
        ("NO-OPT", Optimizations::none()),
        ("+DF", Optimizations::df_only()),
        ("+PL", Optimizations::df_pl()),
        ("+MPIBC", Optimizations::all()),
    ];

    for (ssd_name, base_config) in [
        ("REIS-SSD1", ReisConfig::ssd1()),
        ("REIS-SSD2", ReisConfig::ssd2()),
    ] {
        println!("\n{ssd_name}:");
        print!("{:<14}", "Recall@10");
        for (name, _) in &ladder {
            print!("{name:>12}");
        }
        println!();
        let mut df_gain = Vec::new();
        let mut mpibc_gain = Vec::new();
        for recall in RECALLS {
            let nprobe = ReisSystem::nprobe_for_recall(profile.full_nlist, recall);
            let fraction = nprobe as f64 / profile.full_nlist as f64;
            let cpu_real = cpu.cpu_real(
                &profile,
                QUERY_BATCH,
                Some(nprobe),
                CpuPrecision::BinaryWithRerank,
            );
            print!("{recall:<14.2}");
            let mut qps_ladder = Vec::new();
            for (_, opts) in &ladder {
                let config = base_config.with_optimizations(*opts);
                // Without distance filtering every scanned embedding crosses
                // the channel, so the pass fraction degenerates to 1.0.
                let pass = if opts.distance_filtering {
                    calibration.pass_fraction
                } else {
                    1.0
                };
                let estimate = estimate_reis(
                    &profile,
                    &config,
                    SearchMode::Ivf {
                        nprobe_fraction: fraction,
                    },
                    pass,
                    K,
                );
                qps_ladder.push(estimate.qps);
                print!("{:>12.2}", report::normalized(estimate.qps, cpu_real.qps()));
            }
            println!();
            df_gain.push(qps_ladder[1] / qps_ladder[0]);
            mpibc_gain.push(qps_ladder[3] / qps_ladder[2]);
        }
        println!(
            "  DF speedup over NO-OPT: {:.1}x geomean (paper: 4.7x / 5.7x for SSD1 / SSD2); \
             MPIBC over DF+PL: {:.0}% (paper: 6% / 26%)",
            report::geomean(&df_gain),
            (report::geomean(&mpibc_gain) - 1.0) * 100.0
        );
    }
}
