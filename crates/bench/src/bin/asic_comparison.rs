//! Section 6.3.1: comparison of REIS against REIS-ASIC, an idealised design
//! that keeps conventional programming (so every scanned page must cross the
//! channel and pass controller ECC) but computes for free in an ASIC.

use reis_baseline::ReisAsicModel;
use reis_bench::calibration::calibrate;
use reis_bench::fullscale::{estimate_reis, full_scale_activity, SearchMode};
use reis_bench::report;
use reis_core::{PerfModel, ReisConfig, ReisSystem};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const RECALLS: [f64; 3] = [0.98, 0.94, 0.90];

fn main() {
    report::header(
        "REIS-ASIC comparison (Sec. 6.3.1)",
        "Slowdown of an ECC-in-the-controller ideal-ASIC design relative to REIS",
    );
    println!(
        "{:<14} {:<16} {:>14} {:>14}",
        "dataset", "configuration", "SSD1 slowdown", "SSD2 slowdown"
    );
    let mut slowdowns = Vec::new();
    for profile in DatasetProfile::main_evaluation() {
        let scaled = profile.clone().scaled(1_024).with_queries(8);
        let dataset = SyntheticDataset::generate(scaled, 91);
        let calibration = calibrate(&dataset, ReisConfig::ssd1().filter_threshold_fraction, K);
        for recall in RECALLS {
            let nprobe = ReisSystem::nprobe_for_recall(profile.full_nlist, recall);
            let fraction = nprobe as f64 / profile.full_nlist as f64;
            print!(
                "{:<14} {:<16}",
                profile.name,
                format!("IVF R@10={recall:.2}")
            );
            for config in [ReisConfig::ssd1(), ReisConfig::ssd2()] {
                let mode = SearchMode::Ivf {
                    nprobe_fraction: fraction,
                };
                let activity =
                    full_scale_activity(&profile, &config, mode, calibration.pass_fraction, K);
                let reis = estimate_reis(&profile, &config, mode, calibration.pass_fraction, K);
                let perf = PerfModel::new(config);
                let reis_scan = perf.scan(
                    activity.coarse_pages,
                    activity.coarse_entries,
                    activity.embedding_slot_bytes,
                ) + perf.scan(
                    activity.fine_pages,
                    activity.fine_entries,
                    activity.embedding_slot_bytes,
                );
                let shared_tail = reis.latency.saturating_sub(reis_scan);
                let asic = ReisAsicModel::new(config);
                let slowdown = asic.slowdown_vs_reis(&activity, reis_scan, shared_tail);
                print!(" {slowdown:>13.1}x");
                slowdowns.push(slowdown);
            }
            println!();
        }
    }
    println!(
        "\nGeometric-mean REIS-ASIC slowdown: {:.1}x (paper: 4.1x-5.0x for SSD-1 and 3.9x-6.5x \
         for SSD-2 across datasets and recall targets)",
        report::geomean(&slowdowns)
    );
}
