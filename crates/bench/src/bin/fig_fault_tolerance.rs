//! Fault-tolerant cluster serving: modelled QPS, tail latency and
//! availability versus injected leaf-failure rate, for replication
//! factors 1–3 — with an in-binary check that every full-coverage answer
//! is bit-identical to the no-fault single-device reference, and that the
//! retry/backoff machinery costs nothing on the healthy path.
//!
//! Two measurements:
//!
//! * **Failure sweep** — a 3-shard cluster at R ∈ {1, 2, 3} under seeded
//!   transient fault rates (fail-fast plus timeouts) and one permanent
//!   kill of leaf 0 a quarter of the way in. Replication absorbs the
//!   kill: at R ≥ 2 the shard fails over and coverage stays full, while
//!   at R = 1 the shard is lost and availability (the fraction of
//!   queries answered at full coverage) collapses — the answer degrades
//!   *explicitly*, never silently. Retries and failover penalties fold
//!   into the modelled fan-out latency, so p99 rises with the injected
//!   rate.
//! * **Retry overhead** — the same cluster run healthy twice: with no
//!   fault plan, and with a zero-rate plan plus the full retry/backoff/
//!   deadline machinery armed. The two runs must be bit-identical,
//!   modelled latencies included, so the computed overhead is exactly
//!   zero — the committed artifact gates it at ≤ 3%.
//!
//! Results are written to `BENCH_pr9.json` by default (this benchmark's
//! committed artifact); pass `--output PATH` (or `REIS_BENCH_OUT`) to
//! write elsewhere, and `--smoke` (or `REIS_BENCH_SMOKE=1`) for the fast
//! CI variant.

use reis_bench::report;
use reis_cluster::{ClusterSystem, FaultPlan, RetryPolicy};
use reis_core::{ReisConfig, ReisSystem, VectorDatabase};
use reis_nand::{Geometry, Nanos};

const DIM: usize = 16;
const K: usize = 10;
const NUM_SHARDS: usize = 3;
const FAULT_SEED: u64 = 0xFA17_0B5E;
/// Transient fail-fast rates swept, in parts per million of leaf calls;
/// each point also injects timeouts at half the fail rate.
const FAIL_RATES_PPM: [u32; 5] = [0, 10_000, 50_000, 100_000, 200_000];

/// One retry after a 50 µs backoff, 1 ms timeout deadline — the policy
/// the fault-tolerance property suite runs under.
fn retry() -> RetryPolicy {
    RetryPolicy::new(1, Nanos::from_micros(50), Nanos::from_millis(1))
}

/// Each leaf models one narrow flash package (2 channels × 2 dies ×
/// 2 planes of 4 KB pages) with REIS-SSD1 timing, as in the scale-out
/// benchmark: per-leaf scans must span many plane rounds for the
/// fan-out latency to carry signal.
fn leaf_config() -> ReisConfig {
    let mut config = ReisConfig::ssd1();
    config.ssd.name = "REIS-LEAF";
    config.ssd.geometry = Geometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 2,
        blocks_per_plane: 128,
        pages_per_block: 64,
        page_size_bytes: 4 * 1024,
        oob_size_bytes: 256,
    };
    config
}

struct RunShape {
    mode: &'static str,
    entries: usize,
    queries: usize,
}

fn shape() -> RunShape {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    if smoke {
        RunShape {
            mode: "smoke",
            entries: 8_192,
            queries: 16,
        }
    } else {
        RunShape {
            mode: "full",
            entries: 16_384,
            queries: 48,
        }
    }
}

fn vector_for(id: u32) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            // splitmix64-style mixing, as in the scale-out benchmark: a
            // plain multiplicative sequence would cluster every query's
            // neighbors in id space (→ on one shard).
            let mut x = (id as u64) << 32 | d as u64;
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x % 201) as f32 - 100.0
        })
        .collect()
}

fn doc_for(id: u32) -> Vec<u8> {
    format!("fault bench doc {id:06}").into_bytes()
}

/// `(ids, rerank-distance bits, document bytes)` — the full bit-identity
/// signature of one query's outcome.
type Signature = (Vec<usize>, Vec<u32>, Vec<Vec<u8>>);

fn cluster_signature(outcome: &reis_cluster::ClusterSearchOutcome) -> Signature {
    (
        outcome.results.iter().map(|n| n.id).collect(),
        outcome
            .results
            .iter()
            .map(|n| n.distance.to_bits())
            .collect(),
        outcome.documents.clone(),
    )
}

/// The modelled p99 over per-query fan-out latencies (nearest-rank).
fn p99_us(fanouts: &[Nanos]) -> f64 {
    let mut sorted: Vec<u64> = fanouts.iter().map(|n| n.as_nanos()).collect();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 - 1.0) * 0.99).round() as usize;
    sorted[idx] as f64 / 1e3
}

struct SweepPoint {
    replication: usize,
    fail_ppm: u32,
    timeout_ppm: u32,
    qps: f64,
    fanout_p99_us: f64,
    availability: f64,
    degraded: usize,
    down_leaves: usize,
}

fn main() {
    let shape = shape();
    report::header(
        "Fault-tolerant cluster serving",
        "Modelled QPS / p99 / availability vs injected leaf-failure rate, R = 1..3",
    );

    let entries = shape.entries;
    println!("Building {entries}-entry corpus ({} mode)…", shape.mode);
    let vectors: Vec<Vec<f32>> = (0..entries as u32).map(vector_for).collect();
    let documents: Vec<Vec<u8>> = (0..entries as u32).map(doc_for).collect();
    let queries: Vec<Vec<f32>> = (0..shape.queries as u32)
        .map(|q| vector_for(1_000_000 + q))
        .collect();
    let config = leaf_config();
    // The permanent kill of leaf 0 fires a quarter of the way through the
    // query stream: R = 1 loses shard 0 for the remaining three quarters,
    // R ≥ 2 fails over and never degrades because of it.
    let kill_call = (shape.queries / 4) as u64;

    // No-fault reference: the union corpus on one device. Full-coverage
    // cluster answers must match it bit for bit.
    let mut single = ReisSystem::new(config.with_adaptive_filtering(false));
    let single_db = single
        .deploy(&VectorDatabase::flat(&vectors, documents.clone()).expect("database"))
        .expect("single-device deploy");
    let reference: Vec<Signature> = queries
        .iter()
        .map(|q| {
            let outcome = single.search(single_db, q, K).expect("reference search");
            (
                outcome.result_ids(),
                outcome
                    .results
                    .iter()
                    .map(|n| n.distance.to_bits())
                    .collect(),
                outcome.documents.clone(),
            )
        })
        .collect();

    // --- Failure sweep: R × fail rate, kill of leaf 0 at kill_call. ------
    println!("\nFailure sweep ({NUM_SHARDS} shards, kill leaf 0 at call {kill_call}):");
    println!(
        "{:>3} {:>9} {:>14} {:>12} {:>13} {:>9} {:>6}",
        "R", "fail ppm", "modelled QPS", "p99 (us)", "availability", "degraded", "down"
    );
    let mut identical = true;
    let mut sweep: Vec<SweepPoint> = Vec::new();
    for replication in 1..=3usize {
        for (rate_idx, &fail_ppm) in FAIL_RATES_PPM.iter().enumerate() {
            let timeout_ppm = fail_ppm / 2;
            let seed = FAULT_SEED ^ ((replication as u64) << 32) ^ rate_idx as u64;
            let plan = FaultPlan::new(seed, fail_ppm, timeout_ppm).with_kill(0, kill_call);
            let mut cluster = ClusterSystem::new_replicated(config, NUM_SHARDS, replication)
                .expect("cluster")
                .with_fault_plan(Some(plan))
                .with_retry_policy(retry());
            cluster
                .deploy_flat(&vectors, &documents)
                .expect("sharded deploy");

            let mut total_latency = Nanos::ZERO;
            let mut fanouts = Vec::with_capacity(queries.len());
            let mut covered_queries = 0usize;
            for (query, signature) in queries.iter().zip(&reference) {
                let outcome = cluster.search(query, K).expect("faulted search");
                if outcome.is_full_coverage() {
                    covered_queries += 1;
                    identical &= cluster_signature(&outcome) == *signature;
                }
                total_latency += outcome.latency;
                fanouts.push(outcome.fanout_latency);
            }
            let qps = queries.len() as f64 / total_latency.as_secs_f64().max(1e-12);
            let availability = covered_queries as f64 / queries.len() as f64;
            let point = SweepPoint {
                replication,
                fail_ppm,
                timeout_ppm,
                qps,
                fanout_p99_us: p99_us(&fanouts),
                availability,
                degraded: queries.len() - covered_queries,
                down_leaves: cluster.down_leaves().len(),
            };
            println!(
                "{replication:>3} {fail_ppm:>9} {qps:>14.0} {:>12.1} {availability:>13.3} \
                 {:>9} {:>6}",
                point.fanout_p99_us, point.degraded, point.down_leaves
            );
            sweep.push(point);
        }
    }
    assert!(
        identical,
        "a full-coverage answer diverged from the no-fault reference — \
         failover broke bit-identity; the artifact must not ship"
    );
    // Replication must buy availability: at every rate, R = 3 answers at
    // least as many queries at full coverage as R = 1 — and strictly more
    // at rate 0, where the kill is the only fault and failover absorbs it.
    for rate_idx in 0..FAIL_RATES_PPM.len() {
        let r1 = sweep[rate_idx].availability;
        let r3 = sweep[2 * FAIL_RATES_PPM.len() + rate_idx].availability;
        assert!(
            r3 >= r1,
            "availability must not drop with replication \
             (rate {}: R=3 {r3:.3} vs R=1 {r1:.3})",
            FAIL_RATES_PPM[rate_idx]
        );
    }
    assert!(
        sweep[0].availability < 1.0,
        "the R = 1 kill must cost availability"
    );
    assert!(
        (sweep[2 * FAIL_RATES_PPM.len()].availability - 1.0).abs() < f64::EPSILON,
        "R = 3 must absorb the kill at rate 0"
    );
    println!("All full-coverage answers bit-identical to the no-fault reference.");

    // --- Retry overhead: the healthy path must be free. ------------------
    // Same cluster, same queries, run twice: no plan at all versus a
    // zero-rate plan with the whole retry/backoff machinery armed.
    let run_healthy = |plan: Option<FaultPlan>| {
        let mut cluster = ClusterSystem::new_replicated(config, NUM_SHARDS, 2)
            .expect("cluster")
            .with_fault_plan(plan)
            .with_retry_policy(retry());
        cluster
            .deploy_flat(&vectors, &documents)
            .expect("sharded deploy");
        let mut total = Nanos::ZERO;
        let mut signatures = Vec::with_capacity(queries.len());
        for query in &queries {
            let outcome = cluster.search(query, K).expect("healthy search");
            total += outcome.latency;
            signatures.push(cluster_signature(&outcome));
        }
        (total, signatures)
    };
    let (bare_total, bare_signatures) = run_healthy(None);
    let (guarded_total, guarded_signatures) = run_healthy(Some(FaultPlan::healthy()));
    assert_eq!(
        bare_signatures, guarded_signatures,
        "a zero-rate fault plan changed results — the guard must be inert"
    );
    let healthy_qps = queries.len() as f64 / bare_total.as_secs_f64().max(1e-12);
    let guarded_qps = queries.len() as f64 / guarded_total.as_secs_f64().max(1e-12);
    let overhead_pct = (healthy_qps - guarded_qps) / healthy_qps * 100.0;
    println!(
        "\nRetry overhead (healthy path, R = 2): {healthy_qps:.0} QPS bare, \
         {guarded_qps:.0} QPS guarded ({overhead_pct:.2}% overhead)"
    );
    assert!(
        overhead_pct <= 3.0,
        "healthy-path retry overhead {overhead_pct:.2}% exceeds the 3% budget"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "{{ \"replication\": {}, \"fail_ppm\": {}, \"timeout_ppm\": {}, \
                 \"kill_call\": {kill_call}, \"modelled_qps\": {:.1}, \
                 \"fanout_p99_us\": {:.2}, \"availability\": {:.4}, \
                 \"degraded_queries\": {}, \"down_leaves\": {} }}",
                p.replication,
                p.fail_ppm,
                p.timeout_ppm,
                p.qps,
                p.fanout_p99_us,
                p.availability,
                p.degraded,
                p.down_leaves
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{}\",\n  \
         \"dataset\": {{ \"entries\": {entries}, \"dim\": {DIM}, \
         \"queries\": {}, \"k\": {K}, \"num_shards\": {NUM_SHARDS} }},\n  \
         \"results_identical_when_covered\": {identical},\n  \
         \"retry_overhead\": {{ \"healthy_qps\": {healthy_qps:.1}, \
         \"guarded_qps\": {guarded_qps:.1}, \"overhead_pct\": {overhead_pct:.3} }},\n  \
         \"failure_sweep\": [\n    {}\n  ]\n}}\n",
        shape.mode,
        queries.len(),
        sweep_json.join(",\n    "),
    );
    let path = report::output_path("BENCH_pr9.json");
    std::fs::write(&path, json).expect("write benchmark artifact");
    println!("\nWrote {path}");
}
