//! Multi-device scale-out: modelled QPS versus leaf count and straggler
//! hedging — with an in-binary check that the cluster answers every query
//! bit-identically to a single device holding the union corpus.
//!
//! Two measurements:
//!
//! * **Leaf sweep** — one logical corpus sharded over 1→8 leaves; each
//!   leaf scans a proportionally smaller shard, so with uniform per-leaf
//!   service time the fan-out latency (the max over leaves) shrinks and
//!   modelled QPS scales near-linearly in the leaf count. The sweep
//!   reports per-point QPS and the speedup over one leaf, and the
//!   identity check (results, documents, transferred-entry sums against
//!   a single device) gates the artifact at every point.
//! * **Hedging** — the same cluster under a seeded per-leaf skew model
//!   (heavy-tailed jitter), swept over hedging deadlines: no hedging,
//!   then progressively tighter deadlines that duplicate straggling leaf
//!   requests. Mean fan-out latency drops as stragglers get hedged while
//!   results stay bit-identical — the merge is schedule-independent.
//!
//! Results are written to `BENCH_pr7.json` by default (this benchmark's
//! committed artifact); pass `--output PATH` (or `REIS_BENCH_OUT`) to
//! write elsewhere, and `--smoke` (or `REIS_BENCH_SMOKE=1`) for the fast
//! CI variant.

use reis_bench::report;
use reis_cluster::{ClusterSystem, HedgePolicy, LatencyModel};
use reis_core::{HistogramId, ReisConfig, ReisSystem, VectorDatabase};
use reis_nand::{Geometry, Nanos};

const DIM: usize = 16;
const K: usize = 10;
const MAX_LEAVES: usize = 8;
const SKEW_SEED: u64 = 0x5CA1_E0D7;
/// Straggler model: 100 µs base service skew plus up to 3 ms of seeded
/// per-(leaf, query) jitter — the heavy tail the hedging policy exists
/// to cut. A hedge beats its primary exactly when the primary's drawn
/// delay exceeds the deadline plus the hedge's delay (the scan compute
/// cancels), so the jitter must dwarf the deadlines for hedging to pay.
const SKEW_BASE_NS: u64 = 100_000;
const SKEW_JITTER_NS: u64 = 3_000_000;

/// Each leaf models one narrow flash package (2 channels × 2 dies ×
/// 2 planes of 4 KB pages) with REIS-SSD1 timing — the scale-out story
/// is many small devices versus one, so the per-leaf scan must span many
/// plane rounds for sharding to have anything to parallelize. On the
/// 256-plane SSD1 geometry any corpus this benchmark could build
/// functionally fits in a single round and every sweep point would
/// degenerate to the same fixed-cost latency.
fn leaf_config() -> ReisConfig {
    let mut config = ReisConfig::ssd1();
    config.ssd.name = "REIS-LEAF";
    config.ssd.geometry = Geometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 2,
        blocks_per_plane: 128,
        pages_per_block: 64,
        page_size_bytes: 4 * 1024,
        oob_size_bytes: 256,
    };
    config
}

struct RunShape {
    mode: &'static str,
    entries: usize,
    queries: usize,
}

fn shape() -> RunShape {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("REIS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    if smoke {
        RunShape {
            mode: "smoke",
            entries: 8_192,
            queries: 4,
        }
    } else {
        RunShape {
            mode: "full",
            entries: 32_768,
            queries: 16,
        }
    }
}

fn vector_for(id: u32) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            // splitmix64-style mixing: a plain multiplicative sequence is
            // low-discrepancy, not random, and makes every query's nearest
            // neighbors cluster in id space (→ on one leaf).
            let mut x = (id as u64) << 32 | d as u64;
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x % 201) as f32 - 100.0
        })
        .collect()
}

fn doc_for(id: u32) -> Vec<u8> {
    format!("scaleout bench doc {id:06}").into_bytes()
}

/// `(ids, rerank-distance bits, document bytes)` — the full bit-identity
/// signature of one query's outcome.
type Signature = (Vec<usize>, Vec<u32>, Vec<Vec<u8>>);

fn cluster_signature(outcome: &reis_cluster::ClusterSearchOutcome) -> Signature {
    (
        outcome.results.iter().map(|n| n.id).collect(),
        outcome
            .results
            .iter()
            .map(|n| n.distance.to_bits())
            .collect(),
        outcome.documents.clone(),
    )
}

fn main() {
    let shape = shape();
    report::header(
        "Multi-device scale-out",
        "Modelled QPS vs leaf count, straggler hedging, exact merge check",
    );

    let entries = shape.entries;
    println!("Building {entries}-entry corpus ({} mode)…", shape.mode);
    let vectors: Vec<Vec<f32>> = (0..entries as u32).map(vector_for).collect();
    let documents: Vec<Vec<u8>> = (0..entries as u32).map(doc_for).collect();
    let queries: Vec<Vec<f32>> = (0..shape.queries as u32)
        .map(|q| vector_for(1_000_000 + q))
        .collect();
    let config = leaf_config();

    // Single-device reference: the same corpus on one device. Leaf scans
    // pin the static distance threshold, so the reference must too for the
    // transferred-entry comparison to be exact.
    let mut single = ReisSystem::new(config.with_adaptive_filtering(false));
    let single_db = single
        .deploy(&VectorDatabase::flat(&vectors, documents.clone()).expect("database"))
        .expect("single-device deploy");
    let reference: Vec<(Signature, usize)> = queries
        .iter()
        .map(|q| {
            let outcome = single.search(single_db, q, K).expect("reference search");
            (
                (
                    outcome.result_ids(),
                    outcome
                        .results
                        .iter()
                        .map(|n| n.distance.to_bits())
                        .collect(),
                    outcome.documents.clone(),
                ),
                outcome.activity.fine_entries,
            )
        })
        .collect();

    // --- Leaf sweep: QPS vs leaf count under a uniform skew model. -------
    println!("\nLeaf sweep (uniform per-leaf service time):");
    println!(
        "{:>7} {:>14} {:>12} {:>10} {:>10}",
        "leaves", "modelled QPS", "fanout (us)", "doc (us)", "speedup"
    );
    let mut identical = true;
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    for leaves in 1..=MAX_LEAVES {
        let mut cluster = ClusterSystem::new(config, leaves).expect("cluster");
        cluster
            .deploy_flat(&vectors, &documents)
            .expect("sharded deploy");
        let mut total_latency = Nanos::ZERO;
        let mut fanout = Nanos::ZERO;
        let mut doc = Nanos::ZERO;
        for (query, (signature, fine_entries)) in queries.iter().zip(&reference) {
            let outcome = cluster.search(query, K).expect("cluster search");
            identical &= cluster_signature(&outcome) == *signature
                && outcome.activity.activity.fine_entries == *fine_entries;
            total_latency += outcome.latency;
            fanout += outcome.fanout_latency;
            doc += outcome.document_latency;
        }
        let qps = queries.len() as f64 / total_latency.as_secs_f64().max(1e-12);
        let per_query = 1e6 / queries.len() as f64;
        sweep.push((leaves, qps));
        println!(
            "{leaves:>7} {qps:>14.0} {:>12.1} {:>10.1} {:>9.2}x",
            fanout.as_secs_f64() * per_query,
            doc.as_secs_f64() * per_query,
            qps / sweep[0].1
        );
    }
    assert!(
        identical,
        "cluster results diverged from the single device — the exact \
         scatter–gather merge is broken; the artifact must not ship"
    );
    let speedup_at_max = sweep[MAX_LEAVES - 1].1 / sweep[0].1;
    assert!(
        speedup_at_max > MAX_LEAVES as f64 * 0.5,
        "modelled QPS must scale near-linearly in leaf count \
         (got {speedup_at_max:.2}x at {MAX_LEAVES} leaves)"
    );
    println!("All {MAX_LEAVES} sweep points bit-identical to the single device.");

    // --- Hedging sweep: tail tolerance under a skewed schedule. ----------
    // A fresh cluster per policy keeps the skew model's query sequence
    // aligned, so every policy faces exactly the same straggler draws.
    println!("\nHedging sweep ({} leaves, seeded skew):", 4);
    println!(
        "{:>13} {:>16} {:>9} {:>9} {:>9} {:>8}",
        "deadline", "mean fanout (us)", "p50 (us)", "p95 (us)", "p99 (us)", "hedges"
    );
    let deadlines: [Option<u64>; 4] = [None, Some(1_600_000), Some(800_000), Some(400_000)];
    let mut hedging_rows: Vec<(String, f64, [f64; 3], usize)> = Vec::new();
    let mut hedged_identical = true;
    for deadline_ns in deadlines {
        let mut cluster = ClusterSystem::new(config, 4)
            .expect("cluster")
            .with_latency_model(LatencyModel::new(SKEW_SEED, SKEW_BASE_NS, SKEW_JITTER_NS))
            .with_hedging(deadline_ns.map(|ns| HedgePolicy::new(Nanos::from_nanos(ns))));
        cluster
            .deploy_flat(&vectors, &documents)
            .expect("sharded deploy");
        // Per-leaf completion times land in the aggregator's telemetry
        // histogram; each policy gets a fresh cluster, so no delta needed.
        cluster.enable_telemetry();
        let mut fanout = Nanos::ZERO;
        let mut hedges = 0usize;
        for (query, (signature, _)) in queries.iter().zip(&reference) {
            let outcome = cluster.search(query, K).expect("hedged search");
            hedged_identical &= cluster_signature(&outcome) == *signature;
            fanout += outcome.fanout_latency;
            hedges += outcome.hedges_launched;
        }
        let mean_us = fanout.as_secs_f64() * 1e6 / queries.len() as f64;
        let completion = cluster.telemetry().histogram(HistogramId::LeafCompletionNs);
        let completion_us = [0.50, 0.95, 0.99].map(|q| completion.quantile(q) / 1e3);
        let label = match deadline_ns {
            None => "none".to_string(),
            Some(ns) => format!("{} us", ns / 1_000),
        };
        println!(
            "{label:>13} {mean_us:>16.1} {:>9.1} {:>9.1} {:>9.1} {hedges:>8}",
            completion_us[0], completion_us[1], completion_us[2]
        );
        hedging_rows.push((label, mean_us, completion_us, hedges));
    }
    assert!(
        hedged_identical,
        "hedged schedules changed results — the merge must be \
         schedule-independent; the artifact must not ship"
    );
    let (unhedged_us, tightest_us) = (hedging_rows[0].1, hedging_rows.last().unwrap().1);
    assert!(
        tightest_us < unhedged_us,
        "the tightest hedging deadline must cut mean fan-out latency \
         ({tightest_us:.1} us vs {unhedged_us:.1} us unhedged)"
    );
    println!(
        "Tightest deadline cuts mean fan-out {:.1}% below unhedged; \
         results identical under every schedule.",
        (1.0 - tightest_us / unhedged_us) * 100.0
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(leaves, qps)| {
            format!(
                "{{ \"leaves\": {leaves}, \"modelled_qps\": {qps:.1}, \
                 \"speedup_vs_one_leaf\": {:.3} }}",
                qps / sweep[0].1
            )
        })
        .collect();
    let hedging_json: Vec<String> = hedging_rows
        .iter()
        .map(|(label, mean_us, completion_us, hedges)| {
            format!(
                "{{ \"deadline\": \"{label}\", \"mean_fanout_us\": {mean_us:.2}, \
                 \"completion_p50_us\": {:.2}, \"completion_p95_us\": {:.2}, \
                 \"completion_p99_us\": {:.2}, \"hedges_launched\": {hedges} }}",
                completion_us[0], completion_us[1], completion_us[2]
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"available_cores\": {cores},\n  \"mode\": \"{}\",\n  \
         \"dataset\": {{ \"entries\": {entries}, \"dim\": {DIM}, \
         \"queries\": {}, \"k\": {K} }},\n  \
         \"results_identical_to_single_device\": {identical},\n  \
         \"leaf_sweep\": [\n    {}\n  ],\n  \
         \"hedging\": {{ \"leaves\": 4, \"skew_base_ns\": {SKEW_BASE_NS}, \
         \"skew_jitter_ns\": {SKEW_JITTER_NS}, \
         \"results_invariant\": {hedged_identical}, \
         \"policies\": [\n    {}\n  ] }}\n}}\n",
        shape.mode,
        queries.len(),
        sweep_json.join(",\n    "),
        hedging_json.join(",\n    "),
    );
    let path = report::output_path("BENCH_pr7.json");
    std::fs::write(&path, json).expect("write benchmark artifact");
    println!("\nWrote {path}");
}
