//! Section 4.3.3: distance-filtering threshold study.
//!
//! For HotpotQA, NQ, FEVER and Quora profiles, measures (on scaled synthetic
//! data) the fraction of database embeddings that survive the in-die distance
//! filter at several threshold fractions, and the recall that remains when
//! only surviving embeddings can be retrieved.

use reis_ann::metrics::recall_at_k;
use reis_ann::quantize::BinaryQuantizer;
use reis_bench::report;
use reis_workloads::{DatasetProfile, GroundTruth, SyntheticDataset};

const K: usize = 10;
const THRESHOLDS: [f64; 4] = [0.40, 0.44, 0.47, 0.50];

fn main() {
    report::header(
        "Distance-filter study (Sec. 4.3.3)",
        "Surviving fraction and retained Recall@10 per filter threshold",
    );
    println!(
        "{:<12} {:>12} {:>18} {:>18}",
        "dataset", "threshold", "pass fraction", "retained recall@10"
    );
    for profile in [
        DatasetProfile::hotpotqa(),
        DatasetProfile::nq(),
        DatasetProfile::fever(),
        DatasetProfile::quora(),
    ] {
        let scaled = profile.clone().scaled(1_024).with_queries(8);
        let dataset = SyntheticDataset::generate(scaled, 7);
        let truth = GroundTruth::compute(&dataset, K).expect("ground truth");
        let quantizer = BinaryQuantizer::fit(dataset.vectors()).expect("quantizer");
        let binary = quantizer.quantize_all(dataset.vectors()).expect("quantize");
        for threshold_fraction in THRESHOLDS {
            let threshold = (threshold_fraction * profile.dim as f64).round() as u32;
            let mut passed = 0usize;
            let mut total = 0usize;
            let mut recall = 0.0;
            for (qi, query) in dataset.queries().iter().enumerate() {
                let q = quantizer.quantize(query).expect("quantize query");
                let surviving: Vec<usize> = binary
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| q.hamming_distance(b) <= threshold)
                    .map(|(id, _)| id)
                    .collect();
                passed += surviving.len();
                total += binary.len();
                recall += recall_at_k(&surviving, truth.neighbors(qi), K);
            }
            println!(
                "{:<12} {:>12.2} {:>17.1}% {:>18.3}",
                profile.name,
                threshold_fraction,
                passed as f64 / total as f64 * 100.0,
                recall / dataset.queries().len() as f64
            );
        }
    }
    println!(
        "\nPaper reference: a single threshold filters out ~99% of HotpotQA documents while \
         retaining the k=10 most relevant ones, and the best threshold varies by only ~1.6% \
         across datasets of very different sizes."
    );
}
