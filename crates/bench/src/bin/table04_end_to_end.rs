//! Table 4: end-to-end RAG latency breakdown for REIS (SSD1) versus the
//! CPU-based pipeline with binary quantization, on HotpotQA and NQ.

use reis_baseline::{CpuPrecision, CpuSystem};
use reis_bench::calibration::calibrate;
use reis_bench::fullscale::{estimate_reis, SearchMode};
use reis_bench::report;
use reis_core::{ReisConfig, ReisSystem};
use reis_rag::{RagPipeline, RagStage};
use reis_workloads::{DatasetProfile, SyntheticDataset};

const K: usize = 10;
const TARGET_RECALL: f64 = 0.94;

fn main() {
    report::header(
        "Table 4",
        "End-to-end RAG latency breakdown: REIS-SSD1 vs CPU with binary quantization",
    );
    let pipeline = RagPipeline::default();
    let cpu = CpuSystem::default();

    for profile in [DatasetProfile::hotpotqa(), DatasetProfile::nq()] {
        let scaled = profile.clone().scaled(1_024).with_queries(8);
        let dataset = SyntheticDataset::generate(scaled, 77);
        let calibration = calibrate(&dataset, ReisConfig::ssd1().filter_threshold_fraction, K);
        let nprobe = ReisSystem::nprobe_for_recall(profile.full_nlist, TARGET_RECALL);
        let fraction = nprobe as f64 / profile.full_nlist as f64;

        let reis = estimate_reis(
            &profile,
            &ReisConfig::ssd1(),
            SearchMode::Ivf {
                nprobe_fraction: fraction,
            },
            calibration.pass_fraction,
            K,
        );
        let reis_breakdown = pipeline.reis_breakdown(reis.latency.as_secs_f64());
        let cpu_breakdown = pipeline.cpu_breakdown(&cpu, &profile, CpuPrecision::BinaryWithRerank);

        println!(
            "\n{} (latency contribution, % of end-to-end time):",
            profile.name
        );
        println!("{:<30} {:>12} {:>12}", "stage", "REIS", "CPU+BQ");
        for stage in RagStage::all() {
            let reis_pct = reis_breakdown.fraction(stage) * 100.0;
            let cpu_pct = cpu_breakdown.fraction(stage) * 100.0;
            if stage == RagStage::DatasetLoading {
                println!("{:<30} {:>12} {:>11.1}%", stage.label(), "N/A", cpu_pct);
            } else {
                println!(
                    "{:<30} {:>11.2}% {:>11.1}%",
                    stage.label(),
                    reis_pct,
                    cpu_pct
                );
            }
        }
        println!(
            "{:<30} {:>11.2}s {:>11.2}s",
            "End-to-end latency",
            reis_breakdown.total(),
            cpu_breakdown.total()
        );
        println!(
            "Speedup of REIS over CPU+BQ: {:.2}x; retrieval share shrinks from {:.1}% to {:.2}%",
            cpu_breakdown.total() / reis_breakdown.total(),
            cpu_breakdown.retrieval_fraction() * 100.0,
            reis_breakdown.retrieval_fraction() * 100.0,
        );
    }
    println!(
        "\nPaper reference: REIS cuts the loading+search share from 20-69% to 0.02-0.15% and \
         generation (~92%) becomes the new bottleneck; end-to-end speedups are 1.25x (HotpotQA) \
         and 3.24x (NQ-class loading-bound pipelines)."
    );
}
