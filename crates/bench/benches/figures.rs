//! Criterion benchmarks of whole in-storage queries on the functional
//! simulator (scaled datasets), covering the configurations the figures
//! sweep: brute force vs IVF, SSD1 vs SSD2, and the optimization ladder of
//! the sensitivity study.

use criterion::{criterion_group, criterion_main, Criterion};

use reis_core::{Optimizations, ReisConfig, ReisSystem, VectorDatabase};
use reis_workloads::{DatasetProfile, SyntheticDataset};

fn setup(config: ReisConfig, entries: usize, nlist: usize) -> (ReisSystem, u32, Vec<Vec<f32>>) {
    let dataset = SyntheticDataset::generate(
        DatasetProfile::hotpotqa().scaled(entries).with_queries(4),
        17,
    );
    let db = VectorDatabase::ivf(dataset.vectors(), dataset.documents_owned(), nlist)
        .expect("database construction");
    let mut system = ReisSystem::new(config);
    let id = system.deploy(&db).expect("deployment");
    (system, id, dataset.queries().to_vec())
}

fn bench_reis_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("reis_functional_query");
    group.sample_size(10);

    let (mut system, id, queries) = setup(ReisConfig::ssd1(), 1_024, 16);
    group.bench_function("ssd1_ivf_nprobe2", |b| {
        b.iter(|| {
            system
                .ivf_search_with_nprobe(id, &queries[0], 10, 2)
                .unwrap()
        })
    });
    group.bench_function("ssd1_brute_force", |b| {
        b.iter(|| system.search(id, &queries[0], 10).unwrap())
    });

    let (mut ssd2, id2, queries2) = setup(ReisConfig::ssd2(), 1_024, 16);
    group.bench_function("ssd2_ivf_nprobe2", |b| {
        b.iter(|| {
            ssd2.ivf_search_with_nprobe(id2, &queries2[0], 10, 2)
                .unwrap()
        })
    });

    let (mut no_opt, id3, queries3) = setup(
        ReisConfig::ssd1().with_optimizations(Optimizations::none()),
        1_024,
        16,
    );
    group.bench_function("ssd1_no_opt_ivf_nprobe2", |b| {
        b.iter(|| {
            no_opt
                .ivf_search_with_nprobe(id3, &queries3[0], 10, 2)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(figures, bench_reis_query);
criterion_main!(figures);
