//! Criterion micro-benchmarks of the kernels REIS executes: the in-plane
//! XOR + fail-bit-count distance computation, the quickselect / quicksort
//! selection kernels, binary quantization, and the IVF search variants.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use reis_ann::ivf::{IvfBqIndex, IvfConfig, IvfIndex};
use reis_ann::quantize::BinaryQuantizer;
use reis_ann::topk::{quickselect_by_key, select_k_nearest, Neighbor};
use reis_nand::array::FlashDevice;
use reis_nand::cell::ProgramScheme;
use reis_nand::geometry::{Geometry, PageAddr};
use reis_nand::peripheral::{FailBitCounter, XorLogic};
use reis_workloads::{DatasetProfile, SyntheticDataset};

use reis_bench::seed_reference as bytewise;

fn bench_in_plane_distance(c: &mut Criterion) {
    // A full 16 KB page of 128 binary 1024-d embeddings against one query.
    let page: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
    let query: Vec<u8> = (0..128).map(|i| (i * 7 % 256) as u8).collect();
    let broadcast: Vec<u8> = query.iter().cycle().take(16 * 1024).copied().collect();
    c.bench_function("in_plane_xor_popcount_page", |b| {
        b.iter(|| {
            let xored = XorLogic::xor(&page, &broadcast);
            FailBitCounter::count_per_chunk(&xored, 128)
        })
    });
    // The same sweep with the byte-wise seed kernels: the ratio of these two
    // is the word-kernel speedup reported in BENCH_pr1.json.
    c.bench_function("in_plane_xor_popcount_page_bytewise", |b| {
        b.iter(|| {
            let xored = bytewise::xor(&page, &broadcast);
            bytewise::count_per_chunk(&xored, 128)
        })
    });
    // Allocation-free fused path the engine actually runs: XOR into a reused
    // buffer, count into a reused buffer.
    let mut xor_buf = Vec::new();
    let mut counts = Vec::new();
    c.bench_function("in_plane_xor_popcount_page_reused_buffers", |b| {
        b.iter(|| {
            XorLogic::xor_into(&page, &broadcast, &mut xor_buf);
            FailBitCounter::count_per_chunk_into(&xor_buf, 128, &mut counts);
            counts.len()
        })
    });
    // The multi-query fused kernel of the batch executor: one pass over the
    // page words scores 8 resident queries (compare against 8× the
    // single-query number above).
    let queries: Vec<Vec<u8>> = (0..8)
        .map(|q| (0..128).map(|i| ((i * 7 + q * 13) % 256) as u8).collect())
        .collect();
    let query_refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
    let mut fused_counts = Vec::new();
    c.bench_function("in_plane_fused_8query_page", |b| {
        b.iter(|| {
            FailBitCounter::count_fused_into(&page, 128, &query_refs, &mut fused_counts);
            fused_counts.len()
        })
    });
}

fn bench_hamming_kernels(c: &mut Criterion) {
    use reis_ann::vector::{hamming_bytes, BinaryVector};
    let a: Vec<u8> = (0..128).map(|i| (i * 31 + 7) as u8).collect();
    let b_: Vec<u8> = (0..128).map(|i| (i * 17 + 3) as u8).collect();
    let va = BinaryVector::from_packed(1024, a.clone());
    let vb = BinaryVector::from_packed(1024, b_.clone());
    c.bench_function("hamming_1024d_word", |bch| {
        bch.iter(|| hamming_bytes(&a, &b_))
    });
    c.bench_function("hamming_1024d_bytewise", |bch| {
        bch.iter(|| bytewise::hamming(&a, &b_))
    });
    c.bench_function("hamming_1024d_binary_vector", |bch| {
        bch.iter(|| va.hamming_distance(&vb))
    });
}

fn bench_flash_device_scan(c: &mut Criterion) {
    let mut device = FlashDevice::new(Geometry::tiny(), Default::default());
    let addr = PageAddr::new(0, 0, 0, 0, 0);
    let page: Vec<u8> = (0..4096).map(|i| (i % 200) as u8).collect();
    device
        .program_page(addr, &page, &[], ProgramScheme::EnhancedSlc)
        .unwrap();
    device.input_broadcast(0, 0, &[0x55u8; 64], true).unwrap();
    c.bench_function("flash_device_sense_xor_count", |b| {
        b.iter(|| {
            device.sense_page(addr).unwrap();
            device.xor_latches(addr.plane_addr()).unwrap();
            device.count_fail_bits(addr.plane_addr(), 64).unwrap()
        })
    });
}

fn bench_selection_kernels(c: &mut Criterion) {
    let candidates: Vec<Neighbor> = (0..100_000)
        .map(|i| Neighbor::new(i, ((i * 2654435761) % 1_000_003) as f32))
        .collect();
    c.bench_function("quickselect_100k_keep_100", |b| {
        b.iter_batched(
            || candidates.clone(),
            |mut work| quickselect_by_key(&mut work, 100, |n| n.distance),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("select_k_nearest_100k_top10", |b| {
        b.iter(|| select_k_nearest(&candidates, 10))
    });
}

fn bench_quantization_and_ivf(c: &mut Criterion) {
    let dataset =
        SyntheticDataset::generate(DatasetProfile::hotpotqa().scaled(1_024).with_queries(4), 3);
    let quantizer = BinaryQuantizer::fit(dataset.vectors()).unwrap();
    c.bench_function("binary_quantize_1024d", |b| {
        b.iter(|| quantizer.quantize(&dataset.vectors()[0]).unwrap())
    });

    let ivf = IvfIndex::build(dataset.vectors().to_vec(), IvfConfig::new(32)).unwrap();
    let bq = IvfBqIndex::from_ivf(&ivf).unwrap();
    let query = &dataset.queries()[0];
    c.bench_function("ivf_float_search_nprobe4", |b| {
        b.iter(|| ivf.search(query, 10, 4).unwrap())
    });
    c.bench_function("ivf_bq_rerank_search_nprobe4", |b| {
        b.iter(|| bq.search(query, 10, 4, 10).unwrap())
    });
}

criterion_group!(
    kernels,
    bench_in_plane_distance,
    bench_hamming_kernels,
    bench_flash_device_scan,
    bench_selection_kernels,
    bench_quantization_and_ivf
);
criterion_main!(kernels);
