//! Property-based tests for the NAND flash device simulator.

use proptest::prelude::*;
use reis_nand::array::FlashDevice;
use reis_nand::cell::ProgramScheme;
use reis_nand::geometry::{Geometry, PageAddr};
use reis_nand::oob::{OobEntry, OobLayout};
use reis_nand::peripheral::{FailBitCounter, PassFailChecker, XorLogic};
use reis_nand::timing::{Nanos, TimingParams};

proptest! {
    /// Programming a page and reading it back through the ESP-SLC path must
    /// return exactly the programmed bytes (zero-BER guarantee).
    #[test]
    fn esp_program_read_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
        let mut dev = FlashDevice::new(Geometry::tiny(), TimingParams::default());
        let addr = PageAddr::new(0, 0, 0, 0, 0);
        dev.program_page(addr, &data, &[], ProgramScheme::EnhancedSlc).unwrap();
        let readout = dev.read_page(addr).unwrap();
        prop_assert_eq!(&readout.data[..data.len()], &data[..]);
        prop_assert_eq!(readout.bit_errors, 0);
        // Unwritten tail of the page reads back as zeroes.
        prop_assert!(readout.data[data.len()..].iter().all(|&b| b == 0));
    }

    /// The in-plane XOR + fail-bit-counter flow must compute the same Hamming
    /// distances as a software popcount over the XOR of query and embeddings.
    #[test]
    fn in_plane_distance_matches_software_hamming(
        seed_bytes in proptest::collection::vec(any::<u8>(), 32),
        query in proptest::collection::vec(any::<u8>(), 32),
    ) {
        let mut dev = FlashDevice::new(Geometry::tiny(), TimingParams::default());
        let addr = PageAddr::new(1, 0, 1, 0, 0);
        let emb_bytes = 32usize;
        let n_embeddings = 4096 / emb_bytes;
        // Derive each embedding from the seed bytes by rotation so embeddings differ.
        let mut page = Vec::with_capacity(4096);
        let mut expected = Vec::with_capacity(n_embeddings);
        for i in 0..n_embeddings {
            let emb: Vec<u8> = (0..emb_bytes)
                .map(|j| seed_bytes[(i + j) % emb_bytes].rotate_left((i % 8) as u32))
                .collect();
            let dist: u32 = emb
                .iter()
                .zip(query.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            expected.push(dist);
            page.extend_from_slice(&emb);
        }
        dev.program_page(addr, &page, &[], ProgramScheme::EnhancedSlc).unwrap();
        dev.input_broadcast(addr.channel, addr.die, &query, true).unwrap();
        dev.sense_page(addr).unwrap();
        dev.xor_latches(addr.plane_addr()).unwrap();
        let (counts, _) = dev.count_fail_bits(addr.plane_addr(), emb_bytes).unwrap();
        prop_assert_eq!(counts, expected);
    }

    /// The fail-bit counter's chunked counts always sum to the total count.
    #[test]
    fn chunk_counts_sum_to_total(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        chunk in 1usize..256,
    ) {
        let per_chunk = FailBitCounter::count_per_chunk(&data, chunk);
        let total: u64 = per_chunk.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(total, FailBitCounter::count_total(&data));
    }

    /// Pass/fail filtering never passes an entry above the threshold and
    /// never drops one at or below it.
    #[test]
    fn pass_fail_is_exact_threshold_partition(
        counts in proptest::collection::vec(any::<u32>(), 0..512),
        threshold in any::<u32>(),
    ) {
        let passes = PassFailChecker::passes(&counts, threshold);
        prop_assert_eq!(passes.len(), counts.len());
        for (c, p) in counts.iter().zip(passes.iter()) {
            prop_assert_eq!(*p, *c <= threshold);
        }
        prop_assert_eq!(
            PassFailChecker::pass_count(&counts, threshold),
            passes.iter().filter(|&&p| p).count()
        );
    }

    /// The word-level popcount/XOR kernels and their buffer-reusing `_into`
    /// variants match the byte-wise reference for arbitrary lengths
    /// (including odd tails) and chunk sizes.
    #[test]
    fn word_kernels_and_into_variants_match_reference(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        chunk in 1usize..200,
        threshold in any::<u32>(),
    ) {
        // Popcount per chunk against a bit-by-bit reference.
        let reference: Vec<u32> = data
            .chunks(chunk)
            .map(|c| c.iter().map(|b| b.count_ones()).sum())
            .collect();
        prop_assert_eq!(&FailBitCounter::count_per_chunk(&data, chunk), &reference);
        let mut reused = vec![0xFFFF_FFFFu32; 3];
        FailBitCounter::count_per_chunk_into(&data, chunk, &mut reused);
        prop_assert_eq!(&reused, &reference);

        // Word-level XOR against the byte-wise reference, both variants.
        let other: Vec<u8> = data.iter().map(|b| b.rotate_left(3)).collect();
        let xor_ref: Vec<u8> = data.iter().zip(&other).map(|(a, b)| a ^ b).collect();
        prop_assert_eq!(&XorLogic::xor(&data, &other), &xor_ref);
        let mut xor_out = vec![0u8; 7];
        XorLogic::xor_into(&data, &other, &mut xor_out);
        prop_assert_eq!(&xor_out, &xor_ref);

        // The fused filter agrees with the Vec<bool> checker.
        let flags = PassFailChecker::passes(&reference, threshold);
        let mut fused = Vec::new();
        let passed = PassFailChecker::filter_passing(&reference, threshold, |slot, count| {
            fused.push((slot, count));
        });
        prop_assert_eq!(passed, flags.iter().filter(|&&p| p).count());
        for (slot, count) in fused {
            prop_assert!(flags[slot]);
            prop_assert_eq!(count, reference[slot]);
        }
    }

    /// XOR is an involution: applying it twice restores the original buffer.
    #[test]
    fn xor_is_involution(
        a in proptest::collection::vec(any::<u8>(), 1..1024),
        b_seed in any::<u8>(),
    ) {
        let b: Vec<u8> = a.iter().map(|x| x.wrapping_add(b_seed)).collect();
        let once = XorLogic::xor(&a, &b);
        let twice = XorLogic::xor(&once, &b);
        prop_assert_eq!(twice, a);
    }

    /// OOB entry packing and unpacking round-trips arbitrary linkage data.
    #[test]
    fn oob_layout_roundtrip(
        entries in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u8>()).prop_map(|(dadr, radr, tag)| OobEntry { dadr, radr, tag }),
            1..64,
        )
    ) {
        let layout = OobLayout::new(2208, entries.len()).unwrap();
        let packed = layout.pack(&entries).unwrap();
        let unpacked = layout.unpack(&packed).unwrap();
        prop_assert_eq!(unpacked, entries);
    }

    /// Page addresses survive a round trip through the dense page index for
    /// both reference geometries.
    #[test]
    fn page_index_roundtrip_reference_geometries(index in 0usize..100_000) {
        for geom in [Geometry::reis_ssd1(), Geometry::reis_ssd2()] {
            let idx = index % geom.total_pages();
            let addr = geom.page_at(idx);
            prop_assert_eq!(geom.page_index(addr), idx);
        }
    }

    /// Simulated durations compose sensibly: a sum of parts is never shorter
    /// than its longest part (saturating arithmetic, no overflow wrap).
    #[test]
    fn nanos_sum_bounds(parts in proptest::collection::vec(0u64..1_000_000_000_000, 1..20)) {
        let durations: Vec<Nanos> = parts.iter().copied().map(Nanos::from_nanos).collect();
        let total: Nanos = durations.iter().copied().sum();
        let max = durations.iter().copied().fold(Nanos::ZERO, Nanos::max);
        prop_assert!(total >= max);
    }
}
