//! Latency model of NAND flash operations.
//!
//! The simulator is *functional plus analytic-timing*: data really moves
//! between pages and latches, while elapsed time is accumulated from the
//! parameters in [`TimingParams`]. The default parameters follow Table 3 of
//! the REIS paper and the Flash-Cosmos characterization it builds on
//! (e.g. a 22.5 µs ESP-SLC read).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use crate::cell::{CellMode, ProgramScheme};

/// A simulated duration in nanoseconds.
///
/// `Nanos` is a transparent wrapper over `u64` with saturating arithmetic so
/// long simulations never overflow silently.
///
/// # Examples
///
/// ```
/// use reis_nand::timing::Nanos;
///
/// let t = Nanos::from_micros(22) + Nanos::from_nanos(500);
/// assert_eq!(t.as_nanos(), 22_500);
/// assert!((t.as_secs_f64() - 22.5e-6).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Create a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Create a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Create a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Create a duration from seconds expressed as a float.
    ///
    /// Negative or non-finite inputs are clamped to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Nanos(0);
        }
        Nanos((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// The duration in microseconds (truncating).
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs.max(1))
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Latency and bandwidth parameters of the flash array.
///
/// Defaults correspond to the REIS-SSD1 configuration (Table 3 of the paper);
/// [`TimingParams::reis_ssd2`] adjusts the channel bandwidth for the
/// performance-oriented device. Channel count and plane count live in
/// [`crate::geometry::Geometry`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Read latency (tR) of a page programmed with Enhanced SLC Programming.
    pub t_read_esp_slc: Nanos,
    /// Read latency (tR) of a page programmed in normal SLC mode.
    pub t_read_slc: Nanos,
    /// Read latency (tR) of a page programmed in MLC mode.
    pub t_read_mlc: Nanos,
    /// Read latency (tR) of a page programmed in TLC mode.
    pub t_read_tlc: Nanos,
    /// Read latency (tR) of a page programmed in QLC mode.
    pub t_read_qlc: Nanos,
    /// Program latency (tPROG) of an SLC / ESP-SLC page.
    pub t_prog_slc: Nanos,
    /// Program latency (tPROG) of a TLC page.
    pub t_prog_tlc: Nanos,
    /// Block erase latency (tBERS).
    pub t_erase: Nanos,
    /// Per-command decode/issue overhead inside the die control FSM.
    pub t_command_overhead: Nanos,
    /// Latch-to-latch bitwise operation latency (e.g. XOR of a full page
    /// between the cache latch and the sensing latch).
    pub t_latch_xor: Nanos,
    /// Latency of the on-die fail-bit counter scanning one full page held in
    /// a latch (used by REIS as a popcount engine).
    pub t_fail_bit_count: Nanos,
    /// Latency of the pass/fail comparator checking counted values against a
    /// threshold (used by REIS for distance filtering).
    pub t_pass_fail_check: Nanos,
    /// Bandwidth of one flash channel, in bytes per second.
    pub channel_bandwidth_bps: f64,
    /// Bandwidth of the die I/O interface feeding the page buffers, in bytes
    /// per second (used for Input Broadcasting of the query embedding).
    pub die_io_bandwidth_bps: f64,
}

impl TimingParams {
    /// Timing parameters of the cost-oriented **REIS-SSD1** configuration:
    /// 22.5 µs ESP-SLC tR and 1.2 GB/s per-channel bandwidth.
    pub fn reis_ssd1() -> Self {
        TimingParams {
            t_read_esp_slc: Nanos::from_nanos(22_500),
            t_read_slc: Nanos::from_micros(25),
            t_read_mlc: Nanos::from_micros(55),
            t_read_tlc: Nanos::from_micros(78),
            t_read_qlc: Nanos::from_micros(140),
            t_prog_slc: Nanos::from_micros(200),
            t_prog_tlc: Nanos::from_micros(660),
            t_erase: Nanos::from_millis(3),
            t_command_overhead: Nanos::from_nanos(500),
            t_latch_xor: Nanos::from_micros(2),
            t_fail_bit_count: Nanos::from_micros(3),
            t_pass_fail_check: Nanos::from_micros(1),
            channel_bandwidth_bps: 1.2e9,
            die_io_bandwidth_bps: 1.2e9,
        }
    }

    /// Timing parameters of the performance-oriented **REIS-SSD2**
    /// configuration: identical flash timings but 2.0 GB/s channels.
    pub fn reis_ssd2() -> Self {
        TimingParams {
            channel_bandwidth_bps: 2.0e9,
            die_io_bandwidth_bps: 2.0e9,
            ..TimingParams::reis_ssd1()
        }
    }

    /// Read latency for a page programmed with the given scheme.
    pub fn read_latency(&self, scheme: ProgramScheme) -> Nanos {
        match scheme {
            ProgramScheme::EnhancedSlc => self.t_read_esp_slc,
            ProgramScheme::Ispp(CellMode::Slc) => self.t_read_slc,
            ProgramScheme::Ispp(CellMode::Mlc) => self.t_read_mlc,
            ProgramScheme::Ispp(CellMode::Tlc) => self.t_read_tlc,
            ProgramScheme::Ispp(CellMode::Qlc) => self.t_read_qlc,
        }
    }

    /// Program latency for the given scheme.
    pub fn program_latency(&self, scheme: ProgramScheme) -> Nanos {
        match scheme.cell_mode() {
            CellMode::Slc => self.t_prog_slc,
            CellMode::Mlc => self.t_prog_tlc * 0.6,
            CellMode::Tlc => self.t_prog_tlc,
            CellMode::Qlc => self.t_prog_tlc * 2.0,
        }
    }

    /// Time to move `bytes` across one flash channel.
    pub fn channel_transfer(&self, bytes: usize) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / self.channel_bandwidth_bps)
    }

    /// Time to move `bytes` across the die I/O interface into a page buffer.
    pub fn die_io_transfer(&self, bytes: usize) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / self.die_io_bandwidth_bps)
    }

    /// Latency of broadcasting a query embedding of `query_bytes` bytes into
    /// the cache latches of `planes` planes of one die (Input Broadcasting,
    /// Sec. 4.3.2).
    ///
    /// With Multi-Plane IBC (`multi_plane = true`) all planes of the die
    /// latch the broadcast simultaneously, so the cost is paid once; without
    /// it the transfer is repeated per plane.
    pub fn input_broadcast(&self, query_bytes: usize, planes: usize, multi_plane: bool) -> Nanos {
        let single = self.die_io_transfer(query_bytes) + self.t_command_overhead;
        if multi_plane {
            single
        } else {
            single * planes.max(1) as u64
        }
    }

    /// Latency of one in-plane distance computation step over a sensed page:
    /// XOR between cache and sensing latch, fail-bit count, and (optionally)
    /// the pass/fail threshold check used for distance filtering.
    pub fn in_plane_distance(&self, with_filter_check: bool) -> Nanos {
        let base = self.t_latch_xor + self.t_fail_bit_count;
        if with_filter_check {
            base + self.t_pass_fail_check
        } else {
            base
        }
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::reis_ssd1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos::from_micros(10);
        let b = Nanos::from_nanos(500);
        assert_eq!((a + b).as_nanos(), 10_500);
        assert_eq!((a - b).as_nanos(), 9_500);
        assert_eq!((b - a).as_nanos(), 0, "subtraction saturates at zero");
        assert_eq!((a * 3).as_nanos(), 30_000);
        assert_eq!((a / 4).as_nanos(), 2_500);
        assert_eq!(
            (a / 0).as_nanos(),
            10_000,
            "division by zero clamps divisor to one"
        );
        let total: Nanos = vec![a, b, a].into_iter().sum();
        assert_eq!(total.as_nanos(), 20_500);
    }

    #[test]
    fn nanos_display_scales_units() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(22).to_string(), "22.000us");
        assert_eq!(Nanos::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Nanos::from_secs_f64(1.5).to_string(), "1.500s");
    }

    #[test]
    fn from_secs_clamps_invalid_values() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::INFINITY), Nanos::ZERO);
    }

    #[test]
    fn esp_read_matches_paper_parameter() {
        let t = TimingParams::reis_ssd1();
        assert_eq!(
            t.read_latency(ProgramScheme::EnhancedSlc).as_nanos(),
            22_500
        );
        assert!(t.read_latency(ProgramScheme::Ispp(CellMode::Tlc)) > t.t_read_esp_slc);
    }

    #[test]
    fn ssd2_has_faster_channels_same_flash() {
        let t1 = TimingParams::reis_ssd1();
        let t2 = TimingParams::reis_ssd2();
        assert!(t2.channel_bandwidth_bps > t1.channel_bandwidth_bps);
        assert_eq!(t1.t_read_esp_slc, t2.t_read_esp_slc);
        assert!(t2.channel_transfer(16384) < t1.channel_transfer(16384));
    }

    #[test]
    fn multi_plane_ibc_amortizes_broadcast() {
        let t = TimingParams::reis_ssd2();
        let without = t.input_broadcast(16 * 1024, 4, false);
        let with = t.input_broadcast(16 * 1024, 4, true);
        assert!(without > with);
        // Without MPIBC the cost scales with the number of planes.
        assert_eq!(without.as_nanos(), with.as_nanos() * 4);
    }

    #[test]
    fn filter_check_adds_latency() {
        let t = TimingParams::default();
        assert!(t.in_plane_distance(true) > t.in_plane_distance(false));
    }

    #[test]
    fn program_latency_grows_with_density() {
        let t = TimingParams::default();
        let slc = t.program_latency(ProgramScheme::EnhancedSlc);
        let tlc = t.program_latency(ProgramScheme::Ispp(CellMode::Tlc));
        let qlc = t.program_latency(ProgramScheme::Ispp(CellMode::Qlc));
        assert!(slc < tlc && tlc < qlc);
    }
}
