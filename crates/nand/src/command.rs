//! NAND flash command set, including the REIS extensions of Table 2.
//!
//! The SSD controller normally drives flash dies with READ / PROGRAM / ERASE
//! commands. REIS extends the die control logic with four commands — `IBC`,
//! `XOR`, `GEN_DIST` and `RD_TTL` — that expose the existing peripheral
//! logic (latches, XOR, fail-bit counter) for in-plane distance computation.
//! This module provides an explicit command enum plus a dispatcher so tests
//! and higher layers can exercise the exact command protocol rather than
//! calling device methods ad hoc.

use serde::{Deserialize, Serialize};

use crate::array::FlashDevice;
use crate::cell::ProgramScheme;
use crate::error::Result;
use crate::geometry::{BlockAddr, PageAddr, PlaneAddr};
use crate::timing::Nanos;

/// One command issued by a flash controller to a flash die.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlashCommand {
    /// Conventional page read, transferring data and OOB to the controller.
    Read {
        /// Page to read.
        addr: PageAddr,
    },
    /// Sense a page into the plane's sensing latch without a channel
    /// transfer (the first half of an in-plane distance computation).
    Sense {
        /// Page to sense.
        addr: PageAddr,
    },
    /// Conventional page program.
    Program {
        /// Page to program.
        addr: PageAddr,
        /// User data.
        data: Vec<u8>,
        /// OOB metadata.
        oob: Vec<u8>,
        /// Programming scheme (ESP-SLC for the embedding partition, ISPP-TLC
        /// for documents).
        scheme: ProgramScheme,
    },
    /// Conventional block erase.
    Erase {
        /// Block to erase.
        block: BlockAddr,
    },
    /// `IBC Q_EMB`: broadcast a copy of the query embedding into the cache
    /// latch of every plane of a die (Input Broadcasting).
    Ibc {
        /// Channel of the target die.
        channel: usize,
        /// Die within the channel.
        die: usize,
        /// Query embedding bytes.
        query: Vec<u8>,
        /// Whether all planes latch the broadcast simultaneously (MPIBC).
        multi_plane: bool,
    },
    /// `XOR ADR_P`: XOR the cache latch into the sensing latch of one plane,
    /// leaving the result in the data latch.
    Xor {
        /// Target plane.
        plane: PlaneAddr,
    },
    /// `GEN_DIST EADR`: run the fail-bit counter over the data latch,
    /// producing one Hamming distance per embedding-sized chunk.
    GenDist {
        /// Target plane.
        plane: PlaneAddr,
        /// Embedding size in bytes (the chunk granularity).
        embedding_bytes: usize,
    },
    /// `RD_TTL EADR`: transfer Temporal-Top-List entries for the embeddings
    /// that pass the distance filter from the die to the controller DRAM.
    RdTtl {
        /// Target plane.
        plane: PlaneAddr,
        /// Per-embedding distances previously produced by `GEN_DIST`.
        distances: Vec<u32>,
        /// Distance-filter threshold; only entries at or below it are
        /// transferred. Use `u32::MAX` to disable filtering.
        threshold: u32,
        /// Size of one TTL entry on the wire, in bytes.
        entry_bytes: usize,
    },
}

/// Response returned by [`execute`] for each command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandResponse {
    /// Data read from a page.
    Page {
        /// User data (after any error injection).
        data: Vec<u8>,
        /// OOB bytes.
        oob: Vec<u8>,
        /// Injected raw bit errors.
        bit_errors: usize,
    },
    /// The command completed and only produced a latency.
    Done,
    /// Per-chunk distances produced by `GEN_DIST`.
    Distances(Vec<u32>),
    /// Indices (mini-page offsets) of entries that passed the filter and
    /// were transferred by `RD_TTL`.
    TtlEntries(Vec<usize>),
}

/// Outcome of executing one command: its response plus its simulated latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandOutcome {
    /// The functional result of the command.
    pub response: CommandResponse,
    /// The simulated latency of the command.
    pub latency: Nanos,
}

/// Execute one flash command against a device, mirroring the die control
/// FSM's dispatch of the extended command set.
///
/// # Errors
///
/// Propagates the underlying device error (invalid address, unprogrammed
/// page, empty latch, oversized payload, …) for the failing command.
///
/// # Examples
///
/// ```
/// use reis_nand::array::FlashDevice;
/// use reis_nand::cell::ProgramScheme;
/// use reis_nand::command::{execute, CommandResponse, FlashCommand};
/// use reis_nand::geometry::{Geometry, PageAddr};
///
/// # fn main() -> Result<(), reis_nand::error::NandError> {
/// let mut dev = FlashDevice::new(Geometry::tiny(), Default::default());
/// let addr = PageAddr::new(0, 0, 0, 0, 0);
/// execute(&mut dev, FlashCommand::Program {
///     addr,
///     data: vec![0xF0; 4096],
///     oob: vec![],
///     scheme: ProgramScheme::EnhancedSlc,
/// })?;
/// let outcome = execute(&mut dev, FlashCommand::Read { addr })?;
/// assert!(matches!(outcome.response, CommandResponse::Page { .. }));
/// # Ok(())
/// # }
/// ```
pub fn execute(device: &mut FlashDevice, command: FlashCommand) -> Result<CommandOutcome> {
    match command {
        FlashCommand::Read { addr } => {
            let readout = device.read_page(addr)?;
            Ok(CommandOutcome {
                response: CommandResponse::Page {
                    data: readout.data,
                    oob: readout.oob,
                    bit_errors: readout.bit_errors,
                },
                latency: readout.latency,
            })
        }
        FlashCommand::Sense { addr } => {
            let latency = device.sense_page(addr)?;
            Ok(CommandOutcome {
                response: CommandResponse::Done,
                latency,
            })
        }
        FlashCommand::Program {
            addr,
            data,
            oob,
            scheme,
        } => {
            let latency = device.program_page(addr, &data, &oob, scheme)?;
            Ok(CommandOutcome {
                response: CommandResponse::Done,
                latency,
            })
        }
        FlashCommand::Erase { block } => {
            let latency = device.erase_block(block)?;
            Ok(CommandOutcome {
                response: CommandResponse::Done,
                latency,
            })
        }
        FlashCommand::Ibc {
            channel,
            die,
            query,
            multi_plane,
        } => {
            let latency = device.input_broadcast(channel, die, &query, multi_plane)?;
            Ok(CommandOutcome {
                response: CommandResponse::Done,
                latency,
            })
        }
        FlashCommand::Xor { plane } => {
            let latency = device.xor_latches(plane)?;
            Ok(CommandOutcome {
                response: CommandResponse::Done,
                latency,
            })
        }
        FlashCommand::GenDist {
            plane,
            embedding_bytes,
        } => {
            let (counts, latency) = device.count_fail_bits(plane, embedding_bytes)?;
            Ok(CommandOutcome {
                response: CommandResponse::Distances(counts),
                latency,
            })
        }
        FlashCommand::RdTtl {
            plane: _,
            distances,
            threshold,
            entry_bytes,
        } => {
            let (passes, check_latency) = device.pass_fail_check(&distances, threshold);
            let selected: Vec<usize> = passes
                .iter()
                .enumerate()
                .filter(|(_, &p)| p)
                .map(|(i, _)| i)
                .collect();
            let transfer = device.transfer_to_controller(selected.len() * entry_bytes);
            Ok(CommandOutcome {
                response: CommandResponse::TtlEntries(selected),
                latency: check_latency + transfer,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn setup() -> (FlashDevice, PageAddr) {
        let mut dev = FlashDevice::new(Geometry::tiny(), Default::default());
        let addr = PageAddr::new(0, 0, 1, 0, 0);
        // Fill the page with 64-byte embeddings of increasing fill patterns.
        let mut data = Vec::with_capacity(4096);
        for i in 0..(4096 / 64) {
            data.extend(std::iter::repeat_n(i as u8, 64));
        }
        execute(
            &mut dev,
            FlashCommand::Program {
                addr,
                data,
                oob: vec![],
                scheme: ProgramScheme::EnhancedSlc,
            },
        )
        .unwrap();
        (dev, addr)
    }

    #[test]
    fn reis_command_sequence_produces_distances_and_ttl_entries() {
        let (mut dev, addr) = setup();
        execute(
            &mut dev,
            FlashCommand::Ibc {
                channel: 0,
                die: 0,
                query: vec![0u8; 64],
                multi_plane: true,
            },
        )
        .unwrap();
        execute(&mut dev, FlashCommand::Sense { addr }).unwrap();
        execute(
            &mut dev,
            FlashCommand::Xor {
                plane: addr.plane_addr(),
            },
        )
        .unwrap();
        let outcome = execute(
            &mut dev,
            FlashCommand::GenDist {
                plane: addr.plane_addr(),
                embedding_bytes: 64,
            },
        )
        .unwrap();
        let distances = match outcome.response {
            CommandResponse::Distances(d) => d,
            other => panic!("expected distances, got {other:?}"),
        };
        assert_eq!(distances.len(), 64);
        assert_eq!(
            distances[0], 0,
            "embedding 0 is identical to the all-zero query"
        );

        let outcome = execute(
            &mut dev,
            FlashCommand::RdTtl {
                plane: addr.plane_addr(),
                distances: distances.clone(),
                threshold: 64,
                entry_bytes: 160,
            },
        )
        .unwrap();
        let entries = match outcome.response {
            CommandResponse::TtlEntries(e) => e,
            other => panic!("expected TTL entries, got {other:?}"),
        };
        // Only embeddings whose fill pattern has at most one set bit (64 bytes
        // x 1 bit = 64) pass the filter.
        assert!(entries.contains(&0));
        assert!(entries.iter().all(|&i| (i as u8).count_ones() <= 1));
        assert!(outcome.latency > Nanos::ZERO);
    }

    #[test]
    fn xor_without_sense_is_rejected() {
        let (mut dev, addr) = setup();
        execute(
            &mut dev,
            FlashCommand::Ibc {
                channel: 0,
                die: 0,
                query: vec![0u8; 64],
                multi_plane: true,
            },
        )
        .unwrap();
        assert!(execute(
            &mut dev,
            FlashCommand::Xor {
                plane: addr.plane_addr()
            }
        )
        .is_err());
    }

    #[test]
    fn erase_and_read_via_commands() {
        let (mut dev, addr) = setup();
        let read = execute(&mut dev, FlashCommand::Read { addr }).unwrap();
        assert!(matches!(read.response, CommandResponse::Page { .. }));
        execute(
            &mut dev,
            FlashCommand::Erase {
                block: addr.block_addr(),
            },
        )
        .unwrap();
        assert!(execute(&mut dev, FlashCommand::Read { addr }).is_err());
    }

    #[test]
    fn rd_ttl_with_disabled_filter_transfers_everything() {
        let (mut dev, _addr) = setup();
        let distances = vec![5u32, 1000, 3];
        let outcome = execute(
            &mut dev,
            FlashCommand::RdTtl {
                plane: PlaneAddr::new(0, 0, 0),
                distances,
                threshold: u32::MAX,
                entry_bytes: 16,
            },
        )
        .unwrap();
        assert_eq!(outcome.response, CommandResponse::TtlEntries(vec![0, 1, 2]));
    }
}
