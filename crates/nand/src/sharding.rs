//! Geometry-aware planning of intra-query scan shards.
//!
//! REIS's latency win comes from flash-internal parallelism *within* one
//! query: every channel, die and plane scans a different slice of the
//! embedding store concurrently (Sec. 4.3.4). The simulator models that by
//! splitting the merged page ranges of one scan into **scan shards**, each
//! covering a disjoint subset of the device's channel×die *scan units*, and
//! running the shards on worker threads.
//!
//! The planner in this module only decides *which pages go to which shard*;
//! executing a shard (and merging the shard-local candidate lists back into
//! one Temporal Top List) is the engine's job in `reis-core`. Keeping the
//! plan geometry-aware — a shard owns whole channel/die units, never a slice
//! of one — mirrors how the hardware would partition the work: a die can
//! only scan pages it physically stores, and two shards never contend for
//! the same die's page buffer.
//!
//! # Examples
//!
//! ```
//! use reis_nand::geometry::{Geometry, PlaneAddr};
//! use reis_nand::sharding::ScanShardPlan;
//!
//! let geometry = Geometry::tiny(); // 2 channels x 2 dies
//! assert_eq!(ScanShardPlan::scan_units(&geometry), 4);
//!
//! // Pages 0..8 striped round-robin over the 4 channel/die units.
//! let plan = ScanShardPlan::build::<()>(&geometry, 2, &[(0, 8)], |offset| {
//!     Ok(PlaneAddr::new(offset % 2, (offset / 2) % 2, 0))
//! })
//! .unwrap();
//! assert_eq!(plan.shard_count(), 2);
//! assert_eq!(plan.planned_pages(), 8);
//! // Every page lands in exactly one shard.
//! let per_shard: Vec<usize> = plan.shards().iter().map(|s| s.page_count()).collect();
//! assert_eq!(per_shard.iter().sum::<usize>(), 8);
//! ```

use crate::geometry::{Geometry, PlaneAddr};

/// The pages one scan worker is responsible for, as run-length-encoded
/// half-open `(start, end)` ranges of page offsets (in the same offset space
/// the caller planned over, e.g. offsets into a striped flash region).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanShard {
    ranges: Vec<(usize, usize)>,
    pages: usize,
}

impl ScanShard {
    /// The half-open page-offset ranges of this shard, in ascending order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Number of pages assigned to this shard.
    pub fn page_count(&self) -> usize {
        self.pages
    }

    /// Whether the shard received no pages (possible when the scan touches
    /// fewer channel/die units than there are shards).
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Append one page offset, extending the last range when contiguous.
    /// Offsets must be pushed in strictly ascending order.
    fn push_offset(&mut self, offset: usize) {
        if let Some(last) = self.ranges.last_mut() {
            if last.1 == offset {
                last.1 = offset + 1;
                self.pages += 1;
                return;
            }
        }
        self.ranges.push((offset, offset + 1));
        self.pages += 1;
    }
}

/// A complete shard assignment for one scan: every page of the input ranges
/// appears in exactly one shard, and each shard covers a disjoint set of
/// channel×die units.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanShardPlan {
    shards: Vec<ScanShard>,
}

impl ScanShardPlan {
    /// Number of independent scan units the device offers: one per
    /// channel×die pair. Planes of one die share a page buffer and a die-I/O
    /// bus, so they belong to the same unit.
    pub fn scan_units(geometry: &Geometry) -> usize {
        geometry.channels * geometry.dies_per_channel
    }

    /// Build a shard plan for the pages of `ranges` (half-open, ascending,
    /// non-overlapping — e.g. the merged page ranges of a fine scan).
    ///
    /// `plane_of` maps a page offset to the plane that physically stores it;
    /// the planner assigns each page to shard `unit % shard_count` where
    /// `unit` is the page's channel×die index. Under parallelism-first
    /// striping consecutive offsets rotate through the units, so the shards
    /// come out balanced to within one unit's worth of pages.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `plane_of` (typically an
    /// out-of-bounds region offset).
    pub fn build<E>(
        geometry: &Geometry,
        shard_count: usize,
        ranges: &[(usize, usize)],
        mut plane_of: impl FnMut(usize) -> Result<PlaneAddr, E>,
    ) -> Result<ScanShardPlan, E> {
        let shard_count = shard_count.max(1);
        let mut shards = vec![ScanShard::default(); shard_count];
        for &(start, end) in ranges {
            for offset in start..end {
                let plane = plane_of(offset)?;
                let unit = plane.channel * geometry.dies_per_channel + plane.die;
                shards[unit % shard_count].push_offset(offset);
            }
        }
        Ok(ScanShardPlan { shards })
    }

    /// The planned shards (some may be empty).
    pub fn shards(&self) -> &[ScanShard] {
        &self.shards
    }

    /// Number of shards in the plan, including empty ones.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total pages across all shards.
    pub fn planned_pages(&self) -> usize {
        self.shards.iter().map(|s| s.pages).sum()
    }

    /// Pages of the largest shard — the critical path of a sharded scan.
    pub fn max_shard_pages(&self) -> usize {
        self.shards.iter().map(|s| s.pages).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Striping used by the tests: offsets rotate channel-first, then die,
    /// matching the SSD allocator's parallelism-first page order.
    fn striped_plane(geometry: &Geometry, offset: usize) -> PlaneAddr {
        let channel = offset % geometry.channels;
        let rest = offset / geometry.channels;
        let die = rest % geometry.dies_per_channel;
        PlaneAddr::new(channel, die, 0)
    }

    #[test]
    fn every_page_lands_in_exactly_one_shard() {
        let geometry = Geometry::tiny();
        let ranges = [(0usize, 13usize), (20, 27)];
        for shard_count in 1..=8 {
            let plan = ScanShardPlan::build::<()>(&geometry, shard_count, &ranges, |o| {
                Ok(striped_plane(&geometry, o))
            })
            .unwrap();
            assert_eq!(plan.shard_count(), shard_count);
            let mut seen: Vec<usize> = plan
                .shards()
                .iter()
                .flat_map(|s| s.ranges().iter().flat_map(|&(a, b)| a..b))
                .collect();
            seen.sort_unstable();
            let expected: Vec<usize> = ranges.iter().flat_map(|&(a, b)| a..b).collect();
            assert_eq!(seen, expected, "{shard_count} shards");
            assert_eq!(plan.planned_pages(), expected.len());
        }
    }

    #[test]
    fn shards_cover_disjoint_channel_die_units() {
        let geometry = Geometry::tiny(); // 4 units
        let plan = ScanShardPlan::build::<()>(&geometry, 2, &[(0, 32)], |o| {
            Ok(striped_plane(&geometry, o))
        })
        .unwrap();
        let units_of = |shard: &ScanShard| -> Vec<usize> {
            let mut units: Vec<usize> = shard
                .ranges()
                .iter()
                .flat_map(|&(a, b)| a..b)
                .map(|o| {
                    let p = striped_plane(&geometry, o);
                    p.channel * geometry.dies_per_channel + p.die
                })
                .collect();
            units.sort_unstable();
            units.dedup();
            units
        };
        let a = units_of(&plan.shards()[0]);
        let b = units_of(&plan.shards()[1]);
        assert!(
            a.iter().all(|u| !b.contains(u)),
            "units overlap: {a:?} {b:?}"
        );
        assert_eq!(a.len() + b.len(), ScanShardPlan::scan_units(&geometry));
    }

    #[test]
    fn striped_scans_balance_to_within_one_unit() {
        let geometry = Geometry::reis_ssd1(); // 128 units
        let pages = 1024usize;
        for shard_count in [2usize, 4, 8] {
            let plan = ScanShardPlan::build::<()>(&geometry, shard_count, &[(0, pages)], |o| {
                Ok(striped_plane(&geometry, o))
            })
            .unwrap();
            let min = plan.shards().iter().map(|s| s.page_count()).min().unwrap();
            assert_eq!(plan.max_shard_pages(), min, "{shard_count} shards");
            assert_eq!(plan.max_shard_pages(), pages / shard_count);
        }
    }

    #[test]
    fn contiguous_offsets_on_one_unit_run_length_encode() {
        let geometry = Geometry {
            channels: 1,
            dies_per_channel: 1,
            ..Geometry::tiny()
        };
        // Single unit: everything goes to shard 0 as one merged range.
        let plan = ScanShardPlan::build::<()>(&geometry, 4, &[(3, 9)], |o| {
            Ok(striped_plane(&geometry, o))
        })
        .unwrap();
        assert_eq!(plan.shards()[0].ranges(), &[(3, 9)]);
        assert!(plan.shards()[1].is_empty());
        assert_eq!(plan.max_shard_pages(), 6);
    }

    #[test]
    fn plane_of_errors_propagate() {
        let geometry = Geometry::tiny();
        let result = ScanShardPlan::build(&geometry, 2, &[(0, 4)], |o| {
            if o == 2 {
                Err("bad offset")
            } else {
                Ok(striped_plane(&geometry, o))
            }
        });
        assert_eq!(result.unwrap_err(), "bad offset");
    }
}
