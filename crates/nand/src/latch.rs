//! Per-plane page buffer and its latches.
//!
//! Every plane owns a page buffer made of several latches (Sec. 2.3 of the
//! paper): the *sensing latch* receives data sensed from the flash array
//! during a read, the *cache latch* allows the next read to overlap with
//! transferring the previous page out, and one or more *data latches* are
//! used when programming multi-bit cells or, in REIS, to hold the result of
//! the in-plane XOR between the query embedding and the database embeddings.

use serde::{Deserialize, Serialize};

use crate::error::{NandError, Result};
use crate::geometry::PlaneAddr;
use crate::peripheral::xor_bytes_into;

/// Identifies one of the latches inside a page buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Latch {
    /// The sensing latch, filled by a page read.
    Sensing,
    /// The data latch, used for programming and as the XOR destination.
    Data,
    /// The cache latch, used for read-page-cache mode and for holding the
    /// broadcast query embedding.
    Cache,
}

impl Latch {
    fn name(&self) -> &'static str {
        match self {
            Latch::Sensing => "sensing",
            Latch::Data => "data",
            Latch::Cache => "cache",
        }
    }
}

/// The page buffer of one plane: sensing, data and cache latches plus the
/// out-of-band bytes of the most recently sensed page.
///
/// # Examples
///
/// ```
/// use reis_nand::latch::PageBuffer;
/// use reis_nand::geometry::PlaneAddr;
///
/// let mut buf = PageBuffer::new(PlaneAddr::new(0, 0, 0), 4096);
/// buf.broadcast_into_cache(&[0xAB; 128]).unwrap();
/// buf.load_sensing(vec![0xCD; 4096], vec![0; 64]);
/// buf.xor_cache_into_data().unwrap();
/// assert_eq!(buf.data().unwrap()[0], 0xAB ^ 0xCD);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageBuffer {
    plane: PlaneAddr,
    page_size: usize,
    sensing: Option<Vec<u8>>,
    data: Option<Vec<u8>>,
    cache: Option<Vec<u8>>,
    oob: Option<Vec<u8>>,
}

impl PageBuffer {
    /// Create an empty page buffer for the plane at `plane` with pages of
    /// `page_size` bytes.
    pub fn new(plane: PlaneAddr, page_size: usize) -> Self {
        PageBuffer {
            plane,
            page_size,
            sensing: None,
            data: None,
            cache: None,
            oob: None,
        }
    }

    /// The plane this buffer belongs to.
    pub fn plane(&self) -> PlaneAddr {
        self.plane
    }

    /// The page size this buffer was created for.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Load sensed page data (and its OOB bytes) into the sensing latch.
    ///
    /// This models the array-to-latch sensing step of a page read; any
    /// previous sensing-latch contents are overwritten.
    pub fn load_sensing(&mut self, data: Vec<u8>, oob: Vec<u8>) {
        debug_assert_eq!(data.len(), self.page_size);
        self.sensing = Some(data);
        self.oob = Some(oob);
    }

    /// Copy sensed page data (and its OOB bytes) into the sensing latch,
    /// reusing the latch's existing buffers. This is the scan hot path: a
    /// multi-page scan re-senses into the same plane buffer without
    /// allocating per page.
    pub fn load_sensing_copy(&mut self, data: &[u8], oob: &[u8]) {
        debug_assert_eq!(data.len(), self.page_size);
        let sensing = self.sensing.get_or_insert_with(Vec::new);
        sensing.clear();
        sensing.extend_from_slice(data);
        let oob_buf = self.oob.get_or_insert_with(Vec::new);
        oob_buf.clear();
        oob_buf.extend_from_slice(oob);
    }

    /// Mutable view of the sensing latch (used by the device to inject read
    /// errors in place after [`PageBuffer::load_sensing_copy`]).
    pub fn sensing_mut(&mut self) -> Option<&mut [u8]> {
        self.sensing.as_deref_mut()
    }

    /// Contents of the sensing latch, if a page has been sensed.
    pub fn sensing(&self) -> Option<&[u8]> {
        self.sensing.as_deref()
    }

    /// Contents of the data latch, if any operation has filled it.
    pub fn data(&self) -> Option<&[u8]> {
        self.data.as_deref()
    }

    /// Contents of the cache latch, if any operation has filled it.
    pub fn cache(&self) -> Option<&[u8]> {
        self.cache.as_deref()
    }

    /// OOB bytes of the most recently sensed page.
    pub fn oob(&self) -> Option<&[u8]> {
        self.oob.as_deref()
    }

    /// Fill the cache latch by repeating `payload` until the page size is
    /// reached (Input Broadcasting of the query embedding, Sec. 4.3.2).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::InvalidBroadcastPayload`] if the payload is empty
    /// or does not evenly divide the page size, since misaligned copies would
    /// not line up with the database embeddings for the subsequent XOR.
    pub fn broadcast_into_cache(&mut self, payload: &[u8]) -> Result<()> {
        if payload.is_empty() || !self.page_size.is_multiple_of(payload.len()) {
            return Err(NandError::InvalidBroadcastPayload {
                payload_len: payload.len(),
                page_size: self.page_size,
            });
        }
        let copies = self.page_size / payload.len();
        let mut cache = self.cache.take().unwrap_or_default();
        cache.clear();
        cache.reserve(self.page_size);
        for _ in 0..copies {
            cache.extend_from_slice(payload);
        }
        self.cache = Some(cache);
        Ok(())
    }

    /// XOR the cache latch into the sensing latch, storing the result in the
    /// data latch (REIS step 3: bitwise difference between the query and the
    /// database embeddings).
    ///
    /// The XOR runs over `u64` words and reuses the data latch's existing
    /// buffer, so repeated per-page XORs during a scan allocate nothing.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::LatchEmpty`] if either source latch is empty.
    pub fn xor_cache_into_data(&mut self) -> Result<()> {
        let sensing = self.sensing.as_ref().ok_or(NandError::LatchEmpty {
            latch: Latch::Sensing.name(),
            plane: self.plane,
        })?;
        let cache = self.cache.as_ref().ok_or(NandError::LatchEmpty {
            latch: Latch::Cache.name(),
            plane: self.plane,
        })?;
        let mut out = self.data.take().unwrap_or_default();
        xor_bytes_into(sensing, cache, &mut out);
        self.data = Some(out);
        Ok(())
    }

    /// Copy the sensing latch into the cache latch, freeing the sensing latch
    /// for the next read (read-page-cache-sequential mode, Sec. 4.3.4).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::LatchEmpty`] if the sensing latch is empty.
    pub fn promote_sensing_to_cache(&mut self) -> Result<()> {
        let sensing = self.sensing.take().ok_or(NandError::LatchEmpty {
            latch: Latch::Sensing.name(),
            plane: self.plane,
        })?;
        self.cache = Some(sensing);
        Ok(())
    }

    /// Read out the contents of a latch.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::LatchEmpty`] if the latch holds no data.
    pub fn read_latch(&self, latch: Latch) -> Result<&[u8]> {
        let contents = match latch {
            Latch::Sensing => self.sensing.as_deref(),
            Latch::Data => self.data.as_deref(),
            Latch::Cache => self.cache.as_deref(),
        };
        contents.ok_or(NandError::LatchEmpty {
            latch: latch.name(),
            plane: self.plane,
        })
    }

    /// Clear all latches (used when the die switches workloads).
    pub fn clear(&mut self) {
        self.sensing = None;
        self.data = None;
        self.cache = None;
        self.oob = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffer() -> PageBuffer {
        PageBuffer::new(PlaneAddr::new(1, 0, 1), 1024)
    }

    #[test]
    fn broadcast_fills_whole_page_with_copies() {
        let mut buf = buffer();
        let payload = [0x5A_u8; 128];
        buf.broadcast_into_cache(&payload).unwrap();
        let cache = buf.cache().unwrap();
        assert_eq!(cache.len(), 1024);
        assert!(cache.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn broadcast_rejects_misaligned_payload() {
        let mut buf = buffer();
        let err = buf.broadcast_into_cache(&[0u8; 100]).unwrap_err();
        assert!(matches!(
            err,
            NandError::InvalidBroadcastPayload {
                payload_len: 100,
                ..
            }
        ));
        let err = buf.broadcast_into_cache(&[]).unwrap_err();
        assert!(matches!(
            err,
            NandError::InvalidBroadcastPayload { payload_len: 0, .. }
        ));
    }

    #[test]
    fn xor_computes_bitwise_difference() {
        let mut buf = buffer();
        buf.broadcast_into_cache(&[0b1010_1010u8; 64]).unwrap();
        buf.load_sensing(vec![0b1100_1100u8; 1024], vec![1, 2, 3]);
        buf.xor_cache_into_data().unwrap();
        let data = buf.data().unwrap();
        assert!(data.iter().all(|&b| b == 0b0110_0110));
        assert_eq!(buf.oob(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn xor_requires_both_latches() {
        let mut buf = buffer();
        assert!(matches!(
            buf.xor_cache_into_data(),
            Err(NandError::LatchEmpty {
                latch: "sensing",
                ..
            })
        ));
        buf.load_sensing(vec![0; 1024], vec![]);
        assert!(matches!(
            buf.xor_cache_into_data(),
            Err(NandError::LatchEmpty { latch: "cache", .. })
        ));
    }

    #[test]
    fn promote_moves_sensing_to_cache() {
        let mut buf = buffer();
        buf.load_sensing(vec![7; 1024], vec![]);
        buf.promote_sensing_to_cache().unwrap();
        assert!(buf.sensing().is_none());
        assert_eq!(buf.cache().unwrap()[0], 7);
        assert!(buf.promote_sensing_to_cache().is_err());
    }

    #[test]
    fn read_latch_reports_empty_latches() {
        let mut buf = buffer();
        assert!(buf.read_latch(Latch::Data).is_err());
        buf.load_sensing(vec![9; 1024], vec![]);
        assert_eq!(buf.read_latch(Latch::Sensing).unwrap()[0], 9);
        buf.clear();
        assert!(buf.read_latch(Latch::Sensing).is_err());
    }
}
