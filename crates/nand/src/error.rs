//! Error type for the NAND flash device simulator.

use std::fmt;

use crate::geometry::{BlockAddr, PageAddr, PlaneAddr};

/// Errors returned by operations on the simulated NAND flash device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NandError {
    /// An address referenced a channel, die, plane, block or page outside the
    /// configured geometry.
    AddressOutOfRange {
        /// Human-readable description of the offending component.
        what: &'static str,
        /// The index that was requested.
        index: usize,
        /// The number of valid entries for that component.
        limit: usize,
    },
    /// A program operation targeted a page that has already been programmed
    /// since its containing block was last erased.
    PageAlreadyProgrammed(PageAddr),
    /// A read targeted a page that has never been programmed.
    PageNotProgrammed(PageAddr),
    /// Data passed to a program operation does not fit the page user area.
    DataTooLarge {
        /// Number of bytes supplied by the caller.
        provided: usize,
        /// Page user-data capacity in bytes.
        capacity: usize,
    },
    /// OOB metadata passed to a program operation does not fit the OOB area.
    OobTooLarge {
        /// Number of OOB bytes supplied by the caller.
        provided: usize,
        /// OOB capacity in bytes.
        capacity: usize,
    },
    /// The requested latch operation needs a latch that holds no data.
    LatchEmpty {
        /// Which latch was empty.
        latch: &'static str,
        /// The plane whose page buffer was involved.
        plane: PlaneAddr,
    },
    /// A block erase was requested for a block that is out of range.
    BlockOutOfRange(BlockAddr),
    /// An Input Broadcast (IBC) payload does not evenly divide the page size.
    InvalidBroadcastPayload {
        /// Length of the broadcast payload in bytes.
        payload_len: usize,
        /// Page size in bytes.
        page_size: usize,
    },
    /// A mini-page offset exceeded the number of mini-pages in a page.
    MiniPageOutOfRange {
        /// Requested mini-page offset within the page.
        offset: usize,
        /// Number of mini-pages per page for the given element size.
        limit: usize,
    },
    /// A command was issued that the die-level finite state machine cannot
    /// accept in its current state (e.g. `XOR` before any page was sensed).
    InvalidCommandSequence(&'static str),
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::AddressOutOfRange { what, index, limit } => {
                write!(f, "{what} index {index} out of range (limit {limit})")
            }
            NandError::PageAlreadyProgrammed(addr) => {
                write!(f, "page {addr} already programmed since last erase")
            }
            NandError::PageNotProgrammed(addr) => {
                write!(f, "page {addr} has not been programmed")
            }
            NandError::DataTooLarge { provided, capacity } => {
                write!(f, "data of {provided} bytes exceeds page capacity of {capacity} bytes")
            }
            NandError::OobTooLarge { provided, capacity } => {
                write!(f, "OOB data of {provided} bytes exceeds OOB capacity of {capacity} bytes")
            }
            NandError::LatchEmpty { latch, plane } => {
                write!(f, "{latch} latch of plane {plane} holds no data")
            }
            NandError::BlockOutOfRange(addr) => write!(f, "block {addr} out of range"),
            NandError::InvalidBroadcastPayload { payload_len, page_size } => write!(
                f,
                "broadcast payload of {payload_len} bytes does not evenly divide page size {page_size}"
            ),
            NandError::MiniPageOutOfRange { offset, limit } => {
                write!(f, "mini-page offset {offset} out of range (limit {limit})")
            }
            NandError::InvalidCommandSequence(msg) => {
                write!(f, "invalid command sequence: {msg}")
            }
        }
    }
}

impl std::error::Error for NandError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NandError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PageAddr;

    #[test]
    fn display_is_nonempty_and_lowercase_style() {
        let errs: Vec<NandError> = vec![
            NandError::AddressOutOfRange {
                what: "channel",
                index: 9,
                limit: 8,
            },
            NandError::PageAlreadyProgrammed(PageAddr::new(0, 0, 0, 0, 0)),
            NandError::PageNotProgrammed(PageAddr::new(1, 1, 1, 1, 1)),
            NandError::DataTooLarge {
                provided: 20000,
                capacity: 16384,
            },
            NandError::OobTooLarge {
                provided: 4096,
                capacity: 2208,
            },
            NandError::BlockOutOfRange(BlockAddr::new(0, 0, 0, 77)),
            NandError::InvalidBroadcastPayload {
                payload_len: 100,
                page_size: 16384,
            },
            NandError::MiniPageOutOfRange {
                offset: 200,
                limit: 128,
            },
            NandError::InvalidCommandSequence("xor before sense"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                !s.ends_with('.'),
                "error messages should not end with punctuation: {s}"
            );
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NandError>();
    }
}
