//! Operation counters of the flash device.
//!
//! The counters are the raw material of the energy model in `reis-core`:
//! every page read, program, erase, in-plane operation and byte moved over a
//! channel is tallied here so that energy can be attributed per operation
//! after a simulation completes.

use serde::{Deserialize, Serialize};

/// Cumulative operation counters of a [`crate::array::FlashDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlashStats {
    /// Number of page sense operations (array → sensing latch).
    pub page_reads: u64,
    /// Number of page program operations.
    pub page_programs: u64,
    /// Number of block erase operations.
    pub block_erases: u64,
    /// Number of inter-latch XOR operations.
    pub xor_ops: u64,
    /// Number of fail-bit-counter invocations (full-page popcount scans).
    pub bit_count_ops: u64,
    /// Number of pass/fail comparator invocations (distance-filter checks).
    pub pass_fail_ops: u64,
    /// Number of Input Broadcast operations (query copies into cache latches).
    pub broadcast_ops: u64,
    /// Bytes transferred from flash dies to the controller over the channels.
    pub bytes_to_controller: u64,
    /// Bytes transferred from the controller to flash dies (programs and
    /// broadcasts).
    pub bytes_from_controller: u64,
    /// Bit errors injected into page reads of non-ESP pages.
    pub injected_bit_errors: u64,
}

impl FlashStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        FlashStats::default()
    }

    /// Counters of one fused multi-query scan pass: `pages_sensed` pages
    /// each sensed exactly once, `page_scores` `(page, query)` scoring
    /// operations (one XOR, one fail-bit count and one pass/fail check per
    /// resident query against each sensed page), and the aggregate TTL
    /// traffic the pass moved to the controller.
    ///
    /// This is the *physical* accounting of a page-major batch scan: the
    /// sense amortizes across the in-flight queries while the in-plane
    /// compute still runs per query, which is exactly the asymmetry the
    /// fused executor exploits.
    pub fn fused_scan(pages_sensed: u64, page_scores: u64, bytes_to_controller: u64) -> FlashStats {
        FlashStats {
            page_reads: pages_sensed,
            xor_ops: page_scores,
            bit_count_ops: page_scores,
            pass_fail_ops: page_scores,
            bytes_to_controller,
            ..FlashStats::new()
        }
    }

    /// Total number of flash array operations (reads + programs + erases).
    pub fn array_ops(&self) -> u64 {
        self.page_reads + self.page_programs + self.block_erases
    }

    /// Total number of in-plane compute operations performed by the
    /// peripheral logic on behalf of REIS.
    pub fn in_plane_ops(&self) -> u64 {
        self.xor_ops + self.bit_count_ops + self.pass_fail_ops
    }

    /// Total bytes moved over the flash channels in either direction.
    pub fn channel_bytes(&self) -> u64 {
        self.bytes_to_controller + self.bytes_from_controller
    }

    /// Element-wise accumulation of another counter set into this one, used
    /// to merge the activity of per-worker device replicas (batch search)
    /// back into the primary device's counters.
    pub fn accumulate(&mut self, other: &FlashStats) {
        self.page_reads += other.page_reads;
        self.page_programs += other.page_programs;
        self.block_erases += other.block_erases;
        self.xor_ops += other.xor_ops;
        self.bit_count_ops += other.bit_count_ops;
        self.pass_fail_ops += other.pass_fail_ops;
        self.broadcast_ops += other.broadcast_ops;
        self.bytes_to_controller += other.bytes_to_controller;
        self.bytes_from_controller += other.bytes_from_controller;
        self.injected_bit_errors += other.injected_bit_errors;
    }

    /// Element-wise difference `self - earlier`, useful for measuring a
    /// single query's activity by snapshotting the counters around it.
    pub fn delta_since(&self, earlier: &FlashStats) -> FlashStats {
        FlashStats {
            page_reads: self.page_reads - earlier.page_reads,
            page_programs: self.page_programs - earlier.page_programs,
            block_erases: self.block_erases - earlier.block_erases,
            xor_ops: self.xor_ops - earlier.xor_ops,
            bit_count_ops: self.bit_count_ops - earlier.bit_count_ops,
            pass_fail_ops: self.pass_fail_ops - earlier.pass_fail_ops,
            broadcast_ops: self.broadcast_ops - earlier.broadcast_ops,
            bytes_to_controller: self.bytes_to_controller - earlier.bytes_to_controller,
            bytes_from_controller: self.bytes_from_controller - earlier.bytes_from_controller,
            injected_bit_errors: self.injected_bit_errors - earlier.injected_bit_errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_component_counters() {
        let stats = FlashStats {
            page_reads: 10,
            page_programs: 5,
            block_erases: 1,
            xor_ops: 7,
            bit_count_ops: 7,
            pass_fail_ops: 3,
            broadcast_ops: 2,
            bytes_to_controller: 100,
            bytes_from_controller: 50,
            injected_bit_errors: 0,
        };
        assert_eq!(stats.array_ops(), 16);
        assert_eq!(stats.in_plane_ops(), 17);
        assert_eq!(stats.channel_bytes(), 150);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let earlier = FlashStats {
            page_reads: 4,
            bytes_to_controller: 10,
            ..FlashStats::new()
        };
        let later = FlashStats {
            page_reads: 9,
            bytes_to_controller: 25,
            ..FlashStats::new()
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.page_reads, 5);
        assert_eq!(delta.bytes_to_controller, 15);
        assert_eq!(delta.page_programs, 0);
    }

    #[test]
    fn accumulate_is_the_inverse_of_delta_since() {
        let earlier = FlashStats {
            page_reads: 4,
            xor_ops: 2,
            ..FlashStats::new()
        };
        let later = FlashStats {
            page_reads: 9,
            xor_ops: 6,
            ..FlashStats::new()
        };
        let mut rebuilt = earlier;
        rebuilt.accumulate(&later.delta_since(&earlier));
        assert_eq!(rebuilt, later);
    }
}
