//! # reis-nand — NAND flash device simulator
//!
//! Functional-plus-timing model of the NAND flash array inside a modern SSD,
//! providing the substrate the REIS in-storage retrieval system computes on:
//!
//! * [`geometry`] — channels, dies, planes, blocks, pages, OOB areas and the
//!   address types that navigate them (including REIS mini-page addresses).
//! * [`cell`] — SLC/MLC/TLC/QLC cell modes and programming schemes,
//!   including Enhanced SLC Programming (ESP) with zero raw bit error rate.
//! * [`latch`] — the per-plane page buffer (sensing / data / cache latches)
//!   and the Input-Broadcast and XOR operations REIS performs on it.
//! * [`peripheral`] — the fail-bit counter, pass/fail checker and XOR logic
//!   already present in flash dies, repurposed as a Hamming-distance engine.
//! * [`mod@array`] — the [`array::FlashDevice`] tying everything together, with
//!   per-operation latency and statistics.
//! * [`command`] — the flash command set plus the REIS extensions of
//!   Table 2 (`IBC`, `XOR`, `GEN_DIST`, `RD_TTL`).
//! * [`timing`] — the latency/bandwidth parameters (Table 3) and the
//!   [`timing::Nanos`] simulated-time type.
//! * [`reliability`] — raw bit-error injection for non-ESP reads.
//! * [`oob`] — the out-of-band layout that links embeddings to documents.
//! * [`sharding`] — geometry-aware planning of intra-query scan shards over
//!   the device's channel×die units.
//!
//! # Example: an in-plane Hamming distance computation
//!
//! ```
//! use reis_nand::array::FlashDevice;
//! use reis_nand::cell::ProgramScheme;
//! use reis_nand::geometry::{Geometry, PageAddr};
//!
//! # fn main() -> Result<(), reis_nand::error::NandError> {
//! let mut device = FlashDevice::new(Geometry::tiny(), Default::default());
//! let addr = PageAddr::new(0, 0, 0, 0, 0);
//!
//! // Store a page of 64-byte binary embeddings in the ESP-SLC partition.
//! let page: Vec<u8> = (0..4096).map(|i| (i / 64) as u8).collect();
//! device.program_page(addr, &page, &[], ProgramScheme::EnhancedSlc)?;
//!
//! // Broadcast a query, sense the page, XOR, and count differing bits.
//! device.input_broadcast(0, 0, &vec![0u8; 64], true)?;
//! device.sense_page(addr)?;
//! device.xor_latches(addr.plane_addr())?;
//! let (distances, _latency) = device.count_fail_bits(addr.plane_addr(), 64)?;
//! assert_eq!(distances[0], 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod cell;
pub mod command;
pub mod error;
pub mod geometry;
pub mod latch;
pub mod oob;
pub mod peripheral;
pub mod reliability;
pub mod sharding;
pub mod stats;
pub mod timing;

pub use array::{FlashDevice, PageReadMeta, PageReadout};
pub use cell::{CellMode, ProgramScheme};
pub use error::{NandError, Result};
pub use geometry::{BlockAddr, Geometry, MiniPageAddr, PageAddr, PlaneAddr};
pub use oob::{OobEntry, OobLayout};
pub use peripheral::FusedHit;
pub use sharding::{ScanShard, ScanShardPlan};
pub use stats::FlashStats;
pub use timing::{Nanos, TimingParams};
