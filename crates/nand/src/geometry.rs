//! Physical organisation of a NAND flash based storage device.
//!
//! The geometry follows the hierarchy described in Sec. 2.3 of the REIS
//! paper: an SSD contains multiple *channels*, each channel connects several
//! flash *dies*, each die contains 2–16 *planes*, planes are divided into
//! *blocks*, and blocks consist of hundreds of 16 KB *pages*. Each page also
//! carries a spare out-of-band (OOB) area used for ECC metadata and — in REIS
//! — for the embedding-to-document linkage.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{NandError, Result};

/// Static description of the flash array organisation of one SSD.
///
/// The two reference configurations used throughout the REIS evaluation
/// ([`Geometry::reis_ssd1`] and [`Geometry::reis_ssd2`]) mirror Table 3 of
/// the paper: a cost-oriented 8-channel device and a performance-oriented
/// 16-channel device.
///
/// # Examples
///
/// ```
/// use reis_nand::geometry::Geometry;
///
/// let geom = Geometry::reis_ssd1();
/// assert_eq!(geom.channels, 8);
/// assert_eq!(geom.planes_per_die, 2);
/// assert_eq!(geom.page_size_bytes, 16 * 1024);
/// assert!(geom.total_planes() >= 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of flash channels attached to the SSD controller.
    pub channels: usize,
    /// Number of flash dies sharing each channel.
    pub dies_per_channel: usize,
    /// Number of planes inside each die (2–16 in modern devices).
    pub planes_per_die: usize,
    /// Number of blocks inside each plane.
    pub blocks_per_plane: usize,
    /// Number of pages inside each block.
    pub pages_per_block: usize,
    /// User-data bytes per page (typically 16 KB).
    pub page_size_bytes: usize,
    /// Out-of-band (spare) bytes per page (e.g. 2208 bytes for a 16 KB page).
    pub oob_size_bytes: usize,
}

impl Geometry {
    /// Geometry of the cost-oriented configuration **REIS-SSD1** (modeled
    /// after a Samsung PM9A3-class device): 8 channels, 16 dies per channel,
    /// 2 planes per die.
    ///
    /// The block/page counts are scaled down relative to a real 512 Gb die so
    /// the functional simulation stays memory-friendly; timing and bandwidth
    /// parameters (which determine the paper's results) are independent of
    /// this scaling and live in [`crate::timing::TimingParams`].
    pub fn reis_ssd1() -> Self {
        Geometry {
            channels: 8,
            dies_per_channel: 16,
            planes_per_die: 2,
            blocks_per_plane: 64,
            pages_per_block: 256,
            page_size_bytes: 16 * 1024,
            oob_size_bytes: 2208,
        }
    }

    /// Geometry of the performance-oriented configuration **REIS-SSD2**
    /// (modeled after a Micron 9400-class device): 16 channels, 8 dies per
    /// channel, 4 planes per die.
    pub fn reis_ssd2() -> Self {
        Geometry {
            channels: 16,
            dies_per_channel: 8,
            planes_per_die: 4,
            blocks_per_plane: 64,
            pages_per_block: 256,
            page_size_bytes: 16 * 1024,
            oob_size_bytes: 2208,
        }
    }

    /// A deliberately tiny geometry for unit tests: 2 channels × 2 dies ×
    /// 2 planes × 4 blocks × 8 pages of 4 KB.
    pub fn tiny() -> Self {
        Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_size_bytes: 4 * 1024,
            oob_size_bytes: 256,
        }
    }

    /// Total number of dies in the device.
    pub fn total_dies(&self) -> usize {
        self.channels * self.dies_per_channel
    }

    /// Total number of planes in the device.
    pub fn total_planes(&self) -> usize {
        self.total_dies() * self.planes_per_die
    }

    /// Total number of blocks in the device.
    pub fn total_blocks(&self) -> usize {
        self.total_planes() * self.blocks_per_plane
    }

    /// Total number of pages in the device.
    pub fn total_pages(&self) -> usize {
        self.total_blocks() * self.pages_per_block
    }

    /// Pages per plane.
    pub fn pages_per_plane(&self) -> usize {
        self.blocks_per_plane * self.pages_per_block
    }

    /// Total user-data capacity in bytes (excluding OOB).
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() as u64 * self.page_size_bytes as u64
    }

    /// Validate that an address lies inside this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] naming the first offending
    /// component.
    pub fn check_page(&self, addr: PageAddr) -> Result<()> {
        self.check_plane(addr.plane_addr())?;
        if addr.block >= self.blocks_per_plane {
            return Err(NandError::AddressOutOfRange {
                what: "block",
                index: addr.block,
                limit: self.blocks_per_plane,
            });
        }
        if addr.page >= self.pages_per_block {
            return Err(NandError::AddressOutOfRange {
                what: "page",
                index: addr.page,
                limit: self.pages_per_block,
            });
        }
        Ok(())
    }

    /// Validate that a plane address lies inside this geometry.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] naming the first offending
    /// component.
    pub fn check_plane(&self, addr: PlaneAddr) -> Result<()> {
        if addr.channel >= self.channels {
            return Err(NandError::AddressOutOfRange {
                what: "channel",
                index: addr.channel,
                limit: self.channels,
            });
        }
        if addr.die >= self.dies_per_channel {
            return Err(NandError::AddressOutOfRange {
                what: "die",
                index: addr.die,
                limit: self.dies_per_channel,
            });
        }
        if addr.plane >= self.planes_per_die {
            return Err(NandError::AddressOutOfRange {
                what: "plane",
                index: addr.plane,
                limit: self.planes_per_die,
            });
        }
        Ok(())
    }

    /// Convert a plane address to a dense index in `0..total_planes()`.
    ///
    /// Planes are ordered channel-major, then die, then plane, which matches
    /// the order in which Parallelism-First Page Allocation stripes data.
    pub fn plane_index(&self, addr: PlaneAddr) -> usize {
        (addr.channel * self.dies_per_channel + addr.die) * self.planes_per_die + addr.plane
    }

    /// Inverse of [`Geometry::plane_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_planes()`.
    pub fn plane_at(&self, index: usize) -> PlaneAddr {
        assert!(
            index < self.total_planes(),
            "plane index {index} out of range"
        );
        let plane = index % self.planes_per_die;
        let die_global = index / self.planes_per_die;
        let die = die_global % self.dies_per_channel;
        let channel = die_global / self.dies_per_channel;
        PlaneAddr {
            channel,
            die,
            plane,
        }
    }

    /// Convert a page address to a dense index in `0..total_pages()`.
    pub fn page_index(&self, addr: PageAddr) -> usize {
        let plane = self.plane_index(addr.plane_addr());
        (plane * self.blocks_per_plane + addr.block) * self.pages_per_block + addr.page
    }

    /// Inverse of [`Geometry::page_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_pages()`.
    pub fn page_at(&self, index: usize) -> PageAddr {
        assert!(
            index < self.total_pages(),
            "page index {index} out of range"
        );
        let page = index % self.pages_per_block;
        let rest = index / self.pages_per_block;
        let block = rest % self.blocks_per_plane;
        let plane_idx = rest / self.blocks_per_plane;
        let plane = self.plane_at(plane_idx);
        PageAddr {
            channel: plane.channel,
            die: plane.die,
            plane: plane.plane,
            block,
            page,
        }
    }

    /// Iterate over all plane addresses in dense-index order.
    pub fn planes(&self) -> impl Iterator<Item = PlaneAddr> + '_ {
        (0..self.total_planes()).map(move |i| self.plane_at(i))
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::reis_ssd1()
    }
}

/// Address of one plane inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaneAddr {
    /// Channel index.
    pub channel: usize,
    /// Die index within the channel.
    pub die: usize,
    /// Plane index within the die.
    pub plane: usize,
}

impl PlaneAddr {
    /// Create a plane address from its components.
    pub fn new(channel: usize, die: usize, plane: usize) -> Self {
        PlaneAddr {
            channel,
            die,
            plane,
        }
    }
}

impl fmt::Display for PlaneAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}/die{}/pl{}", self.channel, self.die, self.plane)
    }
}

/// Address of one block inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Channel index.
    pub channel: usize,
    /// Die index within the channel.
    pub die: usize,
    /// Plane index within the die.
    pub plane: usize,
    /// Block index within the plane.
    pub block: usize,
}

impl BlockAddr {
    /// Create a block address from its components.
    pub fn new(channel: usize, die: usize, plane: usize, block: usize) -> Self {
        BlockAddr {
            channel,
            die,
            plane,
            block,
        }
    }

    /// The plane containing this block.
    pub fn plane_addr(&self) -> PlaneAddr {
        PlaneAddr {
            channel: self.channel,
            die: self.die,
            plane: self.plane,
        }
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/blk{}", self.plane_addr(), self.block)
    }
}

/// Address of one physical page inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr {
    /// Channel index.
    pub channel: usize,
    /// Die index within the channel.
    pub die: usize,
    /// Plane index within the die.
    pub plane: usize,
    /// Block index within the plane.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

impl PageAddr {
    /// Create a page address from its components.
    pub fn new(channel: usize, die: usize, plane: usize, block: usize, page: usize) -> Self {
        PageAddr {
            channel,
            die,
            plane,
            block,
            page,
        }
    }

    /// The plane containing this page.
    pub fn plane_addr(&self) -> PlaneAddr {
        PlaneAddr {
            channel: self.channel,
            die: self.die,
            plane: self.plane,
        }
    }

    /// The block containing this page.
    pub fn block_addr(&self) -> BlockAddr {
        BlockAddr {
            channel: self.channel,
            die: self.die,
            plane: self.plane,
            block: self.block,
        }
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/pg{}", self.block_addr(), self.page)
    }
}

/// A *mini-page* address: a physical page address plus an offset selecting
/// one fixed-size element (e.g. one 128-byte binary embedding) inside the
/// page.
///
/// REIS introduces mini-pages (Sec. 4.3.2) so the Temporal Top Lists can
/// reference individual embeddings without a per-embedding FTL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MiniPageAddr {
    /// The physical page holding the element.
    pub page: PageAddr,
    /// Offset of the element within the page, in element-size units.
    pub offset: usize,
}

impl MiniPageAddr {
    /// Create a mini-page address.
    pub fn new(page: PageAddr, offset: usize) -> Self {
        MiniPageAddr { page, offset }
    }

    /// Byte offset of this element inside its page, for elements of
    /// `element_bytes` bytes.
    pub fn byte_offset(&self, element_bytes: usize) -> usize {
        self.offset * element_bytes
    }
}

impl fmt::Display for MiniPageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.page, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_geometries_match_table3() {
        let g1 = Geometry::reis_ssd1();
        assert_eq!(g1.channels, 8);
        assert_eq!(g1.dies_per_channel, 16);
        assert_eq!(g1.planes_per_die, 2);
        let g2 = Geometry::reis_ssd2();
        assert_eq!(g2.channels, 16);
        assert_eq!(g2.dies_per_channel, 8);
        assert_eq!(g2.planes_per_die, 4);
        // SSD2 has twice the planes of SSD1 with the same total die count.
        assert_eq!(g1.total_dies(), g2.total_dies());
        assert_eq!(g2.total_planes(), 2 * g1.total_planes());
    }

    #[test]
    fn plane_index_roundtrip() {
        let g = Geometry::tiny();
        for i in 0..g.total_planes() {
            let addr = g.plane_at(i);
            assert_eq!(g.plane_index(addr), i);
        }
    }

    #[test]
    fn page_index_roundtrip() {
        let g = Geometry::tiny();
        for i in 0..g.total_pages() {
            let addr = g.page_at(i);
            assert_eq!(g.page_index(addr), i);
            g.check_page(addr).expect("generated address must be valid");
        }
    }

    #[test]
    fn check_page_rejects_out_of_range_components() {
        let g = Geometry::tiny();
        let bad_channel = PageAddr::new(g.channels, 0, 0, 0, 0);
        assert!(matches!(
            g.check_page(bad_channel),
            Err(NandError::AddressOutOfRange {
                what: "channel",
                ..
            })
        ));
        let bad_die = PageAddr::new(0, g.dies_per_channel, 0, 0, 0);
        assert!(matches!(
            g.check_page(bad_die),
            Err(NandError::AddressOutOfRange { what: "die", .. })
        ));
        let bad_plane = PageAddr::new(0, 0, g.planes_per_die, 0, 0);
        assert!(matches!(
            g.check_page(bad_plane),
            Err(NandError::AddressOutOfRange { what: "plane", .. })
        ));
        let bad_block = PageAddr::new(0, 0, 0, g.blocks_per_plane, 0);
        assert!(matches!(
            g.check_page(bad_block),
            Err(NandError::AddressOutOfRange { what: "block", .. })
        ));
        let bad_page = PageAddr::new(0, 0, 0, 0, g.pages_per_block);
        assert!(matches!(
            g.check_page(bad_page),
            Err(NandError::AddressOutOfRange { what: "page", .. })
        ));
    }

    #[test]
    fn capacity_accounts_all_pages() {
        let g = Geometry::tiny();
        assert_eq!(
            g.capacity_bytes(),
            (2 * 2 * 2 * 4 * 8) as u64 * 4096,
            "tiny geometry capacity should be pages x page size"
        );
    }

    #[test]
    fn planes_iterator_visits_each_plane_once() {
        let g = Geometry::tiny();
        let planes: Vec<_> = g.planes().collect();
        assert_eq!(planes.len(), g.total_planes());
        let mut sorted = planes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), planes.len());
    }

    #[test]
    fn display_formats_are_informative() {
        let addr = PageAddr::new(1, 2, 0, 3, 7);
        assert_eq!(addr.to_string(), "ch1/die2/pl0/blk3/pg7");
        let mini = MiniPageAddr::new(addr, 5);
        assert_eq!(mini.to_string(), "ch1/die2/pl0/blk3/pg7+5");
        assert_eq!(mini.byte_offset(128), 640);
    }
}
