//! Read-error injection model.
//!
//! Pages programmed with conventional ISPP exhibit a non-zero raw bit error
//! rate that normally requires controller-side ECC. REIS avoids that data
//! movement for the embedding partition by using Enhanced SLC Programming
//! (ESP), which is error-free. The simulator injects transient bit errors on
//! reads of non-ESP pages so that tests can demonstrate (i) why in-plane
//! computation on TLC data without ECC would corrupt distances and (ii) that
//! the ESP partition needs no correction.
//!
//! The error process is driven by a small deterministic [`SplitMix64`]
//! generator owned by the device, so simulations are reproducible without
//! pulling a random-number dependency into the library.

use serde::{Deserialize, Serialize};

use crate::cell::ProgramScheme;

/// A tiny, deterministic 64-bit pseudo-random generator (SplitMix64).
///
/// Used only for read-error injection; statistical quality far exceeds what
/// the error model needs and the generator is trivially serializable, which
/// keeps device snapshots reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

/// Raw-bit-error injection model for page reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityModel {
    /// Global multiplier applied to every scheme's raw bit error rate.
    /// `1.0` reproduces the nominal rates; `0.0` disables error injection.
    pub ber_scale: f64,
}

impl ReliabilityModel {
    /// Nominal model (scale 1.0).
    pub fn nominal() -> Self {
        ReliabilityModel { ber_scale: 1.0 }
    }

    /// A model that never injects errors, regardless of programming scheme.
    pub fn error_free() -> Self {
        ReliabilityModel { ber_scale: 0.0 }
    }

    /// Effective raw bit error rate of a read for the given scheme.
    pub fn effective_ber(&self, scheme: ProgramScheme) -> f64 {
        scheme.raw_bit_error_rate() * self.ber_scale
    }

    /// Flip bits of `data` in place according to the scheme's error rate and
    /// return the number of bits flipped.
    ///
    /// The number of injected errors is the expectation `bits × BER`, with
    /// the fractional remainder resolved by one Bernoulli draw; error
    /// positions are uniform. This keeps the cost O(errors) rather than
    /// O(bits) while preserving the expected error count.
    pub fn inject_read_errors(
        &self,
        data: &mut [u8],
        scheme: ProgramScheme,
        rng: &mut SplitMix64,
    ) -> usize {
        let ber = self.effective_ber(scheme);
        if ber <= 0.0 || data.is_empty() {
            return 0;
        }
        let bits = data.len() as f64 * 8.0;
        let expected = bits * ber;
        let mut flips = expected.floor() as usize;
        if rng.next_f64() < expected.fract() {
            flips += 1;
        }
        for _ in 0..flips {
            let bit = rng.next_below(data.len() as u64 * 8);
            let byte = (bit / 8) as usize;
            let offset = (bit % 8) as u32;
            data[byte] ^= 1 << offset;
        }
        flips
    }
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        ReliabilityModel::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellMode;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn esp_pages_never_see_errors() {
        let model = ReliabilityModel::nominal();
        let mut rng = SplitMix64::new(1);
        let mut data = vec![0xAA; 16 * 1024];
        let flips = model.inject_read_errors(&mut data, ProgramScheme::EnhancedSlc, &mut rng);
        assert_eq!(flips, 0);
        assert!(data.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn tlc_pages_accumulate_errors_at_expected_rate() {
        let model = ReliabilityModel::nominal();
        let mut rng = SplitMix64::new(99);
        let scheme = ProgramScheme::Ispp(CellMode::Tlc);
        let mut total_flips = 0usize;
        let reads = 50usize;
        let page = 16 * 1024usize;
        for _ in 0..reads {
            let mut data = vec![0u8; page];
            total_flips += model.inject_read_errors(&mut data, scheme, &mut rng);
        }
        let expected = reads as f64 * page as f64 * 8.0 * scheme.raw_bit_error_rate();
        let observed = total_flips as f64;
        assert!(
            (observed - expected).abs() < expected * 0.5 + 5.0,
            "observed {observed} flips, expected about {expected}"
        );
        assert!(total_flips > 0);
    }

    #[test]
    fn error_free_model_disables_injection() {
        let model = ReliabilityModel::error_free();
        let mut rng = SplitMix64::default();
        let mut data = vec![0u8; 4096];
        let flips =
            model.inject_read_errors(&mut data, ProgramScheme::Ispp(CellMode::Qlc), &mut rng);
        assert_eq!(flips, 0);
    }

    #[test]
    fn injection_actually_mutates_buffer() {
        // Use an artificially large scale so a small buffer sees errors.
        let model = ReliabilityModel { ber_scale: 1e3 };
        let mut rng = SplitMix64::new(5);
        let mut data = vec![0u8; 1024];
        let flips =
            model.inject_read_errors(&mut data, ProgramScheme::Ispp(CellMode::Tlc), &mut rng);
        assert!(flips > 0);
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert!(ones > 0);
    }
}
