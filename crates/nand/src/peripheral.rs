//! On-die peripheral logic reused by REIS for computation.
//!
//! Modern NAND dies already contain (Sec. 2.3): a *fail-bit counter* that
//! counts set bits during program verification, a *pass/fail checker* that
//! compares the count against a threshold to steer ISPP, and XOR logic
//! between the latches used for on-chip data randomization. REIS repurposes
//! the XOR logic to compute bitwise differences, the fail-bit counter to turn
//! those differences into Hamming distances, and the pass/fail checker to
//! implement distance filtering.

use serde::{Deserialize, Serialize};

/// The on-die fail-bit counter, repurposed as a per-mini-page popcount
/// engine.
///
/// # Examples
///
/// ```
/// use reis_nand::peripheral::FailBitCounter;
///
/// // Two 2-byte "embeddings" whose XOR results are held in a latch.
/// let latch = [0b1111_0000u8, 0b0000_0001, 0b0000_0000, 0b1010_1010];
/// let counts = FailBitCounter::count_per_chunk(&latch, 2);
/// assert_eq!(counts, vec![5, 4]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailBitCounter;

impl FailBitCounter {
    /// Count the number of set bits in every `chunk_bytes`-sized chunk of the
    /// latch contents.
    ///
    /// When the latch holds the XOR of a broadcast query with a page of
    /// binary embeddings, each chunk corresponds to one embedding and the
    /// count is exactly the Hamming distance between the query and that
    /// embedding.
    ///
    /// A trailing partial chunk (when `latch.len()` is not a multiple of
    /// `chunk_bytes`) is counted as its own entry.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn count_per_chunk(latch: &[u8], chunk_bytes: usize) -> Vec<u32> {
        assert!(chunk_bytes > 0, "chunk size must be non-zero");
        latch
            .chunks(chunk_bytes)
            .map(|chunk| chunk.iter().map(|b| b.count_ones()).sum())
            .collect()
    }

    /// Count the set bits of the entire latch (the original use of the
    /// fail-bit counter during program verification).
    pub fn count_total(latch: &[u8]) -> u64 {
        latch.iter().map(|b| b.count_ones() as u64).sum()
    }
}

/// The on-die pass/fail checker, repurposed as the distance-filtering
/// comparator (Sec. 4.3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassFailChecker;

impl PassFailChecker {
    /// For every counted value, report whether it *passes* the filter, i.e.
    /// whether the value is less than or equal to `threshold`.
    ///
    /// In REIS a passing entry is an embedding whose Hamming distance from
    /// the query is small enough to be forwarded to the SSD controller.
    pub fn passes(counts: &[u32], threshold: u32) -> Vec<bool> {
        counts.iter().map(|&c| c <= threshold).collect()
    }

    /// Number of entries that pass the filter.
    pub fn pass_count(counts: &[u32], threshold: u32) -> usize {
        counts.iter().filter(|&&c| c <= threshold).count()
    }
}

/// The inter-latch XOR logic (normally used for on-chip data randomization),
/// exposed as a standalone helper for callers that operate on raw buffers
/// rather than on a [`crate::latch::PageBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorLogic;

impl XorLogic {
    /// XOR two equally sized buffers into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths; the latches of one plane
    /// always have identical sizes.
    pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
        assert_eq!(a.len(), b.len(), "latch contents must have identical sizes");
        a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_per_chunk_is_hamming_distance_of_xor() {
        let a = [0b1111_1111u8, 0b0000_0000, 0b1010_1010, 0b0101_0101];
        let b = [0b1111_0000u8, 0b0000_1111, 0b1010_1010, 0b1010_1010];
        let xored = XorLogic::xor(&a, &b);
        let counts = FailBitCounter::count_per_chunk(&xored, 2);
        assert_eq!(counts, vec![8, 8]);
        assert_eq!(FailBitCounter::count_total(&xored), 16);
    }

    #[test]
    fn trailing_partial_chunk_is_counted() {
        let latch = [0xFFu8, 0xFF, 0x0F];
        let counts = FailBitCounter::count_per_chunk(&latch, 2);
        assert_eq!(counts, vec![16, 4]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_size_panics() {
        FailBitCounter::count_per_chunk(&[1, 2, 3], 0);
    }

    #[test]
    fn pass_fail_threshold_is_inclusive() {
        let counts = vec![10, 200, 42, 43];
        assert_eq!(PassFailChecker::passes(&counts, 42), vec![true, false, true, false]);
        assert_eq!(PassFailChecker::pass_count(&counts, 42), 2);
        assert_eq!(PassFailChecker::pass_count(&counts, 0), 0);
        assert_eq!(PassFailChecker::pass_count(&counts, u32::MAX), 4);
    }

    #[test]
    fn xor_of_identical_buffers_is_zero() {
        let a = vec![0xAB; 64];
        let out = XorLogic::xor(&a, &a);
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(FailBitCounter::count_total(&out), 0);
    }

    #[test]
    #[should_panic(expected = "identical sizes")]
    fn xor_panics_on_length_mismatch() {
        XorLogic::xor(&[1, 2], &[1, 2, 3]);
    }
}
