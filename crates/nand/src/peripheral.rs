//! On-die peripheral logic reused by REIS for computation.
//!
//! Modern NAND dies already contain (Sec. 2.3): a *fail-bit counter* that
//! counts set bits during program verification, a *pass/fail checker* that
//! compares the count against a threshold to steer ISPP, and XOR logic
//! between the latches used for on-chip data randomization. REIS repurposes
//! the XOR logic to compute bitwise differences, the fail-bit counter to turn
//! those differences into Hamming distances, and the pass/fail checker to
//! implement distance filtering.
//!
//! # Hot-path invariants
//!
//! These helpers sit at the bottom of the query scan loop. The actual bit
//! kernels — word-parallel `u64` processing, byte-wise tails, runtime POPCNT
//! dispatch, allocation-free `_into` variants — live in the workspace's
//! single kernel crate, [`reis_kernels`], and are re-exported here; this
//! module only adds the peripheral framing (per-chunk semantics, the
//! pass/fail comparator, the fused multi-query counter).

use serde::{Deserialize, Serialize};

pub use reis_kernels::{popcount_bytes, xor_bytes_into, FusedHit};

/// The on-die fail-bit counter, repurposed as a per-mini-page popcount
/// engine.
///
/// # Examples
///
/// ```
/// use reis_nand::peripheral::FailBitCounter;
///
/// // Two 2-byte "embeddings" whose XOR results are held in a latch.
/// let latch = [0b1111_0000u8, 0b0000_0001, 0b0000_0000, 0b1010_1010];
/// let counts = FailBitCounter::count_per_chunk(&latch, 2);
/// assert_eq!(counts, vec![5, 4]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailBitCounter;

impl FailBitCounter {
    /// Count the number of set bits in every `chunk_bytes`-sized chunk of the
    /// latch contents.
    ///
    /// When the latch holds the XOR of a broadcast query with a page of
    /// binary embeddings, each chunk corresponds to one embedding and the
    /// count is exactly the Hamming distance between the query and that
    /// embedding.
    ///
    /// A trailing partial chunk (when `latch.len()` is not a multiple of
    /// `chunk_bytes`) is counted as its own entry.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn count_per_chunk(latch: &[u8], chunk_bytes: usize) -> Vec<u32> {
        let mut out = Vec::new();
        Self::count_per_chunk_into(latch, chunk_bytes, &mut out);
        out
    }

    /// Allocation-free variant of [`FailBitCounter::count_per_chunk`]: the
    /// counts are written into `out` (cleared first), so a page-scan loop can
    /// reuse one buffer for every page. The POPCNT dispatch is hoisted out of
    /// the per-chunk loop.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn count_per_chunk_into(latch: &[u8], chunk_bytes: usize, out: &mut Vec<u32>) {
        reis_kernels::count_per_chunk_into(latch, chunk_bytes, out);
    }

    /// Fused multi-query fail-bit count: score one sensed page against every
    /// broadcast query in a single pass over the page words, filling `out`
    /// query-major (query `q`'s per-chunk counts occupy
    /// `out[q * n_chunks .. (q + 1) * n_chunks]`).
    ///
    /// This models the multi-query form of REIS's in-plane computation: the
    /// page is sensed into the latches *once*, and the XOR + fail-bit-count
    /// peripheral runs once per resident query against the same sensed
    /// stripe. Callers account the sense once and the in-plane operations
    /// per `(page, query)` pair — see `FlashStats::fused_scan`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero or a query's length differs from
    /// `chunk_bytes`.
    pub fn count_fused_into(
        latch: &[u8],
        chunk_bytes: usize,
        queries: &[&[u8]],
        out: &mut Vec<u32>,
    ) {
        reis_kernels::fused_hamming_per_chunk_into(latch, chunk_bytes, queries, out);
    }

    /// Count the set bits of the entire latch (the original use of the
    /// fail-bit counter during program verification).
    pub fn count_total(latch: &[u8]) -> u64 {
        popcount_bytes(latch)
    }
}

/// The on-die pass/fail checker, repurposed as the distance-filtering
/// comparator (Sec. 4.3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassFailChecker;

impl PassFailChecker {
    /// For every counted value, report whether it *passes* the filter, i.e.
    /// whether the value is less than or equal to `threshold`.
    ///
    /// In REIS a passing entry is an embedding whose Hamming distance from
    /// the query is small enough to be forwarded to the SSD controller.
    pub fn passes(counts: &[u32], threshold: u32) -> Vec<bool> {
        counts.iter().map(|&c| c <= threshold).collect()
    }

    /// Number of entries that pass the filter.
    pub fn pass_count(counts: &[u32], threshold: u32) -> usize {
        counts.iter().filter(|&&c| c <= threshold).count()
    }

    /// Fused count-and-filter: invoke `emit(slot, count)` for every count at
    /// or below `threshold` and return how many passed, without materializing
    /// a `Vec<bool>`. This is the form the scan hot path uses.
    pub fn filter_passing(
        counts: &[u32],
        threshold: u32,
        mut emit: impl FnMut(usize, u32),
    ) -> usize {
        let mut passed = 0usize;
        for (slot, &count) in counts.iter().enumerate() {
            if count <= threshold {
                passed += 1;
                emit(slot, count);
            }
        }
        passed
    }

    /// Threshold-aware fused scoring: score the first `slot_limit` chunks of
    /// one sensed page against every query (each page word loaded once, as
    /// in [`FailBitCounter::count_fused_into`]) and emit only the
    /// [`FusedHit`]s at or below that query's own threshold.
    ///
    /// This is the comparator form the windowed adaptive scan uses: every
    /// query's threshold is constant for the duration of one page window, so
    /// the pass/fail check folds into the scoring pass and failing distances
    /// are never materialized. Callers still account one fail-bit count and
    /// one pass/fail check per `(page, query)` pair — fusing the comparison
    /// changes where the work happens, not how much of it the peripheral
    /// performs.
    ///
    /// `acc` and `out` are reusable buffers (see
    /// [`reis_kernels::fused_hamming_filter_into`] for the exact contract
    /// and panics).
    #[allow(clippy::too_many_arguments)]
    pub fn filter_fused(
        latch: &[u8],
        chunk_bytes: usize,
        slot_limit: usize,
        queries: &[&[u8]],
        thresholds: &[u32],
        acc: &mut Vec<u32>,
        out: &mut Vec<FusedHit>,
    ) {
        reis_kernels::fused_hamming_filter_into(
            latch,
            chunk_bytes,
            slot_limit,
            queries,
            thresholds,
            acc,
            out,
        );
    }
}

/// The inter-latch XOR logic (normally used for on-chip data randomization),
/// exposed as a standalone helper for callers that operate on raw buffers
/// rather than on a [`crate::latch::PageBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorLogic;

impl XorLogic {
    /// XOR two equally sized buffers into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths; the latches of one plane
    /// always have identical sizes.
    pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        xor_bytes_into(a, b, &mut out);
        out
    }

    /// Allocation-free variant of [`XorLogic::xor`]: XOR into a reused
    /// output buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths.
    pub fn xor_into(a: &[u8], b: &[u8], out: &mut Vec<u8>) {
        xor_bytes_into(a, b, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_per_chunk_is_hamming_distance_of_xor() {
        let a = [0b1111_1111u8, 0b0000_0000, 0b1010_1010, 0b0101_0101];
        let b = [0b1111_0000u8, 0b0000_1111, 0b1010_1010, 0b1010_1010];
        let xored = XorLogic::xor(&a, &b);
        let counts = FailBitCounter::count_per_chunk(&xored, 2);
        assert_eq!(counts, vec![8, 8]);
        assert_eq!(FailBitCounter::count_total(&xored), 16);
    }

    #[test]
    fn trailing_partial_chunk_is_counted() {
        let latch = [0xFFu8, 0xFF, 0x0F];
        let counts = FailBitCounter::count_per_chunk(&latch, 2);
        assert_eq!(counts, vec![16, 4]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_size_panics() {
        FailBitCounter::count_per_chunk(&[1, 2, 3], 0);
    }

    #[test]
    fn pass_fail_threshold_is_inclusive() {
        let counts = vec![10, 200, 42, 43];
        assert_eq!(
            PassFailChecker::passes(&counts, 42),
            vec![true, false, true, false]
        );
        assert_eq!(PassFailChecker::pass_count(&counts, 42), 2);
        assert_eq!(PassFailChecker::pass_count(&counts, 0), 0);
        assert_eq!(PassFailChecker::pass_count(&counts, u32::MAX), 4);
    }

    #[test]
    fn word_kernels_match_bytewise_reference_on_odd_tails() {
        // Lengths straddling word boundaries exercise the tail handling.
        for len in [1usize, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let reference: u64 = data.iter().map(|b| b.count_ones() as u64).sum();
            assert_eq!(popcount_bytes(&data), reference, "len {len}");
            for chunk in [1usize, 3, 8, 13, 32] {
                let got = FailBitCounter::count_per_chunk(&data, chunk);
                let want: Vec<u32> = data
                    .chunks(chunk)
                    .map(|c| c.iter().map(|b| b.count_ones()).sum())
                    .collect();
                assert_eq!(got, want, "len {len} chunk {chunk}");
            }
            let other: Vec<u8> = (0..len).map(|i| (i * 101 + 3) as u8).collect();
            let xor_ref: Vec<u8> = data.iter().zip(&other).map(|(a, b)| a ^ b).collect();
            assert_eq!(XorLogic::xor(&data, &other), xor_ref, "len {len}");
        }
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let mut counts = vec![99u32; 4];
        FailBitCounter::count_per_chunk_into(&[0xFF, 0x01], 1, &mut counts);
        assert_eq!(counts, vec![8, 1]);
        let mut out = vec![7u8; 10];
        XorLogic::xor_into(&[0xF0, 0x0F], &[0xFF, 0xFF], &mut out);
        assert_eq!(out, vec![0x0F, 0xF0]);
    }

    #[test]
    fn filter_passing_matches_passes() {
        let counts = vec![10, 200, 42, 43, 0];
        let mut got = Vec::new();
        let passed = PassFailChecker::filter_passing(&counts, 42, |slot, c| got.push((slot, c)));
        assert_eq!(passed, 3);
        assert_eq!(got, vec![(0, 10), (2, 42), (4, 0)]);
        let flags = PassFailChecker::passes(&counts, 42);
        for (slot, &flag) in flags.iter().enumerate() {
            assert_eq!(flag, got.iter().any(|&(s, _)| s == slot));
        }
    }

    #[test]
    fn fused_count_matches_per_query_counts() {
        let page: Vec<u8> = (0..64).map(|i| (i * 13 + 5) as u8).collect();
        let queries: Vec<Vec<u8>> = (0..3)
            .map(|q| (0..16).map(|i| (i * 7 + q) as u8).collect())
            .collect();
        let query_refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
        let mut fused = Vec::new();
        FailBitCounter::count_fused_into(&page, 16, &query_refs, &mut fused);
        let n_chunks = page.len() / 16;
        for (q, query) in queries.iter().enumerate() {
            let tiled: Vec<u8> = (0..page.len()).map(|i| query[i % 16]).collect();
            let expected = FailBitCounter::count_per_chunk(&XorLogic::xor(&page, &tiled), 16);
            assert_eq!(
                &fused[q * n_chunks..(q + 1) * n_chunks],
                &expected[..],
                "query {q}"
            );
        }
    }

    #[test]
    fn xor_of_identical_buffers_is_zero() {
        let a = vec![0xAB; 64];
        let out = XorLogic::xor(&a, &a);
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(FailBitCounter::count_total(&out), 0);
    }

    #[test]
    #[should_panic(expected = "identical sizes")]
    fn xor_panics_on_length_mismatch() {
        XorLogic::xor(&[1, 2], &[1, 2, 3]);
    }
}
