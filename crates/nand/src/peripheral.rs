//! On-die peripheral logic reused by REIS for computation.
//!
//! Modern NAND dies already contain (Sec. 2.3): a *fail-bit counter* that
//! counts set bits during program verification, a *pass/fail checker* that
//! compares the count against a threshold to steer ISPP, and XOR logic
//! between the latches used for on-chip data randomization. REIS repurposes
//! the XOR logic to compute bitwise differences, the fail-bit counter to turn
//! those differences into Hamming distances, and the pass/fail checker to
//! implement distance filtering.
//!
//! # Hot-path invariants
//!
//! These helpers sit at the bottom of the query scan loop, so they follow
//! the word-kernel discipline the rest of the hot path relies on:
//!
//! * All bit counting and XOR-ing operates on `u64` words (8 bytes at a
//!   time) with exact byte-wise handling of any trailing partial word —
//!   mirroring how the physical peripheral processes a whole bitline stripe
//!   per cycle.
//! * The `_into` variants write into caller-provided buffers and the fused
//!   [`PassFailChecker::filter_passing`] never materializes a `Vec<bool>`,
//!   so a steady-state page scan performs no heap allocation here.

use serde::{Deserialize, Serialize};

/// Word-parallel popcount body, shared by the portable and the
/// POPCNT-enabled entry points: `u64` words four at a time with independent
/// accumulators so the popcounts pipeline, then a byte-wise tail.
#[inline(always)]
fn popcount_bytes_core(bytes: &[u8]) -> u64 {
    #[inline(always)]
    fn word(chunk: &[u8]) -> u64 {
        u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
    }
    let mut blocks = bytes.chunks_exact(32);
    let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
    for block in blocks.by_ref() {
        s0 += word(&block[0..8]).count_ones() as u64;
        s1 += word(&block[8..16]).count_ones() as u64;
        s2 += word(&block[16..24]).count_ones() as u64;
        s3 += word(&block[24..32]).count_ones() as u64;
    }
    let mut words = blocks.remainder().chunks_exact(8);
    let mut total = s0 + s1 + s2 + s3;
    for w in words.by_ref() {
        total += word(w).count_ones() as u64;
    }
    for &b in words.remainder() {
        total += b.count_ones() as u64;
    }
    total
}

/// `popcount_bytes_core` compiled with the hardware POPCNT instruction
/// (baseline x86-64 only has the multi-op SWAR fallback for `count_ones`).
///
/// # Safety
///
/// The caller must ensure the CPU supports the `popcnt` feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn popcount_bytes_popcnt(bytes: &[u8]) -> u64 {
    popcount_bytes_core(bytes)
}

/// Set-bit count of a byte slice, processed as `u64` words with a byte-wise
/// tail; uses the hardware POPCNT instruction when the CPU has it.
#[inline]
pub fn popcount_bytes(bytes: &[u8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: feature presence checked at runtime just above.
        return unsafe { popcount_bytes_popcnt(bytes) };
    }
    popcount_bytes_core(bytes)
}

/// XOR `a` and `b` into `out` (cleared and resized first), processed as
/// `u64` words with a byte-wise tail.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
#[inline]
pub fn xor_bytes_into(a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    assert_eq!(a.len(), b.len(), "latch contents must have identical sizes");
    out.clear();
    out.resize(a.len(), 0);
    let mut aw = a.chunks_exact(8);
    let mut bw = b.chunks_exact(8);
    let mut ow = out.chunks_exact_mut(8);
    for ((x, y), o) in aw.by_ref().zip(bw.by_ref()).zip(ow.by_ref()) {
        let xw = u64::from_le_bytes(x.try_into().expect("8-byte chunk"));
        let yw = u64::from_le_bytes(y.try_into().expect("8-byte chunk"));
        o.copy_from_slice(&(xw ^ yw).to_le_bytes());
    }
    for ((x, y), o) in aw
        .remainder()
        .iter()
        .zip(bw.remainder())
        .zip(ow.into_remainder())
    {
        *o = x ^ y;
    }
}

/// The on-die fail-bit counter, repurposed as a per-mini-page popcount
/// engine.
///
/// # Examples
///
/// ```
/// use reis_nand::peripheral::FailBitCounter;
///
/// // Two 2-byte "embeddings" whose XOR results are held in a latch.
/// let latch = [0b1111_0000u8, 0b0000_0001, 0b0000_0000, 0b1010_1010];
/// let counts = FailBitCounter::count_per_chunk(&latch, 2);
/// assert_eq!(counts, vec![5, 4]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailBitCounter;

impl FailBitCounter {
    /// Count the number of set bits in every `chunk_bytes`-sized chunk of the
    /// latch contents.
    ///
    /// When the latch holds the XOR of a broadcast query with a page of
    /// binary embeddings, each chunk corresponds to one embedding and the
    /// count is exactly the Hamming distance between the query and that
    /// embedding.
    ///
    /// A trailing partial chunk (when `latch.len()` is not a multiple of
    /// `chunk_bytes`) is counted as its own entry.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn count_per_chunk(latch: &[u8], chunk_bytes: usize) -> Vec<u32> {
        let mut out = Vec::new();
        Self::count_per_chunk_into(latch, chunk_bytes, &mut out);
        out
    }

    /// Allocation-free variant of [`FailBitCounter::count_per_chunk`]: the
    /// counts are written into `out` (cleared first), so a page-scan loop can
    /// reuse one buffer for every page. The POPCNT dispatch is hoisted out of
    /// the per-chunk loop.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn count_per_chunk_into(latch: &[u8], chunk_bytes: usize, out: &mut Vec<u32>) {
        #[inline(always)]
        fn core(latch: &[u8], chunk_bytes: usize, out: &mut Vec<u32>) {
            out.extend(
                latch
                    .chunks(chunk_bytes)
                    .map(|chunk| popcount_bytes_core(chunk) as u32),
            );
        }
        /// # Safety: caller checks the `popcnt` feature.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "popcnt")]
        unsafe fn core_popcnt(latch: &[u8], chunk_bytes: usize, out: &mut Vec<u32>) {
            core(latch, chunk_bytes, out)
        }

        assert!(chunk_bytes > 0, "chunk size must be non-zero");
        out.clear();
        out.reserve(latch.len().div_ceil(chunk_bytes));
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: feature presence checked at runtime just above.
            unsafe { core_popcnt(latch, chunk_bytes, out) };
            return;
        }
        core(latch, chunk_bytes, out);
    }

    /// Count the set bits of the entire latch (the original use of the
    /// fail-bit counter during program verification).
    pub fn count_total(latch: &[u8]) -> u64 {
        popcount_bytes(latch)
    }
}

/// The on-die pass/fail checker, repurposed as the distance-filtering
/// comparator (Sec. 4.3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassFailChecker;

impl PassFailChecker {
    /// For every counted value, report whether it *passes* the filter, i.e.
    /// whether the value is less than or equal to `threshold`.
    ///
    /// In REIS a passing entry is an embedding whose Hamming distance from
    /// the query is small enough to be forwarded to the SSD controller.
    pub fn passes(counts: &[u32], threshold: u32) -> Vec<bool> {
        counts.iter().map(|&c| c <= threshold).collect()
    }

    /// Number of entries that pass the filter.
    pub fn pass_count(counts: &[u32], threshold: u32) -> usize {
        counts.iter().filter(|&&c| c <= threshold).count()
    }

    /// Fused count-and-filter: invoke `emit(slot, count)` for every count at
    /// or below `threshold` and return how many passed, without materializing
    /// a `Vec<bool>`. This is the form the scan hot path uses.
    pub fn filter_passing(
        counts: &[u32],
        threshold: u32,
        mut emit: impl FnMut(usize, u32),
    ) -> usize {
        let mut passed = 0usize;
        for (slot, &count) in counts.iter().enumerate() {
            if count <= threshold {
                passed += 1;
                emit(slot, count);
            }
        }
        passed
    }
}

/// The inter-latch XOR logic (normally used for on-chip data randomization),
/// exposed as a standalone helper for callers that operate on raw buffers
/// rather than on a [`crate::latch::PageBuffer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct XorLogic;

impl XorLogic {
    /// XOR two equally sized buffers into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths; the latches of one plane
    /// always have identical sizes.
    pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        xor_bytes_into(a, b, &mut out);
        out
    }

    /// Allocation-free variant of [`XorLogic::xor`]: XOR into a reused
    /// output buffer (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if the buffers have different lengths.
    pub fn xor_into(a: &[u8], b: &[u8], out: &mut Vec<u8>) {
        xor_bytes_into(a, b, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_per_chunk_is_hamming_distance_of_xor() {
        let a = [0b1111_1111u8, 0b0000_0000, 0b1010_1010, 0b0101_0101];
        let b = [0b1111_0000u8, 0b0000_1111, 0b1010_1010, 0b1010_1010];
        let xored = XorLogic::xor(&a, &b);
        let counts = FailBitCounter::count_per_chunk(&xored, 2);
        assert_eq!(counts, vec![8, 8]);
        assert_eq!(FailBitCounter::count_total(&xored), 16);
    }

    #[test]
    fn trailing_partial_chunk_is_counted() {
        let latch = [0xFFu8, 0xFF, 0x0F];
        let counts = FailBitCounter::count_per_chunk(&latch, 2);
        assert_eq!(counts, vec![16, 4]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_size_panics() {
        FailBitCounter::count_per_chunk(&[1, 2, 3], 0);
    }

    #[test]
    fn pass_fail_threshold_is_inclusive() {
        let counts = vec![10, 200, 42, 43];
        assert_eq!(
            PassFailChecker::passes(&counts, 42),
            vec![true, false, true, false]
        );
        assert_eq!(PassFailChecker::pass_count(&counts, 42), 2);
        assert_eq!(PassFailChecker::pass_count(&counts, 0), 0);
        assert_eq!(PassFailChecker::pass_count(&counts, u32::MAX), 4);
    }

    #[test]
    fn word_kernels_match_bytewise_reference_on_odd_tails() {
        // Lengths straddling word boundaries exercise the tail handling.
        for len in [1usize, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let reference: u64 = data.iter().map(|b| b.count_ones() as u64).sum();
            assert_eq!(popcount_bytes(&data), reference, "len {len}");
            for chunk in [1usize, 3, 8, 13, 32] {
                let got = FailBitCounter::count_per_chunk(&data, chunk);
                let want: Vec<u32> = data
                    .chunks(chunk)
                    .map(|c| c.iter().map(|b| b.count_ones()).sum())
                    .collect();
                assert_eq!(got, want, "len {len} chunk {chunk}");
            }
            let other: Vec<u8> = (0..len).map(|i| (i * 101 + 3) as u8).collect();
            let xor_ref: Vec<u8> = data.iter().zip(&other).map(|(a, b)| a ^ b).collect();
            assert_eq!(XorLogic::xor(&data, &other), xor_ref, "len {len}");
        }
    }

    #[test]
    fn into_variants_reuse_buffers() {
        let mut counts = vec![99u32; 4];
        FailBitCounter::count_per_chunk_into(&[0xFF, 0x01], 1, &mut counts);
        assert_eq!(counts, vec![8, 1]);
        let mut out = vec![7u8; 10];
        XorLogic::xor_into(&[0xF0, 0x0F], &[0xFF, 0xFF], &mut out);
        assert_eq!(out, vec![0x0F, 0xF0]);
    }

    #[test]
    fn filter_passing_matches_passes() {
        let counts = vec![10, 200, 42, 43, 0];
        let mut got = Vec::new();
        let passed = PassFailChecker::filter_passing(&counts, 42, |slot, c| got.push((slot, c)));
        assert_eq!(passed, 3);
        assert_eq!(got, vec![(0, 10), (2, 42), (4, 0)]);
        let flags = PassFailChecker::passes(&counts, 42);
        for (slot, &flag) in flags.iter().enumerate() {
            assert_eq!(flag, got.iter().any(|&(s, _)| s == slot));
        }
    }

    #[test]
    fn xor_of_identical_buffers_is_zero() {
        let a = vec![0xAB; 64];
        let out = XorLogic::xor(&a, &a);
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(FailBitCounter::count_total(&out), 0);
    }

    #[test]
    #[should_panic(expected = "identical sizes")]
    fn xor_panics_on_length_mismatch() {
        XorLogic::xor(&[1, 2], &[1, 2, 3]);
    }
}
