//! The flash array: pages, blocks, planes, dies and the whole device.
//!
//! [`FlashDevice`] is the functional-plus-timing model of the NAND flash
//! array of one SSD. Every operation both mutates the simulated state (page
//! contents, latch contents, erase counters) and returns the simulated
//! latency of the operation, so higher layers can compose latencies with or
//! without pipelining while relying on functionally correct data.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::cell::ProgramScheme;
use crate::error::{NandError, Result};
use crate::geometry::{BlockAddr, Geometry, PageAddr, PlaneAddr};
use crate::latch::{Latch, PageBuffer};
use crate::peripheral::{FailBitCounter, PassFailChecker, XorLogic};
use crate::reliability::{ReliabilityModel, SplitMix64};
use crate::stats::FlashStats;
use crate::timing::{Nanos, TimingParams};

/// One physical flash page: user data, OOB bytes and programming state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Page {
    data: Option<Vec<u8>>,
    oob: Option<Vec<u8>>,
    scheme: Option<ProgramScheme>,
}

impl Page {
    fn is_programmed(&self) -> bool {
        self.data.is_some()
    }

    fn reset(&mut self) {
        self.data = None;
        self.oob = None;
        self.scheme = None;
    }
}

/// One erase block: a run of pages plus its program/erase cycle counter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Block {
    pages: Vec<Page>,
    erase_count: u64,
}

impl Block {
    fn new(pages_per_block: usize) -> Self {
        Block {
            pages: vec![Page::default(); pages_per_block],
            erase_count: 0,
        }
    }
}

/// One plane: lazily allocated blocks plus the plane's page buffer.
///
/// Blocks are held behind [`Arc`] with copy-on-write mutation
/// ([`Arc::make_mut`]): cloning a device for a batch-search worker then
/// costs one refcount bump per programmed block instead of a deep copy of
/// the stored pages, and read-only scans on the replicas share the flash
/// contents with the primary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Plane {
    buffer: PageBuffer,
    blocks: Vec<Option<Arc<Block>>>,
}

impl Plane {
    fn new(addr: PlaneAddr, geometry: &Geometry) -> Self {
        Plane {
            buffer: PageBuffer::new(addr, geometry.page_size_bytes),
            blocks: vec![None; geometry.blocks_per_plane],
        }
    }

    fn block_mut(&mut self, block: usize, pages_per_block: usize) -> &mut Block {
        Arc::make_mut(
            self.blocks[block].get_or_insert_with(|| Arc::new(Block::new(pages_per_block))),
        )
    }

    fn block(&self, block: usize) -> Option<&Block> {
        self.blocks.get(block).and_then(|b| b.as_deref())
    }
}

/// Metadata of a page read whose payload was written into caller-supplied
/// buffers (the allocation-free variant of [`PageReadout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageReadMeta {
    /// The scheme the page was programmed with.
    pub scheme: ProgramScheme,
    /// Number of raw bit errors injected into this read.
    pub bit_errors: usize,
    /// Simulated latency of the read, including the channel transfer.
    pub latency: Nanos,
}

/// Result of a full page read that reaches the SSD controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageReadout {
    /// The (possibly error-injected) user data of the page.
    pub data: Vec<u8>,
    /// The OOB bytes of the page.
    pub oob: Vec<u8>,
    /// The scheme the page was programmed with.
    pub scheme: ProgramScheme,
    /// Number of raw bit errors injected into this read.
    pub bit_errors: usize,
    /// Simulated latency of the read, including the channel transfer.
    pub latency: Nanos,
}

/// The functional + timing model of an SSD's NAND flash array.
///
/// # Examples
///
/// ```
/// use reis_nand::array::FlashDevice;
/// use reis_nand::cell::ProgramScheme;
/// use reis_nand::geometry::{Geometry, PageAddr};
///
/// # fn main() -> Result<(), reis_nand::error::NandError> {
/// let mut device = FlashDevice::new(Geometry::tiny(), Default::default());
/// let addr = PageAddr::new(0, 0, 0, 0, 0);
/// let data = vec![0xA5; device.geometry().page_size_bytes];
/// device.program_page(addr, &data, &[], ProgramScheme::EnhancedSlc)?;
/// let readout = device.read_page(addr)?;
/// assert_eq!(readout.data, data);
/// assert_eq!(readout.bit_errors, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashDevice {
    geometry: Geometry,
    timing: TimingParams,
    reliability: ReliabilityModel,
    rng: SplitMix64,
    planes: Vec<Plane>,
    stats: FlashStats,
}

impl FlashDevice {
    /// Create a device with the given geometry and timing parameters, the
    /// nominal reliability model, and a fixed error-injection seed.
    pub fn new(geometry: Geometry, timing: TimingParams) -> Self {
        Self::with_reliability(geometry, timing, ReliabilityModel::nominal(), 0xC0FFEE)
    }

    /// Create a device with full control over the reliability model and the
    /// error-injection seed.
    pub fn with_reliability(
        geometry: Geometry,
        timing: TimingParams,
        reliability: ReliabilityModel,
        seed: u64,
    ) -> Self {
        let planes = geometry
            .planes()
            .map(|addr| Plane::new(addr, &geometry))
            .collect();
        FlashDevice {
            geometry,
            timing,
            reliability,
            rng: SplitMix64::new(seed),
            planes,
            stats: FlashStats::new(),
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing parameters in use.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> &FlashStats {
        &self.stats
    }

    /// Reset the operation counters (the stored data is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = FlashStats::new();
    }

    /// Merge externally measured operation counters into this device's
    /// statistics. Batch search runs queries on per-worker device replicas;
    /// their per-query deltas are folded back here so the primary device's
    /// counters stay authoritative.
    pub fn absorb_stats(&mut self, delta: &FlashStats) {
        self.stats.accumulate(delta);
    }

    /// Re-seed the read-error-injection generator. Cloned devices (batch
    /// search workers) inherit the primary's RNG state; giving every replica
    /// a distinct seed decorrelates their injected error streams.
    pub fn reseed_error_rng(&mut self, seed: u64) {
        self.rng = SplitMix64::new(seed);
    }

    fn plane_index(&self, addr: PlaneAddr) -> Result<usize> {
        self.geometry.check_plane(addr)?;
        Ok(self.geometry.plane_index(addr))
    }

    /// Immutable access to the page buffer of a plane.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] for an invalid plane address.
    pub fn page_buffer(&self, addr: PlaneAddr) -> Result<&PageBuffer> {
        let idx = self.plane_index(addr)?;
        Ok(&self.planes[idx].buffer)
    }

    /// Whether a page has been programmed since its block was last erased.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] for an invalid page address.
    pub fn is_programmed(&self, addr: PageAddr) -> Result<bool> {
        self.geometry.check_page(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        Ok(self.planes[idx]
            .block(addr.block)
            .map(|b| b.pages[addr.page].is_programmed())
            .unwrap_or(false))
    }

    /// Erase a block, clearing all of its pages and bumping its erase count.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] for an invalid block address.
    pub fn erase_block(&mut self, addr: BlockAddr) -> Result<Nanos> {
        self.geometry.check_plane(addr.plane_addr())?;
        if addr.block >= self.geometry.blocks_per_plane {
            return Err(NandError::BlockOutOfRange(addr));
        }
        let pages_per_block = self.geometry.pages_per_block;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let block = self.planes[idx].block_mut(addr.block, pages_per_block);
        for page in &mut block.pages {
            page.reset();
        }
        block.erase_count += 1;
        self.stats.block_erases += 1;
        Ok(self.timing.t_erase + self.timing.t_command_overhead)
    }

    /// Number of erase cycles a block has seen (0 if never touched).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] for an invalid block address.
    pub fn erase_count(&self, addr: BlockAddr) -> Result<u64> {
        self.geometry.check_plane(addr.plane_addr())?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        Ok(self.planes[idx]
            .block(addr.block)
            .map(|b| b.erase_count)
            .unwrap_or(0))
    }

    /// Program a page with user data and OOB metadata using `scheme`.
    ///
    /// The returned latency includes the channel transfer of the data into
    /// the die and the program time of the chosen scheme.
    ///
    /// # Errors
    ///
    /// * [`NandError::AddressOutOfRange`] for an invalid address.
    /// * [`NandError::PageAlreadyProgrammed`] if the page was not erased
    ///   since its last program (NAND pages cannot be overwritten in place).
    /// * [`NandError::DataTooLarge`] / [`NandError::OobTooLarge`] if the data
    ///   or OOB payload exceed the page / OOB capacity.
    pub fn program_page(
        &mut self,
        addr: PageAddr,
        data: &[u8],
        oob: &[u8],
        scheme: ProgramScheme,
    ) -> Result<Nanos> {
        self.geometry.check_page(addr)?;
        if data.len() > self.geometry.page_size_bytes {
            return Err(NandError::DataTooLarge {
                provided: data.len(),
                capacity: self.geometry.page_size_bytes,
            });
        }
        if oob.len() > self.geometry.oob_size_bytes {
            return Err(NandError::OobTooLarge {
                provided: oob.len(),
                capacity: self.geometry.oob_size_bytes,
            });
        }
        let pages_per_block = self.geometry.pages_per_block;
        let page_size = self.geometry.page_size_bytes;
        let oob_size = self.geometry.oob_size_bytes;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let block = self.planes[idx].block_mut(addr.block, pages_per_block);
        let page = &mut block.pages[addr.page];
        if page.is_programmed() {
            return Err(NandError::PageAlreadyProgrammed(addr));
        }
        let mut stored = vec![0u8; page_size];
        stored[..data.len()].copy_from_slice(data);
        let mut stored_oob = vec![0u8; oob_size];
        stored_oob[..oob.len()].copy_from_slice(oob);
        page.data = Some(stored);
        page.oob = Some(stored_oob);
        page.scheme = Some(scheme);

        self.stats.page_programs += 1;
        self.stats.bytes_from_controller += (data.len() + oob.len()) as u64;
        let transfer = self.timing.channel_transfer(data.len() + oob.len());
        Ok(transfer + self.timing.program_latency(scheme) + self.timing.t_command_overhead)
    }

    fn sense_into_buffer(&mut self, addr: PageAddr) -> Result<(ProgramScheme, usize, Nanos)> {
        self.geometry.check_page(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        // Split-borrow the plane so the stored page (immutable) can be copied
        // into the plane's buffer (mutable) without cloning it first: a scan
        // re-senses thousands of pages into the same latch buffers.
        let Plane { buffer, blocks } = &mut self.planes[idx];
        let scheme = {
            let block = blocks
                .get(addr.block)
                .and_then(|b| b.as_deref())
                .ok_or(NandError::PageNotProgrammed(addr))?;
            let page = &block.pages[addr.page];
            let data = page
                .data
                .as_deref()
                .ok_or(NandError::PageNotProgrammed(addr))?;
            let oob = page.oob.as_deref().unwrap_or(&[]);
            buffer.load_sensing_copy(data, oob);
            page.scheme.unwrap_or_default()
        };
        let bit_errors = if self.reliability.effective_ber(scheme) > 0.0 {
            let sensed = buffer.sensing_mut().expect("sensing latch was just filled");
            self.reliability
                .inject_read_errors(sensed, scheme, &mut self.rng)
        } else {
            0
        };
        self.stats.page_reads += 1;
        self.stats.injected_bit_errors += bit_errors as u64;
        Ok((
            scheme,
            bit_errors,
            self.timing.read_latency(scheme) + self.timing.t_command_overhead,
        ))
    }

    /// Sense a page into its plane's sensing latch without transferring it to
    /// the controller. This is the read half of REIS's in-plane distance
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PageNotProgrammed`] if the page holds no data, or
    /// [`NandError::AddressOutOfRange`] for an invalid address.
    pub fn sense_page(&mut self, addr: PageAddr) -> Result<Nanos> {
        let (_, _, latency) = self.sense_into_buffer(addr)?;
        Ok(latency)
    }

    /// Read a page all the way to the controller: sense it, then transfer the
    /// user data and OOB bytes over the channel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::sense_page`].
    pub fn read_page(&mut self, addr: PageAddr) -> Result<PageReadout> {
        let (scheme, bit_errors, sense_latency) = self.sense_into_buffer(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let buffer = &self.planes[idx].buffer;
        let data = buffer
            .sensing()
            .expect("sensing latch was just filled")
            .to_vec();
        let oob = buffer.oob().unwrap_or(&[]).to_vec();
        let bytes = data.len() + oob.len();
        self.stats.bytes_to_controller += bytes as u64;
        let latency = sense_latency + self.timing.channel_transfer(bytes);
        Ok(PageReadout {
            data,
            oob,
            scheme,
            bit_errors,
            latency,
        })
    }

    /// Read a page all the way to the controller, writing the user data and
    /// OOB bytes into caller-supplied buffers (which are cleared first).
    ///
    /// Functionally and statistically identical to
    /// [`FlashDevice::read_page`], but reuses the caller's allocations so a
    /// pooled readout loop performs no per-page heap allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::sense_page`].
    pub fn read_page_into(
        &mut self,
        addr: PageAddr,
        data: &mut Vec<u8>,
        oob: &mut Vec<u8>,
    ) -> Result<PageReadMeta> {
        let (scheme, bit_errors, sense_latency) = self.sense_into_buffer(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let buffer = &self.planes[idx].buffer;
        data.clear();
        data.extend_from_slice(buffer.sensing().expect("sensing latch was just filled"));
        oob.clear();
        oob.extend_from_slice(buffer.oob().unwrap_or(&[]));
        let bytes = data.len() + oob.len();
        self.stats.bytes_to_controller += bytes as u64;
        Ok(PageReadMeta {
            scheme,
            bit_errors,
            latency: sense_latency + self.timing.channel_transfer(bytes),
        })
    }

    /// Read only the OOB bytes of a page to the controller.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlashDevice::sense_page`].
    pub fn read_oob(&mut self, addr: PageAddr) -> Result<(Vec<u8>, Nanos)> {
        let (_, _, sense_latency) = self.sense_into_buffer(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let oob = self.planes[idx].buffer.oob().unwrap_or(&[]).to_vec();
        self.stats.bytes_to_controller += oob.len() as u64;
        let latency = sense_latency + self.timing.channel_transfer(oob.len());
        Ok((oob, latency))
    }

    /// Broadcast a query payload into the cache latches of every plane of one
    /// die (Input Broadcasting). With `multi_plane` set, all planes latch the
    /// payload simultaneously (MPIBC), paying the die-I/O transfer only once.
    ///
    /// # Errors
    ///
    /// * [`NandError::AddressOutOfRange`] for an invalid channel/die.
    /// * [`NandError::InvalidBroadcastPayload`] if the payload does not
    ///   evenly divide the page size.
    pub fn input_broadcast(
        &mut self,
        channel: usize,
        die: usize,
        payload: &[u8],
        multi_plane: bool,
    ) -> Result<Nanos> {
        self.geometry.check_plane(PlaneAddr::new(channel, die, 0))?;
        for plane in 0..self.geometry.planes_per_die {
            let idx = self
                .geometry
                .plane_index(PlaneAddr::new(channel, die, plane));
            self.planes[idx].buffer.broadcast_into_cache(payload)?;
        }
        self.stats.broadcast_ops += 1;
        self.stats.bytes_from_controller += if multi_plane {
            payload.len() as u64
        } else {
            (payload.len() * self.geometry.planes_per_die) as u64
        };
        Ok(self
            .timing
            .input_broadcast(payload.len(), self.geometry.planes_per_die, multi_plane))
    }

    /// XOR the cache latch (query copies) into the sensing latch (database
    /// embeddings) of one plane, storing the result in the data latch.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::LatchEmpty`] if the plane has not both sensed a
    /// page and received a broadcast.
    pub fn xor_latches(&mut self, addr: PlaneAddr) -> Result<Nanos> {
        let idx = self.plane_index(addr)?;
        self.planes[idx].buffer.xor_cache_into_data()?;
        self.stats.xor_ops += 1;
        Ok(self.timing.t_latch_xor)
    }

    /// Run the fail-bit counter over the data latch of one plane, producing
    /// one set-bit count per `chunk_bytes` chunk (i.e. one Hamming distance
    /// per stored embedding).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::LatchEmpty`] if the data latch is empty.
    pub fn count_fail_bits(
        &mut self,
        addr: PlaneAddr,
        chunk_bytes: usize,
    ) -> Result<(Vec<u32>, Nanos)> {
        let mut counts = Vec::new();
        let latency = self.count_fail_bits_into(addr, chunk_bytes, &mut counts)?;
        Ok((counts, latency))
    }

    /// Allocation-free variant of [`FlashDevice::count_fail_bits`]: the
    /// counts are written into `out` (cleared first), so a page-scan loop can
    /// reuse one buffer for every page.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::LatchEmpty`] if the data latch is empty.
    pub fn count_fail_bits_into(
        &mut self,
        addr: PlaneAddr,
        chunk_bytes: usize,
        out: &mut Vec<u32>,
    ) -> Result<Nanos> {
        let idx = self.plane_index(addr)?;
        let data = self.planes[idx].buffer.read_latch(Latch::Data)?;
        FailBitCounter::count_per_chunk_into(data, chunk_bytes, out);
        self.stats.bit_count_ops += 1;
        Ok(self.timing.t_fail_bit_count)
    }

    /// Apply the pass/fail checker to a set of counts with the given
    /// distance-filter threshold, returning the per-entry pass flags.
    pub fn pass_fail_check(&mut self, counts: &[u32], threshold: u32) -> (Vec<bool>, Nanos) {
        self.stats.pass_fail_ops += 1;
        (
            PassFailChecker::passes(counts, threshold),
            self.timing.t_pass_fail_check,
        )
    }

    /// Fused pass/fail check: invoke `emit(slot, count)` for every count at
    /// or below `threshold`, returning how many passed and the checker
    /// latency. Unlike [`FlashDevice::pass_fail_check`] this never
    /// materializes a `Vec<bool>`, which keeps the scan hot path
    /// allocation-free.
    pub fn pass_fail_filter(
        &mut self,
        counts: &[u32],
        threshold: u32,
        emit: impl FnMut(usize, u32),
    ) -> (usize, Nanos) {
        self.stats.pass_fail_ops += 1;
        let passed = PassFailChecker::filter_passing(counts, threshold, emit);
        (passed, self.timing.t_pass_fail_check)
    }

    /// Transfer `bytes` from a die to the controller over its channel,
    /// returning only the latency (the caller already holds the data, e.g.
    /// TTL entries assembled from latch contents).
    pub fn transfer_to_controller(&mut self, bytes: usize) -> Nanos {
        self.stats.bytes_to_controller += bytes as u64;
        self.timing.channel_transfer(bytes)
    }

    /// Clear every plane's page buffer (all latches and OOB bytes).
    ///
    /// Latch contents are per-query scratch, not persistent state; clearing
    /// them before cloning the device for batch-search workers keeps the
    /// clones as cheap as the copy-on-write block sharing allows.
    pub fn clear_all_latches(&mut self) {
        for plane in &mut self.planes {
            plane.buffer.clear();
        }
    }

    /// Promote the sensing latch of a plane to its cache latch, freeing the
    /// sensing latch for the next read (read-page-cache-sequential mode).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::LatchEmpty`] if the sensing latch is empty.
    pub fn promote_sensing_to_cache(&mut self, addr: PlaneAddr) -> Result<()> {
        let idx = self.plane_index(addr)?;
        self.planes[idx].buffer.promote_sensing_to_cache()
    }

    /// Borrow the stored contents of a page (user data, OOB bytes and the
    /// programming scheme) without copying, error injection, timing, or
    /// statistics.
    ///
    /// This is the readout primitive of read-only scan shards
    /// (see [`crate::sharding`]): shard workers share the device immutably,
    /// compute distances in worker-owned latch scratch instead of the
    /// plane's page buffer, and account their flash activity in shard-local
    /// [`FlashStats`] that the controller absorbs
    /// afterwards. Because no error injection happens here, callers must
    /// only use it for schemes whose reads are error-free (ESP-SLC) if they
    /// need bit-identical results to the latch-based read path.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PageNotProgrammed`] if the page holds no data, or
    /// [`NandError::AddressOutOfRange`] for an invalid address.
    pub fn stored_page(&self, addr: PageAddr) -> Result<(&[u8], &[u8], ProgramScheme)> {
        self.geometry.check_page(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let page = self.planes[idx]
            .block(addr.block)
            .map(|block| &block.pages[addr.page])
            .ok_or(NandError::PageNotProgrammed(addr))?;
        let data = page
            .data
            .as_deref()
            .ok_or(NandError::PageNotProgrammed(addr))?;
        Ok((
            data,
            page.oob.as_deref().unwrap_or(&[]),
            page.scheme.unwrap_or_default(),
        ))
    }

    /// Whether reads of pages programmed with `scheme` are error-free on
    /// this device (no raw bit errors to inject). Scan sharding relies on
    /// this to guarantee that its read-only page accesses produce exactly
    /// the bytes a latch-based sense would.
    pub fn read_is_error_free(&self, scheme: ProgramScheme) -> bool {
        self.reliability.effective_ber(scheme) <= 0.0
    }

    /// Return the pristine stored contents of a page (user data and OOB)
    /// without error injection, timing, or statistics.
    ///
    /// This is a modelling backdoor used by the controller's ECC path: when
    /// the decoder reports a successful correction, the corrected payload is,
    /// by definition, the originally programmed data, which this method hands
    /// back without re-simulating the read.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PageNotProgrammed`] if the page holds no data.
    pub fn pristine_page_data(&self, addr: PageAddr) -> Result<(Vec<u8>, Vec<u8>)> {
        self.geometry.check_page(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let block = self.planes[idx]
            .block(addr.block)
            .ok_or(NandError::PageNotProgrammed(addr))?;
        let page = &block.pages[addr.page];
        let data = page
            .data
            .clone()
            .ok_or(NandError::PageNotProgrammed(addr))?;
        Ok((data, page.oob.clone().unwrap_or_default()))
    }

    /// Write the pristine stored user data of a page into a caller-supplied
    /// buffer (the allocation-free variant of
    /// [`FlashDevice::pristine_page_data`], used by the controller's pooled
    /// ECC readout).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PageNotProgrammed`] if the page holds no data.
    pub fn pristine_page_into(&self, addr: PageAddr, data: &mut Vec<u8>) -> Result<()> {
        self.geometry.check_page(addr)?;
        let idx = self.geometry.plane_index(addr.plane_addr());
        let stored = self.planes[idx]
            .block(addr.block)
            .and_then(|block| block.pages[addr.page].data.as_deref())
            .ok_or(NandError::PageNotProgrammed(addr))?;
        data.clear();
        data.extend_from_slice(stored);
        Ok(())
    }

    /// Number of currently programmed pages in a block (0 for a block that
    /// was never touched or was erased). Garbage collection uses this to
    /// decide when every live page of a block has been invalidated and the
    /// block can be reclaimed by an erase.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::AddressOutOfRange`] for an invalid block address.
    pub fn programmed_pages_in_block(&self, addr: BlockAddr) -> Result<usize> {
        self.geometry.check_plane(addr.plane_addr())?;
        if addr.block >= self.geometry.blocks_per_plane {
            return Err(NandError::BlockOutOfRange(addr));
        }
        let idx = self.geometry.plane_index(addr.plane_addr());
        Ok(self.planes[idx]
            .block(addr.block)
            .map(|b| b.pages.iter().filter(|p| p.is_programmed()).count())
            .unwrap_or(0))
    }

    /// Read the raw XOR of two programmed pages, as the randomizer logic
    /// would produce it, without going through the latches. Primarily a
    /// verification aid for tests.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::PageNotProgrammed`] if either page is empty.
    pub fn xor_pages(&self, a: PageAddr, b: PageAddr) -> Result<Vec<u8>> {
        let read = |addr: PageAddr| -> Result<Vec<u8>> {
            self.geometry.check_page(addr)?;
            let idx = self.geometry.plane_index(addr.plane_addr());
            self.planes[idx]
                .block(addr.block)
                .and_then(|blk| blk.pages[addr.page].data.clone())
                .ok_or(NandError::PageNotProgrammed(addr))
        };
        Ok(XorLogic::xor(&read(a)?, &read(b)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellMode;

    fn device() -> FlashDevice {
        FlashDevice::new(Geometry::tiny(), TimingParams::default())
    }

    fn page0() -> PageAddr {
        PageAddr::new(0, 0, 0, 0, 0)
    }

    #[test]
    fn program_then_read_roundtrips_data_and_oob() {
        let mut dev = device();
        let data = vec![0x3C; 4096];
        let oob = vec![0x11; 64];
        dev.program_page(page0(), &data, &oob, ProgramScheme::EnhancedSlc)
            .unwrap();
        let readout = dev.read_page(page0()).unwrap();
        assert_eq!(readout.data, data);
        assert_eq!(&readout.oob[..64], &oob[..]);
        assert_eq!(readout.bit_errors, 0);
        assert!(readout.latency > Nanos::ZERO);
    }

    #[test]
    fn reprogramming_without_erase_is_rejected() {
        let mut dev = device();
        let data = vec![1u8; 16];
        dev.program_page(page0(), &data, &[], ProgramScheme::EnhancedSlc)
            .unwrap();
        assert!(matches!(
            dev.program_page(page0(), &data, &[], ProgramScheme::EnhancedSlc),
            Err(NandError::PageAlreadyProgrammed(_))
        ));
        dev.erase_block(page0().block_addr()).unwrap();
        dev.program_page(page0(), &data, &[], ProgramScheme::EnhancedSlc)
            .unwrap();
        assert_eq!(dev.erase_count(page0().block_addr()).unwrap(), 1);
    }

    #[test]
    fn reading_unprogrammed_page_fails() {
        let mut dev = device();
        assert!(matches!(
            dev.read_page(page0()),
            Err(NandError::PageNotProgrammed(_))
        ));
    }

    #[test]
    fn oversized_payloads_are_rejected() {
        let mut dev = device();
        let too_big = vec![0u8; 4097];
        assert!(matches!(
            dev.program_page(page0(), &too_big, &[], ProgramScheme::EnhancedSlc),
            Err(NandError::DataTooLarge { .. })
        ));
        let oob_too_big = vec![0u8; 257];
        assert!(matches!(
            dev.program_page(
                page0(),
                &[0u8; 16],
                &oob_too_big,
                ProgramScheme::EnhancedSlc
            ),
            Err(NandError::OobTooLarge { .. })
        ));
    }

    #[test]
    fn in_plane_distance_flow_computes_hamming_distances() {
        let mut dev = device();
        // 32-byte binary embeddings, 128 per 4 KB page.
        let emb_bytes = 32usize;
        let mut page = Vec::with_capacity(4096);
        for i in 0..(4096 / emb_bytes) {
            // Embedding i = i-th byte pattern.
            page.extend(std::iter::repeat_n((i % 256) as u8, emb_bytes));
        }
        dev.program_page(page0(), &page, &[], ProgramScheme::EnhancedSlc)
            .unwrap();

        let query = vec![0u8; emb_bytes];
        dev.input_broadcast(0, 0, &query, true).unwrap();
        dev.sense_page(page0()).unwrap();
        dev.xor_latches(page0().plane_addr()).unwrap();
        let (counts, _) = dev
            .count_fail_bits(page0().plane_addr(), emb_bytes)
            .unwrap();
        assert_eq!(counts.len(), 4096 / emb_bytes);
        // Against an all-zero query the Hamming distance of embedding i is
        // popcount(i) * emb_bytes.
        for (i, &count) in counts.iter().enumerate() {
            let expected = (i as u8).count_ones() * emb_bytes as u32;
            assert_eq!(count, expected, "embedding {i}");
        }
        let (passes, _) = dev.pass_fail_check(&counts, 32);
        assert_eq!(passes.len(), counts.len());
        assert!(passes[0], "identical embedding must pass any filter");
    }

    #[test]
    fn broadcast_reaches_all_planes_of_a_die() {
        let mut dev = device();
        dev.input_broadcast(1, 1, &[0xEE; 64], false).unwrap();
        for plane in 0..dev.geometry().planes_per_die {
            let buf = dev.page_buffer(PlaneAddr::new(1, 1, plane)).unwrap();
            assert!(buf.cache().unwrap().iter().all(|&b| b == 0xEE));
        }
    }

    #[test]
    fn mpibc_is_cheaper_but_functionally_identical() {
        let mut with = device();
        let mut without = device();
        let t_with = with.input_broadcast(0, 0, &[1u8; 128], true).unwrap();
        let t_without = without.input_broadcast(0, 0, &[1u8; 128], false).unwrap();
        assert!(t_with < t_without);
        for plane in 0..with.geometry().planes_per_die {
            let a = with
                .page_buffer(PlaneAddr::new(0, 0, plane))
                .unwrap()
                .cache()
                .unwrap()
                .to_vec();
            let b = without
                .page_buffer(PlaneAddr::new(0, 0, plane))
                .unwrap()
                .cache()
                .unwrap()
                .to_vec();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn tlc_reads_inject_errors_esp_reads_do_not() {
        let geometry = Geometry::tiny();
        let mut dev = FlashDevice::with_reliability(
            geometry,
            TimingParams::default(),
            ReliabilityModel { ber_scale: 1e3 },
            7,
        );
        let data = vec![0u8; 4096];
        let tlc_addr = page0();
        let esp_addr = PageAddr::new(0, 0, 0, 0, 1);
        dev.program_page(tlc_addr, &data, &[], ProgramScheme::Ispp(CellMode::Tlc))
            .unwrap();
        dev.program_page(esp_addr, &data, &[], ProgramScheme::EnhancedSlc)
            .unwrap();
        let mut tlc_errors = 0usize;
        for _ in 0..5 {
            tlc_errors += dev.read_page(tlc_addr).unwrap().bit_errors;
            assert_eq!(dev.read_page(esp_addr).unwrap().bit_errors, 0);
        }
        assert!(tlc_errors > 0, "scaled TLC BER should corrupt some reads");
        assert!(dev.stats().injected_bit_errors > 0);
    }

    #[test]
    fn esp_reads_are_faster_than_tlc_reads() {
        let mut dev = device();
        let data = vec![0u8; 256];
        let esp = PageAddr::new(0, 0, 0, 0, 0);
        let tlc = PageAddr::new(0, 0, 0, 0, 1);
        dev.program_page(esp, &data, &[], ProgramScheme::EnhancedSlc)
            .unwrap();
        dev.program_page(tlc, &data, &[], ProgramScheme::Ispp(CellMode::Tlc))
            .unwrap();
        let t_esp = dev.read_page(esp).unwrap().latency;
        let t_tlc = dev.read_page(tlc).unwrap().latency;
        assert!(t_esp < t_tlc);
    }

    #[test]
    fn stats_track_operations() {
        let mut dev = device();
        let before = *dev.stats();
        dev.program_page(page0(), &[1u8; 128], &[2u8; 8], ProgramScheme::EnhancedSlc)
            .unwrap();
        dev.read_page(page0()).unwrap();
        dev.read_oob(page0()).unwrap();
        dev.erase_block(page0().block_addr()).unwrap();
        let delta = dev.stats().delta_since(&before);
        assert_eq!(delta.page_programs, 1);
        assert_eq!(delta.page_reads, 2);
        assert_eq!(delta.block_erases, 1);
        assert!(delta.bytes_to_controller > 0);
        assert!(delta.bytes_from_controller > 0);
        dev.reset_stats();
        assert_eq!(dev.stats().page_reads, 0);
    }

    #[test]
    fn xor_pages_matches_manual_xor() {
        let mut dev = device();
        let a_addr = PageAddr::new(0, 0, 0, 0, 0);
        let b_addr = PageAddr::new(0, 0, 0, 0, 1);
        let a = vec![0b1111_0000u8; 4096];
        let b = vec![0b1010_1010u8; 4096];
        dev.program_page(a_addr, &a, &[], ProgramScheme::EnhancedSlc)
            .unwrap();
        dev.program_page(b_addr, &b, &[], ProgramScheme::EnhancedSlc)
            .unwrap();
        let x = dev.xor_pages(a_addr, b_addr).unwrap();
        assert!(x.iter().all(|&v| v == 0b0101_1010));
    }

    #[test]
    fn read_page_cache_mode_frees_sensing_latch() {
        let mut dev = device();
        dev.program_page(page0(), &[9u8; 64], &[], ProgramScheme::EnhancedSlc)
            .unwrap();
        dev.sense_page(page0()).unwrap();
        dev.promote_sensing_to_cache(page0().plane_addr()).unwrap();
        let buf = dev.page_buffer(page0().plane_addr()).unwrap();
        assert!(buf.sensing().is_none());
        assert_eq!(buf.cache().unwrap()[0], 9);
    }
}
