//! Flash cell modes and programming schemes.
//!
//! NAND flash cells store one or more bits per cell. The REIS design relies
//! on a *hybrid* SSD: binary embeddings live in a Single-Level-Cell (SLC)
//! partition programmed with Enhanced SLC-mode Programming (ESP), which
//! achieves a zero raw bit error rate and therefore allows in-plane
//! computation without ECC, while document chunks and INT8 embeddings live in
//! a dense Triple-Level-Cell (TLC) partition that goes through the normal
//! controller-side ECC path.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bits stored per flash cell.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum CellMode {
    /// Single-level cell: 1 bit per cell, fastest and most reliable.
    Slc,
    /// Multi-level cell: 2 bits per cell.
    Mlc,
    /// Triple-level cell: 3 bits per cell (the common density point for
    /// data-center SSDs such as the PM9A3 and Micron 9400).
    #[default]
    Tlc,
    /// Quad-level cell: 4 bits per cell.
    Qlc,
}

impl CellMode {
    /// Bits stored per cell in this mode.
    pub fn bits_per_cell(&self) -> u32 {
        match self {
            CellMode::Slc => 1,
            CellMode::Mlc => 2,
            CellMode::Tlc => 3,
            CellMode::Qlc => 4,
        }
    }

    /// Number of page-buffer data latches a die needs to assemble a full
    /// program operation in this mode (one per bit).
    pub fn required_latches(&self) -> usize {
        self.bits_per_cell() as usize
    }

    /// Capacity multiplier relative to SLC for the same physical block.
    pub fn density_factor(&self) -> f64 {
        self.bits_per_cell() as f64
    }
}

impl fmt::Display for CellMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellMode::Slc => "SLC",
            CellMode::Mlc => "MLC",
            CellMode::Tlc => "TLC",
            CellMode::Qlc => "QLC",
        };
        f.write_str(name)
    }
}

/// Programming scheme applied when writing a page.
///
/// The scheme determines the raw bit error rate (BER) of subsequent reads and
/// whether the page contents can be used for in-plane computation without
/// controller-side ECC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramScheme {
    /// Conventional Incremental Step Pulse Programming in the cell's native
    /// mode. Reads have a non-zero raw BER and need ECC in the controller.
    Ispp(CellMode),
    /// Enhanced SLC-mode Programming (Flash-Cosmos / REIS, Sec. 4.1.2):
    /// programs the cell in SLC mode with widened voltage margins, achieving
    /// a zero raw BER in the paper's worst-case characterization (1-year
    /// retention, 10k P/E cycles). Pages programmed this way can be consumed
    /// by in-plane logic without ECC.
    EnhancedSlc,
}

impl ProgramScheme {
    /// The cell mode actually used to store the data.
    pub fn cell_mode(&self) -> CellMode {
        match self {
            ProgramScheme::Ispp(mode) => *mode,
            ProgramScheme::EnhancedSlc => CellMode::Slc,
        }
    }

    /// Whether reads of a page programmed with this scheme are guaranteed to
    /// be error-free without ECC.
    pub fn is_error_free(&self) -> bool {
        matches!(self, ProgramScheme::EnhancedSlc)
    }

    /// Raw bit error rate of a read of a page programmed with this scheme,
    /// before any error correction.
    ///
    /// The values follow the qualitative ordering reported in flash
    /// characterization studies: ESP-SLC is error-free, normal SLC is very
    /// reliable, and error rates grow with bits per cell.
    pub fn raw_bit_error_rate(&self) -> f64 {
        match self {
            ProgramScheme::EnhancedSlc => 0.0,
            ProgramScheme::Ispp(CellMode::Slc) => 1e-8,
            ProgramScheme::Ispp(CellMode::Mlc) => 1e-6,
            ProgramScheme::Ispp(CellMode::Tlc) => 1e-4,
            ProgramScheme::Ispp(CellMode::Qlc) => 1e-3,
        }
    }
}

impl fmt::Display for ProgramScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramScheme::Ispp(mode) => write!(f, "ISPP-{mode}"),
            ProgramScheme::EnhancedSlc => f.write_str("ESP-SLC"),
        }
    }
}

impl Default for ProgramScheme {
    fn default() -> Self {
        ProgramScheme::Ispp(CellMode::Tlc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_cell_are_monotonic() {
        let modes = [CellMode::Slc, CellMode::Mlc, CellMode::Tlc, CellMode::Qlc];
        for pair in modes.windows(2) {
            assert!(pair[0].bits_per_cell() < pair[1].bits_per_cell());
        }
    }

    #[test]
    fn esp_is_error_free_and_slc() {
        let esp = ProgramScheme::EnhancedSlc;
        assert!(esp.is_error_free());
        assert_eq!(esp.raw_bit_error_rate(), 0.0);
        assert_eq!(esp.cell_mode(), CellMode::Slc);
    }

    #[test]
    fn ber_grows_with_density() {
        let slc = ProgramScheme::Ispp(CellMode::Slc).raw_bit_error_rate();
        let mlc = ProgramScheme::Ispp(CellMode::Mlc).raw_bit_error_rate();
        let tlc = ProgramScheme::Ispp(CellMode::Tlc).raw_bit_error_rate();
        let qlc = ProgramScheme::Ispp(CellMode::Qlc).raw_bit_error_rate();
        assert!(slc < mlc && mlc < tlc && tlc < qlc);
        assert!(
            slc > 0.0,
            "normal SLC is reliable but not guaranteed error-free"
        );
    }

    #[test]
    fn required_latches_match_bits() {
        assert_eq!(CellMode::Tlc.required_latches(), 3);
        assert_eq!(CellMode::Slc.required_latches(), 1);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellMode::Tlc.to_string(), "TLC");
        assert_eq!(ProgramScheme::EnhancedSlc.to_string(), "ESP-SLC");
        assert_eq!(ProgramScheme::Ispp(CellMode::Qlc).to_string(), "ISPP-QLC");
    }
}
