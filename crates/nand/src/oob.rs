//! Out-of-band (OOB) area layout for the embedding–document linkage.
//!
//! Every flash page carries a spare OOB area (e.g. 2208 bytes for a 16 KB
//! page) normally reserved for ECC parity and mapping metadata. REIS
//! repurposes a small slice of it (Sec. 4.1.3 and 4.2.1): for every
//! embedding stored in the page it records the address of the associated
//! document chunk (DADR), the address of the INT8 copy of the embedding used
//! for reranking (RADR), and the 8-bit tag of the IVF cluster the embedding
//! belongs to. Because the OOB bytes are sensed together with the page, the
//! linkage is available in the page buffer the moment the distance
//! computation finishes — no separate lookup structure is needed.

use serde::{Deserialize, Serialize};

use crate::error::{NandError, Result};

/// Linkage metadata for one embedding, stored in the OOB area of the page
/// that holds the embedding.
///
/// # Examples
///
/// ```
/// use reis_nand::oob::OobEntry;
///
/// let entry = OobEntry { dadr: 0xDEAD_BEEF, radr: 0x1234_5678, tag: 42 };
/// let bytes = entry.to_bytes();
/// assert_eq!(OobEntry::from_bytes(&bytes), entry);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct OobEntry {
    /// Document address: the index of the document chunk associated with
    /// this embedding (interpreted by the SSD layer as a sub-page index in
    /// the document region).
    pub dadr: u32,
    /// Rescoring address: the index of the INT8 copy of this embedding in the
    /// INT8 sub-region, used by the reranking kernel.
    pub radr: u32,
    /// 8-bit cluster tag identifying the IVF cluster this embedding belongs
    /// to (or, on a centroid page, the tag of the cluster the centroid
    /// represents).
    pub tag: u8,
}

impl OobEntry {
    /// Serialized size of one entry in bytes.
    pub const SIZE: usize = 9;

    /// Serialize the entry to its on-flash byte representation
    /// (little-endian fields, DADR then RADR then TAG).
    pub fn to_bytes(&self) -> [u8; Self::SIZE] {
        let mut out = [0u8; Self::SIZE];
        out[0..4].copy_from_slice(&self.dadr.to_le_bytes());
        out[4..8].copy_from_slice(&self.radr.to_le_bytes());
        out[8] = self.tag;
        out
    }

    /// Deserialize an entry from its on-flash byte representation.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than [`OobEntry::SIZE`].
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() >= Self::SIZE,
            "OOB entry needs {} bytes",
            Self::SIZE
        );
        OobEntry {
            dadr: u32::from_le_bytes(bytes[0..4].try_into().expect("slice length checked")),
            radr: u32::from_le_bytes(bytes[4..8].try_into().expect("slice length checked")),
            tag: bytes[8],
        }
    }
}

/// Describes how linkage entries are packed into the OOB area of one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OobLayout {
    /// Total OOB bytes available per page.
    pub oob_size_bytes: usize,
    /// Number of embeddings (mini-pages) stored in each page, i.e. the
    /// number of linkage entries that must fit.
    pub entries_per_page: usize,
}

impl OobLayout {
    /// Create a layout and verify that the entries fit in the OOB area.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::OobTooLarge`] if `entries_per_page` linkage
    /// entries do not fit into `oob_size_bytes`.
    pub fn new(oob_size_bytes: usize, entries_per_page: usize) -> Result<Self> {
        let needed = entries_per_page * OobEntry::SIZE;
        if needed > oob_size_bytes {
            return Err(NandError::OobTooLarge {
                provided: needed,
                capacity: oob_size_bytes,
            });
        }
        Ok(OobLayout {
            oob_size_bytes,
            entries_per_page,
        })
    }

    /// Bytes of the OOB area consumed by linkage entries.
    pub fn used_bytes(&self) -> usize {
        self.entries_per_page * OobEntry::SIZE
    }

    /// Fraction of the OOB area consumed by linkage entries (the paper
    /// reports 0.7 % for 4 KB embeddings with 4-byte addresses; with the
    /// richer 9-byte entries used here the overhead stays below 6 % even for
    /// 128 embeddings per page).
    pub fn overhead_fraction(&self) -> f64 {
        self.used_bytes() as f64 / self.oob_size_bytes as f64
    }

    /// Pack linkage entries into a freshly allocated OOB buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::OobTooLarge`] if more entries are provided than
    /// the layout was created for.
    pub fn pack(&self, entries: &[OobEntry]) -> Result<Vec<u8>> {
        if entries.len() > self.entries_per_page {
            return Err(NandError::OobTooLarge {
                provided: entries.len() * OobEntry::SIZE,
                capacity: self.entries_per_page * OobEntry::SIZE,
            });
        }
        let mut out = vec![0u8; self.oob_size_bytes];
        for (i, entry) in entries.iter().enumerate() {
            let start = i * OobEntry::SIZE;
            out[start..start + OobEntry::SIZE].copy_from_slice(&entry.to_bytes());
        }
        Ok(out)
    }

    /// Unpack all linkage entries from an OOB buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::OobTooLarge`] if the buffer is smaller than the
    /// layout's OOB size.
    pub fn unpack(&self, oob: &[u8]) -> Result<Vec<OobEntry>> {
        if oob.len() < self.used_bytes() {
            return Err(NandError::OobTooLarge {
                provided: self.used_bytes(),
                capacity: oob.len(),
            });
        }
        Ok((0..self.entries_per_page)
            .map(|i| OobEntry::from_bytes(&oob[i * OobEntry::SIZE..]))
            .collect())
    }

    /// Unpack the linkage entry for a single mini-page offset.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::MiniPageOutOfRange`] if `offset` exceeds the
    /// number of entries per page, or [`NandError::OobTooLarge`] if the
    /// buffer is too small.
    pub fn unpack_entry(&self, oob: &[u8], offset: usize) -> Result<OobEntry> {
        if offset >= self.entries_per_page {
            return Err(NandError::MiniPageOutOfRange {
                offset,
                limit: self.entries_per_page,
            });
        }
        let start = offset * OobEntry::SIZE;
        if oob.len() < start + OobEntry::SIZE {
            return Err(NandError::OobTooLarge {
                provided: start + OobEntry::SIZE,
                capacity: oob.len(),
            });
        }
        Ok(OobEntry::from_bytes(&oob[start..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_roundtrip() {
        let entry = OobEntry {
            dadr: 123_456,
            radr: u32::MAX,
            tag: 7,
        };
        assert_eq!(OobEntry::from_bytes(&entry.to_bytes()), entry);
    }

    #[test]
    fn layout_packs_and_unpacks_entries() {
        let layout = OobLayout::new(2208, 128).unwrap();
        let entries: Vec<OobEntry> = (0..128)
            .map(|i| OobEntry {
                dadr: i,
                radr: i * 2,
                tag: (i % 256) as u8,
            })
            .collect();
        let oob = layout.pack(&entries).unwrap();
        assert_eq!(oob.len(), 2208);
        let unpacked = layout.unpack(&oob).unwrap();
        assert_eq!(unpacked, entries);
        assert_eq!(layout.unpack_entry(&oob, 17).unwrap(), entries[17]);
    }

    #[test]
    fn layout_rejects_oversized_configurations() {
        // 9 bytes/entry x 300 entries = 2700 bytes > 2208-byte OOB.
        assert!(matches!(
            OobLayout::new(2208, 300),
            Err(NandError::OobTooLarge { .. })
        ));
    }

    #[test]
    fn pack_rejects_too_many_entries() {
        let layout = OobLayout::new(256, 8).unwrap();
        let entries = vec![OobEntry::default(); 9];
        assert!(layout.pack(&entries).is_err());
    }

    #[test]
    fn unpack_entry_checks_offset() {
        let layout = OobLayout::new(256, 8).unwrap();
        let oob = layout.pack(&[OobEntry::default(); 8]).unwrap();
        assert!(matches!(
            layout.unpack_entry(&oob, 8),
            Err(NandError::MiniPageOutOfRange {
                offset: 8,
                limit: 8
            })
        ));
    }

    #[test]
    fn overhead_fraction_is_small_for_reference_layout() {
        // 128 binary 1024-d embeddings per 16 KB page (Sec. 4.3.2).
        let layout = OobLayout::new(2208, 128).unwrap();
        assert!(layout.overhead_fraction() < 0.6);
        assert_eq!(layout.used_bytes(), 128 * 9);
    }
}
