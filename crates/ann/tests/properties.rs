//! Property-based tests of the ANNS algorithm library.

use proptest::prelude::*;
use reis_ann::distance::{cosine_distance, inner_product, squared_l2};
use reis_ann::quantize::{BinaryQuantizer, Int8Quantizer};
use reis_ann::topk::{select_k_nearest, Neighbor};
use reis_ann::vector::BinaryVector;
use reis_ann::{FlatIndex, Metric};

fn vector_strategy(dim: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, dim)
}

proptest! {
    /// Squared L2 distance is symmetric, non-negative and zero iff identical.
    #[test]
    fn squared_l2_is_a_premetric(a in vector_strategy(16), b in vector_strategy(16)) {
        let d_ab = squared_l2(&a, &b);
        let d_ba = squared_l2(&b, &a);
        prop_assert!((d_ab - d_ba).abs() < 1e-3);
        prop_assert!(d_ab >= 0.0);
        prop_assert!(squared_l2(&a, &a) == 0.0);
    }

    /// Cosine distance lies in [0, 2] and inner product is bilinear in sign.
    #[test]
    fn cosine_distance_is_bounded(a in vector_strategy(12), b in vector_strategy(12)) {
        let d = cosine_distance(&a, &b);
        prop_assert!((-1e-4..=2.0001).contains(&d));
        let neg: Vec<f32> = b.iter().map(|x| -x).collect();
        prop_assert!((inner_product(&a, &b) + inner_product(&a, &neg)).abs() < 1e-2);
    }

    /// Hamming distance between binary quantizations never exceeds the
    /// dimensionality and is zero for identical inputs.
    #[test]
    fn binary_quantization_hamming_bounds(a in vector_strategy(64), b in vector_strategy(64)) {
        let q = BinaryQuantizer::zero_threshold(64);
        let qa = q.quantize(&a).unwrap();
        let qb = q.quantize(&b).unwrap();
        prop_assert!(qa.hamming_distance(&qb) <= 64);
        prop_assert_eq!(qa.hamming_distance(&qa), 0);
    }

    /// INT8 quantization followed by dequantization stays within one
    /// quantization step per dimension.
    #[test]
    fn int8_reconstruction_error_is_bounded(data in proptest::collection::vec(vector_strategy(8), 4..20)) {
        let q = Int8Quantizer::fit(&data).unwrap();
        for v in &data {
            let rec = q.dequantize(&q.quantize(v).unwrap());
            for (x, r) in v.iter().zip(rec.iter()) {
                // One step = max deviation / 127; allow a 1.5-step slack for rounding.
                prop_assert!((x - r).abs() <= 20.0 / 127.0 * 1.5 + 1e-3);
            }
        }
    }

    /// Flat search always returns results sorted by distance, never returns
    /// more than k results, and the nearest result is at least as close as
    /// every other database vector.
    #[test]
    fn flat_search_invariants(
        data in proptest::collection::vec(vector_strategy(6), 2..40),
        k in 1usize..10,
    ) {
        let index = FlatIndex::new(data.clone(), Metric::SquaredL2).unwrap();
        let query = data[0].clone();
        let hits = index.search(&query, k).unwrap();
        prop_assert!(hits.len() <= k);
        prop_assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        let best = hits[0].distance;
        for v in &data {
            prop_assert!(best <= squared_l2(&query, v) + 1e-4);
        }
    }

    /// select_k_nearest agrees with a full sort for arbitrary candidate sets.
    #[test]
    fn quickselect_matches_full_sort(
        distances in proptest::collection::vec(0.0f32..1e6, 1..200),
        k in 1usize..20,
    ) {
        let candidates: Vec<Neighbor> =
            distances.iter().enumerate().map(|(i, &d)| Neighbor::new(i, d)).collect();
        let got = select_k_nearest(&candidates, k);
        let mut sorted = candidates.clone();
        sorted.sort();
        sorted.truncate(k.min(candidates.len()));
        prop_assert_eq!(got, sorted);
    }

    /// Packed binary vectors round-trip through bytes.
    #[test]
    fn binary_vector_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..256)) {
        let v = BinaryVector::from_bits(&bits);
        let restored = BinaryVector::from_packed(bits.len(), v.as_bytes().to_vec());
        prop_assert_eq!(v, restored);
    }

    /// The u64-word hamming/popcount kernels match the bit-by-bit reference
    /// for every dimensionality 1..=256, odd tails included.
    #[test]
    fn word_kernels_match_bitwise_reference_for_all_dims(seed in any::<u64>()) {
        // Cheap deterministic bit stream derived from the seed so each case
        // exercises different contents at every dimensionality.
        let mut state = seed;
        let mut next_bit = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 63) == 1
        };
        for dim in 1usize..=256 {
            let bits_a: Vec<bool> = (0..dim).map(|_| next_bit()).collect();
            let bits_b: Vec<bool> = (0..dim).map(|_| next_bit()).collect();
            let a = BinaryVector::from_bits(&bits_a);
            let b = BinaryVector::from_bits(&bits_b);
            let ref_ones = bits_a.iter().filter(|&&x| x).count() as u32;
            let ref_dist = bits_a.iter().zip(&bits_b).filter(|(x, y)| x != y).count() as u32;
            prop_assert_eq!(a.count_ones(), ref_ones, "count_ones at dim {}", dim);
            prop_assert_eq!(a.hamming_distance(&b), ref_dist, "hamming at dim {}", dim);
            prop_assert_eq!(a.hamming_distance(&a), 0, "self distance at dim {}", dim);
        }
    }
}
