//! Lloyd's k-means with k-means++ seeding.
//!
//! Used to train IVF cluster centroids and product-quantization codebooks.
//! The implementation is deterministic for a given seed so that index
//! construction — and therefore every benchmark result — is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::distance::squared_l2;
use crate::error::{AnnError, Result};

/// Configuration of a k-means training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters to produce.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Random seed for centroid initialisation.
    pub seed: u64,
    /// Stop early when the relative improvement of the objective falls below
    /// this threshold.
    pub tolerance: f64,
}

impl KMeansConfig {
    /// A configuration with sensible defaults for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 20,
            seed: 0x5EED,
            tolerance: 1e-4,
        }
    }

    /// Builder-style override of the iteration budget.
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Builder-style override of the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a k-means training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansModel {
    /// Cluster centroids, `k` rows of `dim` values each.
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment of each training vector.
    pub assignments: Vec<usize>,
    /// Final value of the k-means objective (sum of squared distances).
    pub inertia: f64,
    /// Number of Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeansModel {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Dimensionality of the centroids.
    pub fn dim(&self) -> usize {
        self.centroids.first().map(Vec::len).unwrap_or(0)
    }

    /// Index of the centroid nearest to `vector`.
    ///
    /// # Panics
    ///
    /// Panics if the model is empty or the dimensionality differs.
    pub fn nearest_centroid(&self, vector: &[f32]) -> usize {
        nearest(&self.centroids, vector).0
    }
}

fn nearest(centroids: &[Vec<f32>], vector: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_l2(c, vector);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// Train k-means on `data` (a slice of equal-length vectors).
///
/// # Errors
///
/// * [`AnnError::EmptyDataset`] if `data` is empty.
/// * [`AnnError::InvalidParameter`] if `k` is zero or exceeds the number of
///   training vectors.
/// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
///   dimensionality.
pub fn train(data: &[Vec<f32>], config: &KMeansConfig) -> Result<KMeansModel> {
    if data.is_empty() {
        return Err(AnnError::EmptyDataset);
    }
    if config.k == 0 || config.k > data.len() {
        return Err(AnnError::InvalidParameter {
            name: "k",
            message: format!("k = {} must be in 1..={}", config.k, data.len()),
        });
    }
    let dim = data[0].len();
    for v in data {
        if v.len() != dim {
            return Err(AnnError::DimensionMismatch {
                expected: dim,
                actual: v.len(),
            });
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = kmeans_plus_plus_init(data, config.k, &mut rng);
    let mut assignments = vec![0usize; data.len()];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0usize;

    for iter in 0..config.max_iterations.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut new_inertia = 0.0f64;
        for (i, v) in data.iter().enumerate() {
            let (c, d) = nearest(&centroids, v);
            assignments[i] = c;
            new_inertia += d as f64;
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (v, &a) in data.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(v.iter()) {
                *s += x as f64;
            }
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
            if count > 0 {
                for (dst, &s) in c.iter_mut().zip(sum.iter()) {
                    *dst = (s / count as f64) as f32;
                }
            } else {
                // Re-seed an empty cluster with a random training vector so no
                // centroid is wasted.
                *c = data[rng.gen_range(0..data.len())].clone();
            }
        }
        let improvement = (inertia - new_inertia) / inertia.max(f64::MIN_POSITIVE);
        inertia = new_inertia;
        if improvement.abs() < config.tolerance && iter > 0 {
            break;
        }
    }

    // Final assignment against the last centroid update.
    let mut final_inertia = 0.0f64;
    for (i, v) in data.iter().enumerate() {
        let (c, d) = nearest(&centroids, v);
        assignments[i] = c;
        final_inertia += d as f64;
    }

    Ok(KMeansModel {
        centroids,
        assignments,
        inertia: final_inertia,
        iterations,
    })
}

fn kmeans_plus_plus_init(data: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..data.len())].clone());
    let mut distances: Vec<f32> = data.iter().map(|v| squared_l2(v, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = distances.iter().map(|&d| d as f64).sum();
        let chosen = if total <= f64::EPSILON {
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut idx = 0usize;
            for (i, &d) in distances.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
                idx = i;
            }
            idx
        };
        centroids.push(data[chosen].clone());
        let newest = centroids.last().expect("just pushed");
        for (d, v) in distances.iter_mut().zip(data.iter()) {
            let nd = squared_l2(v, newest);
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-d blobs.
    fn blob_data() -> Vec<Vec<f32>> {
        let mut data = Vec::new();
        for i in 0..30 {
            let jitter = (i % 5) as f32 * 0.01;
            data.push(vec![0.0 + jitter, 0.0 - jitter]);
            data.push(vec![10.0 + jitter, 10.0 - jitter]);
            data.push(vec![-10.0 - jitter, 10.0 + jitter]);
        }
        data
    }

    #[test]
    fn finds_well_separated_clusters() {
        let data = blob_data();
        let model = train(&data, &KMeansConfig::new(3)).unwrap();
        assert_eq!(model.k(), 3);
        assert_eq!(model.dim(), 2);
        // Every triple of consecutive points belongs to three distinct clusters.
        for chunk in model.assignments.chunks(3) {
            let mut c = chunk.to_vec();
            c.sort_unstable();
            c.dedup();
            assert_eq!(
                c.len(),
                3,
                "points from different blobs must not share a cluster"
            );
        }
        // Inertia of a perfect clustering of tight blobs is tiny.
        assert!(model.inertia < 1.0, "inertia {} too large", model.inertia);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let data = blob_data();
        let a = train(&data, &KMeansConfig::new(3).with_seed(7)).unwrap();
        let b = train(&data, &KMeansConfig::new(3).with_seed(7)).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn nearest_centroid_agrees_with_assignments() {
        let data = blob_data();
        let model = train(&data, &KMeansConfig::new(3)).unwrap();
        for (v, &a) in data.iter().zip(model.assignments.iter()) {
            assert_eq!(model.nearest_centroid(v), a);
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(matches!(
            train(&[], &KMeansConfig::new(1)),
            Err(AnnError::EmptyDataset)
        ));
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert!(matches!(
            train(&data, &KMeansConfig::new(0)),
            Err(AnnError::InvalidParameter { name: "k", .. })
        ));
        assert!(matches!(
            train(&data, &KMeansConfig::new(3)),
            Err(AnnError::InvalidParameter { name: "k", .. })
        ));
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            train(&ragged, &KMeansConfig::new(1)),
            Err(AnnError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0], vec![4.0, 8.0]];
        let model = train(&data, &KMeansConfig::new(1)).unwrap();
        assert!((model.centroids[0][0] - 2.0).abs() < 1e-5);
        assert!((model.centroids[0][1] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![9.0, 1.0]];
        let model = train(&data, &KMeansConfig::new(3)).unwrap();
        assert!(model.inertia < 1e-9);
    }
}
