//! Retrieval quality and throughput metrics.

use serde::{Deserialize, Serialize};

/// Fraction of the true `k` nearest neighbors present in the retrieved list
/// (Recall@k, the quality metric used throughout the paper's evaluation).
///
/// Only the first `k` entries of each list are considered.
///
/// # Examples
///
/// ```
/// use reis_ann::metrics::recall_at_k;
///
/// let retrieved = [1, 2, 3, 9];
/// let truth = [3, 2, 7, 8];
/// assert_eq!(recall_at_k(&retrieved, &truth, 4), 0.5);
/// ```
pub fn recall_at_k(retrieved: &[usize], ground_truth: &[usize], k: usize) -> f64 {
    if k == 0 || ground_truth.is_empty() {
        return 0.0;
    }
    let truth = &ground_truth[..k.min(ground_truth.len())];
    let got = &retrieved[..k.min(retrieved.len())];
    let hits = got.iter().filter(|id| truth.contains(id)).count();
    hits as f64 / truth.len() as f64
}

/// Mean Recall@k over a batch of queries.
///
/// # Panics
///
/// Panics if the two batches have different lengths.
pub fn mean_recall_at_k(retrieved: &[Vec<usize>], ground_truth: &[Vec<usize>], k: usize) -> f64 {
    assert_eq!(
        retrieved.len(),
        ground_truth.len(),
        "batches must have equal length"
    );
    if retrieved.is_empty() {
        return 0.0;
    }
    retrieved
        .iter()
        .zip(ground_truth.iter())
        .map(|(r, t)| recall_at_k(r, t, k))
        .sum::<f64>()
        / retrieved.len() as f64
}

/// Queries-per-second for `queries` completed in `seconds`.
pub fn queries_per_second(queries: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    queries as f64 / seconds
}

/// A labelled throughput/recall observation, the unit the figure benches
/// aggregate into their series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Human-readable label of the configuration (e.g. "IVF nlist=16384").
    pub label: String,
    /// Observed or modelled recall@k.
    pub recall: f64,
    /// Observed or modelled queries per second.
    pub qps: f64,
}

impl ThroughputPoint {
    /// Create a throughput point.
    pub fn new(label: impl Into<String>, recall: f64, qps: f64) -> Self {
        ThroughputPoint {
            label: label.into(),
            recall,
            qps,
        }
    }

    /// This point's QPS normalized to a baseline QPS (the y-axis of
    /// Figs. 5, 7, 9 and 10).
    pub fn normalized_qps(&self, baseline_qps: f64) -> f64 {
        if baseline_qps <= 0.0 {
            return 0.0;
        }
        self.qps / baseline_qps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_counts_overlap_within_top_k() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[1, 2, 3], 3), 1.0);
        assert_eq!(recall_at_k(&[1, 9, 8], &[1, 2, 3], 3), 1.0 / 3.0);
        assert_eq!(recall_at_k(&[], &[1, 2], 2), 0.0);
        assert_eq!(recall_at_k(&[1, 2], &[], 2), 0.0);
        assert_eq!(recall_at_k(&[1, 2], &[1, 2], 0), 0.0);
    }

    #[test]
    fn recall_ignores_entries_beyond_k() {
        // The correct answer appears only after position k, so it must not count.
        assert_eq!(recall_at_k(&[9, 8, 1], &[1, 2], 2), 0.0);
    }

    #[test]
    fn recall_handles_shorter_retrieved_lists() {
        assert_eq!(recall_at_k(&[1], &[1, 2, 3, 4], 4), 0.25);
    }

    #[test]
    fn mean_recall_averages_over_queries() {
        let retrieved = vec![vec![1, 2], vec![5, 6]];
        let truth = vec![vec![1, 2], vec![7, 8]];
        assert_eq!(mean_recall_at_k(&retrieved, &truth, 2), 0.5);
        assert_eq!(mean_recall_at_k(&[], &[], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mean_recall_rejects_mismatched_batches() {
        mean_recall_at_k(&[vec![1]], &[], 1);
    }

    #[test]
    fn qps_and_normalization() {
        assert_eq!(queries_per_second(100, 2.0), 50.0);
        assert_eq!(queries_per_second(100, 0.0), 0.0);
        let p = ThroughputPoint::new("IVF", 0.95, 200.0);
        assert_eq!(p.normalized_qps(50.0), 4.0);
        assert_eq!(p.normalized_qps(0.0), 0.0);
    }
}
