//! Product quantization (PQ).
//!
//! PQ splits each embedding into `m` sub-vectors and replaces every
//! sub-vector with the index of its nearest codebook centroid, so an
//! embedding becomes `m` small codes. The paper evaluates PQ as an
//! alternative to binary quantization in Fig. 5 and finds it performs worse
//! for IVF-based RAG retrieval; this implementation exists to reproduce that
//! comparison (and as a baseline that, unlike BQ, cannot be computed by the
//! in-flash XOR/popcount engine).

use serde::{Deserialize, Serialize};

use crate::distance::squared_l2;
use crate::error::{AnnError, Result};
use crate::kmeans::{self, KMeansConfig};

/// Configuration of a product quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductQuantizerConfig {
    /// Number of sub-vectors each embedding is split into.
    pub num_subquantizers: usize,
    /// Number of centroids per sub-quantizer codebook (at most 256 so codes
    /// fit in one byte).
    pub codebook_size: usize,
    /// Training seed.
    pub seed: u64,
    /// k-means iterations per codebook.
    pub train_iterations: usize,
}

impl ProductQuantizerConfig {
    /// Sensible defaults: `m` sub-quantizers with 256-entry codebooks.
    pub fn new(num_subquantizers: usize) -> Self {
        ProductQuantizerConfig {
            num_subquantizers,
            codebook_size: 256,
            seed: 0x5EED_00F0,
            train_iterations: 10,
        }
    }
}

/// A trained product quantizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductQuantizer {
    dim: usize,
    sub_dim: usize,
    codebooks: Vec<Vec<Vec<f32>>>,
}

impl ProductQuantizer {
    /// Train a product quantizer on `data`.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `data` is empty.
    /// * [`AnnError::InvalidParameter`] if the dimensionality is not evenly
    ///   divisible by the number of sub-quantizers, or the codebook size is 0
    ///   or greater than 256.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn train(data: &[Vec<f32>], config: &ProductQuantizerConfig) -> Result<Self> {
        if data.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        let dim = data[0].len();
        if config.num_subquantizers == 0 || !dim.is_multiple_of(config.num_subquantizers) {
            return Err(AnnError::InvalidParameter {
                name: "num_subquantizers",
                message: format!(
                    "dimensionality {dim} must be divisible by {}",
                    config.num_subquantizers
                ),
            });
        }
        if config.codebook_size == 0 || config.codebook_size > 256 {
            return Err(AnnError::InvalidParameter {
                name: "codebook_size",
                message: format!("{} must be in 1..=256", config.codebook_size),
            });
        }
        for v in data {
            if v.len() != dim {
                return Err(AnnError::DimensionMismatch {
                    expected: dim,
                    actual: v.len(),
                });
            }
        }
        let sub_dim = dim / config.num_subquantizers;
        let k = config.codebook_size.min(data.len());
        let mut codebooks = Vec::with_capacity(config.num_subquantizers);
        for s in 0..config.num_subquantizers {
            let sub_data: Vec<Vec<f32>> = data
                .iter()
                .map(|v| v[s * sub_dim..(s + 1) * sub_dim].to_vec())
                .collect();
            let model = kmeans::train(
                &sub_data,
                &KMeansConfig::new(k)
                    .with_seed(config.seed.wrapping_add(s as u64))
                    .with_max_iterations(config.train_iterations),
            )?;
            codebooks.push(model.centroids);
        }
        Ok(ProductQuantizer {
            dim,
            sub_dim,
            codebooks,
        })
    }

    /// Dimensionality of the original vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sub-quantizers (code bytes per vector).
    pub fn code_len(&self) -> usize {
        self.codebooks.len()
    }

    /// Encode one vector into its PQ codes.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] if the vector's length differs
    /// from the training dimensionality.
    pub fn encode(&self, vector: &[f32]) -> Result<Vec<u8>> {
        if vector.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: vector.len(),
            });
        }
        Ok(self
            .codebooks
            .iter()
            .enumerate()
            .map(|(s, codebook)| {
                let sub = &vector[s * self.sub_dim..(s + 1) * self.sub_dim];
                nearest_code(codebook, sub)
            })
            .collect())
    }

    /// Reconstruct an approximation of a vector from its PQ codes.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::InvalidParameter`] if the code length does not
    /// match the quantizer.
    pub fn decode(&self, codes: &[u8]) -> Result<Vec<f32>> {
        if codes.len() != self.code_len() {
            return Err(AnnError::InvalidParameter {
                name: "codes",
                message: format!("expected {} codes, got {}", self.code_len(), codes.len()),
            });
        }
        let mut out = Vec::with_capacity(self.dim);
        for (s, &code) in codes.iter().enumerate() {
            out.extend_from_slice(&self.codebooks[s][code as usize]);
        }
        Ok(out)
    }

    /// Build the per-subspace lookup table of squared distances from `query`
    /// to every codebook centroid (the asymmetric distance computation
    /// tables).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] if the query's length differs
    /// from the training dimensionality.
    pub fn distance_table(&self, query: &[f32]) -> Result<Vec<Vec<f32>>> {
        if query.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        Ok(self
            .codebooks
            .iter()
            .enumerate()
            .map(|(s, codebook)| {
                let sub = &query[s * self.sub_dim..(s + 1) * self.sub_dim];
                codebook.iter().map(|c| squared_l2(c, sub)).collect()
            })
            .collect())
    }

    /// Asymmetric squared distance between a query (via its
    /// [`ProductQuantizer::distance_table`]) and an encoded database vector.
    ///
    /// # Panics
    ///
    /// Panics if `codes` and `table` do not match the quantizer layout.
    pub fn asymmetric_distance(table: &[Vec<f32>], codes: &[u8]) -> f32 {
        assert_eq!(
            table.len(),
            codes.len(),
            "distance table and codes must have equal length"
        );
        codes
            .iter()
            .enumerate()
            .map(|(s, &c)| table[s][c as usize])
            .sum()
    }
}

fn nearest_code(codebook: &[Vec<f32>], sub: &[f32]) -> u8 {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in codebook.iter().enumerate() {
        let d = squared_l2(c, sub);
        if d < best.1 {
            best = (i, d);
        }
    }
    best.0 as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data(n: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| {
                        ((i * 31 + d * 7) % 97) as f32 / 97.0 + if i % 2 == 0 { 1.0 } else { -1.0 }
                    })
                    .collect()
            })
            .collect()
    }

    fn config(m: usize, ks: usize) -> ProductQuantizerConfig {
        ProductQuantizerConfig {
            num_subquantizers: m,
            codebook_size: ks,
            seed: 11,
            train_iterations: 8,
        }
    }

    #[test]
    fn encode_decode_reduces_to_nearby_reconstruction() {
        let data = training_data(200, 16);
        let pq = ProductQuantizer::train(&data, &config(4, 16)).unwrap();
        assert_eq!(pq.code_len(), 4);
        let mut total_err = 0.0f32;
        for v in &data {
            let codes = pq.encode(v).unwrap();
            assert_eq!(codes.len(), 4);
            let rec = pq.decode(&codes).unwrap();
            total_err += squared_l2(v, &rec);
        }
        let avg_err = total_err / data.len() as f32;
        // The two interleaved clusters are ~2 apart per dimension; codebooks of
        // 16 entries per 4-d subspace must reconstruct far better than that.
        assert!(
            avg_err < 1.0,
            "average reconstruction error {avg_err} too large"
        );
    }

    #[test]
    fn asymmetric_distance_matches_decoded_distance() {
        let data = training_data(100, 8);
        let pq = ProductQuantizer::train(&data, &config(2, 8)).unwrap();
        let query = &data[3];
        let table = pq.distance_table(query).unwrap();
        for v in data.iter().take(20) {
            let codes = pq.encode(v).unwrap();
            let adc = ProductQuantizer::asymmetric_distance(&table, &codes);
            let decoded = pq.decode(&codes).unwrap();
            let exact = squared_l2(query, &decoded);
            assert!((adc - exact).abs() < 1e-3, "ADC {adc} vs decoded {exact}");
        }
    }

    #[test]
    fn rejects_invalid_configurations() {
        let data = training_data(10, 9);
        assert!(matches!(
            ProductQuantizer::train(&data, &config(2, 8)),
            Err(AnnError::InvalidParameter {
                name: "num_subquantizers",
                ..
            })
        ));
        let data = training_data(10, 8);
        assert!(matches!(
            ProductQuantizer::train(
                &data,
                &ProductQuantizerConfig {
                    codebook_size: 0,
                    ..config(2, 8)
                }
            ),
            Err(AnnError::InvalidParameter {
                name: "codebook_size",
                ..
            })
        ));
        assert!(matches!(
            ProductQuantizer::train(&[], &config(2, 8)),
            Err(AnnError::EmptyDataset)
        ));
    }

    #[test]
    fn encode_rejects_wrong_dimensionality() {
        let data = training_data(50, 8);
        let pq = ProductQuantizer::train(&data, &config(2, 4)).unwrap();
        assert!(matches!(
            pq.encode(&[1.0; 9]),
            Err(AnnError::DimensionMismatch {
                expected: 8,
                actual: 9
            })
        ));
        assert!(pq.decode(&[0, 1, 2]).is_err());
    }
}
