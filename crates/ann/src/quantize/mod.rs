//! Embedding quantization schemes: binary, INT8 scalar and product
//! quantization.
//!
//! REIS's in-storage engine operates on [`binary`]-quantized embeddings
//! (XOR + popcount in the flash planes) and reranks with [`scalar`] INT8
//! embeddings on the embedded cores. [`product`] quantization is provided as
//! the comparison point evaluated in Fig. 5 of the paper.

pub mod binary;
pub mod product;
pub mod scalar;

pub use binary::BinaryQuantizer;
pub use product::{ProductQuantizer, ProductQuantizerConfig};
pub use scalar::Int8Quantizer;
