//! Binary quantization (BQ).
//!
//! Binary quantization compresses each `f32` component of an embedding to a
//! single bit (a 32× compression), which turns distance computation into an
//! XOR + popcount — exactly the operation REIS executes with the latches and
//! fail-bit counter of a flash plane. The paper (Sec. 2.2, 4.3) reports that
//! BQ preserves recall on high-dimensional text embeddings when combined with
//! a low-cost INT8 reranking step.

use serde::{Deserialize, Serialize};

use crate::error::{AnnError, Result};
use crate::vector::BinaryVector;

/// A per-dimension threshold binary quantizer.
///
/// Component `d` of a vector maps to bit 1 when `v[d] > thresholds[d]`.
/// Thresholds of zero reproduce the common sign-based BQ; fitting the
/// quantizer to a dataset uses the per-dimension mean, which is what the
/// Cohere binary embeddings the paper evaluates with do.
///
/// # Examples
///
/// ```
/// use reis_ann::quantize::binary::BinaryQuantizer;
///
/// let quantizer = BinaryQuantizer::zero_threshold(4);
/// let v = quantizer.quantize(&[0.5, -0.25, 0.0, 1.0]).unwrap();
/// assert_eq!(v.dim(), 4);
/// assert!(v.bit(0) && !v.bit(1) && !v.bit(2) && v.bit(3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinaryQuantizer {
    thresholds: Vec<f32>,
}

impl BinaryQuantizer {
    /// A quantizer that thresholds every dimension at zero (sign bit).
    pub fn zero_threshold(dim: usize) -> Self {
        BinaryQuantizer {
            thresholds: vec![0.0; dim],
        }
    }

    /// Fit per-dimension thresholds to the mean of a training set.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `data` is empty.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn fit(data: &[Vec<f32>]) -> Result<Self> {
        if data.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        let dim = data[0].len();
        let mut sums = vec![0.0f64; dim];
        for v in data {
            if v.len() != dim {
                return Err(AnnError::DimensionMismatch {
                    expected: dim,
                    actual: v.len(),
                });
            }
            for (s, &x) in sums.iter_mut().zip(v.iter()) {
                *s += x as f64;
            }
        }
        let thresholds = sums
            .iter()
            .map(|&s| (s / data.len() as f64) as f32)
            .collect();
        Ok(BinaryQuantizer { thresholds })
    }

    /// Rebuild a quantizer from previously-extracted thresholds (the
    /// durable-snapshot path: [`thresholds`](Self::thresholds) out,
    /// `from_thresholds` back in, bit-exactly).
    pub fn from_thresholds(thresholds: Vec<f32>) -> Self {
        BinaryQuantizer { thresholds }
    }

    /// Dimensionality this quantizer was built for.
    pub fn dim(&self) -> usize {
        self.thresholds.len()
    }

    /// The per-dimension thresholds.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// Quantize one vector.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] if the vector's length differs
    /// from the quantizer's dimensionality.
    pub fn quantize(&self, vector: &[f32]) -> Result<BinaryVector> {
        if vector.len() != self.dim() {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim(),
                actual: vector.len(),
            });
        }
        let bits: Vec<bool> = vector
            .iter()
            .zip(self.thresholds.iter())
            .map(|(&v, &t)| v > t)
            .collect();
        Ok(BinaryVector::from_bits(&bits))
    }

    /// Quantize a whole dataset.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for the first vector whose
    /// length differs from the quantizer's dimensionality.
    pub fn quantize_all(&self, data: &[Vec<f32>]) -> Result<Vec<BinaryVector>> {
        data.iter().map(|v| self.quantize(v)).collect()
    }

    /// Compression ratio relative to `f32` storage (32× for any dimension
    /// that is a multiple of 8).
    pub fn compression_ratio(&self) -> f64 {
        let dim = self.dim();
        (dim * 4) as f64 / dim.div_ceil(8) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threshold_is_the_sign_bit() {
        let q = BinaryQuantizer::zero_threshold(5);
        let v = q.quantize(&[1.0, -1.0, 0.0, 0.001, -0.001]).unwrap();
        assert_eq!(
            (0..5).map(|i| v.bit(i)).collect::<Vec<_>>(),
            vec![true, false, false, true, false]
        );
    }

    #[test]
    fn fit_uses_per_dimension_means() {
        let data = vec![vec![0.0, 10.0], vec![2.0, 20.0], vec![4.0, 30.0]];
        let q = BinaryQuantizer::fit(&data).unwrap();
        assert_eq!(q.thresholds(), &[2.0, 20.0]);
        // A vector exactly at the mean maps to 0 bits (strictly-greater rule).
        let at_mean = q.quantize(&[2.0, 20.0]).unwrap();
        assert_eq!(at_mean.count_ones(), 0);
        let above = q.quantize(&[3.0, 25.0]).unwrap();
        assert_eq!(above.count_ones(), 2);
    }

    #[test]
    fn quantization_preserves_neighborhood_structure() {
        // Two clusters far apart on every dimension: BQ distances must keep
        // intra-cluster distances below inter-cluster distances.
        let dim = 64;
        let a: Vec<f32> = (0..dim).map(|i| 1.0 + (i % 3) as f32 * 0.01).collect();
        let a2: Vec<f32> = (0..dim).map(|i| 1.0 + (i % 5) as f32 * 0.01).collect();
        let b: Vec<f32> = (0..dim).map(|i| -1.0 - (i % 3) as f32 * 0.01).collect();
        let q = BinaryQuantizer::zero_threshold(dim);
        let qa = q.quantize(&a).unwrap();
        let qa2 = q.quantize(&a2).unwrap();
        let qb = q.quantize(&b).unwrap();
        assert!(qa.hamming_distance(&qa2) < qa.hamming_distance(&qb));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let q = BinaryQuantizer::zero_threshold(4);
        assert!(matches!(
            q.quantize(&[1.0, 2.0]),
            Err(AnnError::DimensionMismatch {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn fit_rejects_bad_datasets() {
        assert!(matches!(
            BinaryQuantizer::fit(&[]),
            Err(AnnError::EmptyDataset)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            BinaryQuantizer::fit(&ragged),
            Err(AnnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_thresholds_round_trips_bit_exactly() {
        let data = vec![vec![0.1, -0.7, 3.5], vec![0.3, 0.2, -1.0]];
        let q = BinaryQuantizer::fit(&data).unwrap();
        let rebuilt = BinaryQuantizer::from_thresholds(q.thresholds().to_vec());
        assert_eq!(rebuilt, q);
    }

    #[test]
    fn compression_ratio_is_32x_for_byte_aligned_dims() {
        assert_eq!(
            BinaryQuantizer::zero_threshold(1024).compression_ratio(),
            32.0
        );
    }
}
