//! INT8 scalar quantization, used for the reranking step.
//!
//! REIS stores an INT8 copy of every embedding in the TLC partition and
//! recomputes the distances of the binary-quantized candidates in INT8
//! precision on the SSD's embedded core (Sec. 4.3.2, step 7). The scalar
//! quantizer here is a symmetric per-dimension affine quantizer in the style
//! of the Cohere INT8 embeddings used by the paper.

use serde::{Deserialize, Serialize};

use crate::error::{AnnError, Result};
use crate::vector::Int8Vector;

/// Per-dimension affine INT8 quantizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Int8Quantizer {
    offsets: Vec<f32>,
    scales: Vec<f32>,
}

impl Int8Quantizer {
    /// An identity-style quantizer for values already in `[-1, 1]`:
    /// offset 0 and scale `1/127` on every dimension.
    pub fn unit_range(dim: usize) -> Self {
        Int8Quantizer {
            offsets: vec![0.0; dim],
            scales: vec![1.0 / 127.0; dim],
        }
    }

    /// Fit offsets (per-dimension mean) and scales (per-dimension maximum
    /// absolute deviation divided by 127) to a training set.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `data` is empty.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn fit(data: &[Vec<f32>]) -> Result<Self> {
        if data.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        let dim = data[0].len();
        let mut sums = vec![0.0f64; dim];
        for v in data {
            if v.len() != dim {
                return Err(AnnError::DimensionMismatch {
                    expected: dim,
                    actual: v.len(),
                });
            }
            for (s, &x) in sums.iter_mut().zip(v.iter()) {
                *s += x as f64;
            }
        }
        let offsets: Vec<f32> = sums
            .iter()
            .map(|&s| (s / data.len() as f64) as f32)
            .collect();
        let mut max_dev = vec![0.0f32; dim];
        for v in data {
            for ((m, &x), &o) in max_dev.iter_mut().zip(v.iter()).zip(offsets.iter()) {
                let dev = (x - o).abs();
                if dev > *m {
                    *m = dev;
                }
            }
        }
        let scales = max_dev
            .iter()
            .map(|&m| if m > 0.0 { m / 127.0 } else { 1.0 / 127.0 })
            .collect();
        Ok(Int8Quantizer { offsets, scales })
    }

    /// Rebuild a quantizer from previously-extracted parameters (the
    /// durable-snapshot path: [`offsets`](Self::offsets) /
    /// [`scales`](Self::scales) out, `from_parts` back in, bit-exactly).
    ///
    /// # Panics
    ///
    /// Panics if `offsets` and `scales` differ in length (a caller bug —
    /// the pair always travels together).
    pub fn from_parts(offsets: Vec<f32>, scales: Vec<f32>) -> Self {
        assert_eq!(
            offsets.len(),
            scales.len(),
            "offsets and scales must cover the same dimensions"
        );
        Int8Quantizer { offsets, scales }
    }

    /// Dimensionality this quantizer was built for.
    pub fn dim(&self) -> usize {
        self.offsets.len()
    }

    /// The per-dimension offsets (the affine shift of each dimension).
    pub fn offsets(&self) -> &[f32] {
        &self.offsets
    }

    /// The per-dimension scales (the affine step of each INT8 level).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Quantize one vector.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] if the vector's length differs
    /// from the quantizer's dimensionality.
    pub fn quantize(&self, vector: &[f32]) -> Result<Int8Vector> {
        if vector.len() != self.dim() {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim(),
                actual: vector.len(),
            });
        }
        let values = vector
            .iter()
            .zip(self.offsets.iter().zip(self.scales.iter()))
            .map(|(&x, (&o, &s))| {
                let q = ((x - o) / s).round();
                q.clamp(-127.0, 127.0) as i8
            })
            .collect();
        Ok(Int8Vector::new(values))
    }

    /// Quantize a whole dataset.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for the first vector whose
    /// length differs from the quantizer's dimensionality.
    pub fn quantize_all(&self, data: &[Vec<f32>]) -> Result<Vec<Int8Vector>> {
        data.iter().map(|v| self.quantize(v)).collect()
    }

    /// Reconstruct an approximate `f32` vector from its INT8 representation.
    pub fn dequantize(&self, vector: &Int8Vector) -> Vec<f32> {
        vector
            .as_slice()
            .iter()
            .zip(self.offsets.iter().zip(self.scales.iter()))
            .map(|(&q, (&o, &s))| q as f32 * s + o)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::squared_l2;

    fn training_data() -> Vec<Vec<f32>> {
        (0..50)
            .map(|i| {
                let t = i as f32 / 50.0;
                vec![t, -t * 2.0, 0.5 + t * 0.1, (i % 7) as f32 * 0.05]
            })
            .collect()
    }

    #[test]
    fn quantize_dequantize_reconstruction_error_is_small() {
        let data = training_data();
        let q = Int8Quantizer::fit(&data).unwrap();
        for v in &data {
            let reconstructed = q.dequantize(&q.quantize(v).unwrap());
            let err = squared_l2(v, &reconstructed);
            assert!(err < 1e-3, "reconstruction error {err} too large for {v:?}");
        }
    }

    #[test]
    fn quantized_distances_track_float_distances() {
        let data = training_data();
        let q = Int8Quantizer::fit(&data).unwrap();
        let quantized = q.quantize_all(&data).unwrap();
        // For a fixed query, the nearest neighbor under INT8 must match the
        // nearest neighbor under f32 on this smooth dataset.
        let query = &data[10];
        let query_q = q.quantize(query).unwrap();
        // Indices 9 and 11 are nearly equidistant from index 10 by
        // construction, so require the INT8 nearest neighbor to be one of the
        // two closest float neighbors rather than an exact match.
        let mut by_f32: Vec<usize> = (0..data.len()).filter(|&i| i != 10).collect();
        by_f32.sort_by(|&a, &b| {
            squared_l2(&data[a], query)
                .partial_cmp(&squared_l2(&data[b], query))
                .unwrap()
        });
        let nn_int8 = quantized
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 10)
            .min_by_key(|(_, v)| v.squared_l2(&query_q))
            .unwrap()
            .0;
        assert!(
            by_f32[..2].contains(&nn_int8),
            "INT8 nearest neighbor {nn_int8} not among the two closest float neighbors {:?}",
            &by_f32[..2]
        );
    }

    #[test]
    fn unit_range_clamps_out_of_range_values() {
        let q = Int8Quantizer::unit_range(3);
        let v = q.quantize(&[2.0, -2.0, 0.5]).unwrap();
        assert_eq!(v.as_slice(), &[127, -127, 64]);
    }

    #[test]
    fn rejects_dimension_mismatch_and_empty_data() {
        assert!(matches!(
            Int8Quantizer::fit(&[]),
            Err(AnnError::EmptyDataset)
        ));
        let q = Int8Quantizer::unit_range(2);
        assert!(matches!(
            q.quantize(&[1.0]),
            Err(AnnError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn from_parts_round_trips_bit_exactly() {
        let q = Int8Quantizer::fit(&training_data()).unwrap();
        let rebuilt = Int8Quantizer::from_parts(q.offsets().to_vec(), q.scales().to_vec());
        assert_eq!(rebuilt, q);
    }

    #[test]
    #[should_panic(expected = "same dimensions")]
    fn from_parts_rejects_ragged_parameters() {
        Int8Quantizer::from_parts(vec![0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn constant_dimension_does_not_divide_by_zero() {
        let data = vec![vec![3.0, 1.0], vec![3.0, 2.0], vec![3.0, 3.0]];
        let q = Int8Quantizer::fit(&data).unwrap();
        let v = q.quantize(&[3.0, 2.0]).unwrap();
        assert_eq!(
            v.as_slice()[0],
            0,
            "constant dimension quantizes to the offset"
        );
    }
}
