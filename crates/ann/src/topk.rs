//! Top-k selection primitives.
//!
//! REIS's embedded cores run *quickselect* to keep the k best candidates of a
//! Temporal Top List without fully sorting it, followed by a final
//! *quicksort* of the k survivors (Sec. 4.3.1). The same primitives are used
//! by the CPU baselines, so they live here in the algorithm library.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One search candidate: a vector id and its distance from the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Identifier of the database vector.
    pub id: usize,
    /// Distance from the query (lower is closer).
    pub distance: f32,
}

impl Neighbor {
    /// Create a neighbor entry.
    pub fn new(id: usize, distance: f32) -> Self {
        Neighbor { id, distance }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: distance first (NaN sorts last), then id for stability.
        self.distance
            .partial_cmp(&other.distance)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Partition `items` in place so the `k` smallest elements (by `key`) occupy
/// the first `k` positions, in arbitrary order. Runs in expected O(n) time —
/// the quickselect kernel executed by the SSD's embedded core.
///
/// If `k >= items.len()` the slice is left untouched.
pub fn quickselect_by_key<T, K, F>(items: &mut [T], k: usize, key: F)
where
    K: PartialOrd,
    F: Fn(&T) -> K,
{
    if k == 0 || k >= items.len() {
        return;
    }
    let mut lo = 0usize;
    let mut hi = items.len() - 1;
    let target = k - 1;
    // Deterministic pseudo-random pivot sequence keeps the kernel reproducible.
    let mut pivot_seed = 0x9E37_79B9_u64;
    while lo < hi {
        pivot_seed = pivot_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let pivot_index = lo + (pivot_seed % (hi - lo + 1) as u64) as usize;
        items.swap(pivot_index, hi);
        let mut store = lo;
        for i in lo..hi {
            if key(&items[i]) < key(&items[hi]) {
                items.swap(i, store);
                store += 1;
            }
        }
        items.swap(store, hi);
        match store.cmp(&target) {
            Ordering::Equal => return,
            Ordering::Less => lo = store + 1,
            Ordering::Greater => hi = store - 1,
        }
    }
}

/// Total-order ranking key for a `(distance, index)` candidate pair:
/// distance first, index as the tie-break.
///
/// Selection by raw distance leaves the kept set ambiguous when several
/// candidates tie at the k-th position — whichever the partitioning happens
/// to visit first survives, so the result depends on input order. Keying
/// quickselect with this composite instead makes the kept set a pure
/// function of the candidate *set*: REIS relies on that to merge the
/// shard-local Temporal Top Lists of an intra-query sharded scan into
/// exactly the candidates a sequential scan would have kept.
pub fn distance_index_key(distance: u32, index: u32) -> u64 {
    ((distance as u64) << 32) | index as u64
}

/// Select the `k` nearest neighbors from a slice of candidates, returned in
/// ascending distance order (quickselect followed by a sort of the k
/// survivors, mirroring REIS's quickselect + quicksort pipeline).
pub fn select_k_nearest(candidates: &[Neighbor], k: usize) -> Vec<Neighbor> {
    let mut work = candidates.to_vec();
    let k = k.min(work.len());
    quickselect_by_key(&mut work, k, |n| n.distance);
    work.truncate(k);
    work.sort();
    work
}

/// Streaming top-k accumulator backed by a bounded max-heap, used by index
/// implementations that visit candidates one at a time.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Create an accumulator that keeps the `k` nearest candidates.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer a candidate to the accumulator.
    pub fn push(&mut self, candidate: Neighbor) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(candidate);
        } else if let Some(worst) = self.heap.peek() {
            if candidate < *worst {
                self.heap.pop();
                self.heap.push(candidate);
            }
        }
    }

    /// Current number of stored candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Distance of the current worst stored candidate, if the accumulator is
    /// full. Useful as a pruning bound.
    pub fn worst_distance(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|n| n.distance)
        }
    }

    /// Consume the accumulator and return the neighbors in ascending distance
    /// order.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self.heap.into_vec();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Neighbor> {
        vec![
            Neighbor::new(0, 5.0),
            Neighbor::new(1, 1.0),
            Neighbor::new(2, 9.0),
            Neighbor::new(3, 0.5),
            Neighbor::new(4, 2.5),
            Neighbor::new(5, 7.0),
        ]
    }

    #[test]
    fn select_k_nearest_returns_sorted_k_smallest() {
        let top = select_k_nearest(&candidates(), 3);
        let ids: Vec<usize> = top.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 1, 4]);
        assert!(top.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn select_k_handles_k_larger_than_input() {
        let top = select_k_nearest(&candidates(), 100);
        assert_eq!(top.len(), 6);
        assert_eq!(top[0].id, 3);
        assert_eq!(top[5].id, 2);
    }

    #[test]
    fn select_zero_returns_empty() {
        assert!(select_k_nearest(&candidates(), 0).is_empty());
    }

    #[test]
    fn quickselect_partitions_smallest_first() {
        let mut values: Vec<u32> = (0..1000).rev().collect();
        quickselect_by_key(&mut values, 10, |&v| v);
        let mut head = values[..10].to_vec();
        head.sort_unstable();
        assert_eq!(head, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn topk_accumulator_matches_select() {
        let mut acc = TopK::new(3);
        for c in candidates() {
            acc.push(c);
        }
        assert_eq!(acc.len(), 3);
        assert_eq!(acc.worst_distance(), Some(2.5));
        let streamed = acc.into_sorted_vec();
        let direct = select_k_nearest(&candidates(), 3);
        assert_eq!(streamed, direct);
    }

    #[test]
    fn topk_with_zero_capacity_stays_empty() {
        let mut acc = TopK::new(0);
        acc.push(Neighbor::new(1, 1.0));
        assert!(acc.is_empty());
        assert!(acc.into_sorted_vec().is_empty());
    }

    #[test]
    fn neighbor_ordering_breaks_ties_by_id() {
        let a = Neighbor::new(1, 2.0);
        let b = Neighbor::new(2, 2.0);
        assert!(a < b);
    }
}
