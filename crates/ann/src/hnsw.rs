//! Hierarchical Navigable Small World (HNSW) graphs.
//!
//! HNSW is the graph-based ANNS algorithm used by the prior ISP accelerators
//! REIS compares against (NDSearch) and by the CPU comparison of Fig. 5. Its
//! search walks a graph greedily, which is fast on a CPU with random-access
//! DRAM but produces the irregular access pattern that makes it a poor fit
//! for in-storage execution (Sec. 4.2) — which is why the comparator models
//! in `reis-baseline` charge it per-hop flash latencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashSet};

use crate::distance::Metric;
use crate::error::{AnnError, Result};
use crate::topk::Neighbor;

/// Configuration of an HNSW index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Maximum number of links per node per layer (the paper's Fig. 5 uses
    /// M = 128 for the wiki_en comparison).
    pub m: usize,
    /// Size of the dynamic candidate list during construction.
    pub ef_construction: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Seed of the level-sampling RNG.
    pub seed: u64,
}

impl HnswConfig {
    /// A configuration with `m` links per node and sensible defaults.
    pub fn new(m: usize) -> Self {
        HnswConfig {
            m,
            ef_construction: 2 * m.max(8),
            metric: Metric::SquaredL2,
            seed: 0x45,
        }
    }
}

/// An HNSW graph index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HnswIndex {
    config: HnswConfig,
    dim: usize,
    vectors: Vec<Vec<f32>>,
    /// `links[node][level]` is the adjacency list of `node` at `level`.
    links: Vec<Vec<Vec<usize>>>,
    entry_point: Option<usize>,
    max_level: usize,
    /// Number of graph hops performed by the most recent search (used by the
    /// access-pattern models of the ISP comparators).
    hops_last_search: usize,
}

impl HnswIndex {
    /// Build an HNSW index over `vectors`.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `vectors` is empty.
    /// * [`AnnError::InvalidParameter`] if `m` is zero.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn build(vectors: Vec<Vec<f32>>, config: HnswConfig) -> Result<Self> {
        if vectors.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        if config.m == 0 {
            return Err(AnnError::InvalidParameter {
                name: "m",
                message: "must be at least 1".into(),
            });
        }
        let dim = vectors[0].len();
        for v in &vectors {
            if v.len() != dim {
                return Err(AnnError::DimensionMismatch {
                    expected: dim,
                    actual: v.len(),
                });
            }
        }
        let mut index = HnswIndex {
            config,
            dim,
            vectors: Vec::with_capacity(vectors.len()),
            links: Vec::with_capacity(vectors.len()),
            entry_point: None,
            max_level: 0,
            hops_last_search: 0,
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        for v in vectors {
            index.insert(v, &mut rng);
        }
        Ok(index)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty (never true for a constructed index).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of graph hops (vertex visits) performed by the last search —
    /// the quantity the ISP comparator models multiply by a per-hop flash
    /// read latency.
    pub fn hops_last_search(&self) -> usize {
        self.hops_last_search
    }

    /// Approximate memory footprint of the graph structure in bytes
    /// (vectors excluded): one `usize` per link. HNSW indexes are markedly
    /// larger than IVF ones, which the paper notes when loading time is taken
    /// into account.
    pub fn graph_bytes(&self) -> usize {
        self.links
            .iter()
            .map(|levels| levels.iter().map(|l| l.len()).sum::<usize>())
            .sum::<usize>()
            * std::mem::size_of::<usize>()
    }

    fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        self.config.metric.distance(a, b)
    }

    fn sample_level(&self, rng: &mut StdRng) -> usize {
        let mult = 1.0 / (self.config.m as f64).ln().max(0.1);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        (-u.ln() * mult).floor() as usize
    }

    fn insert(&mut self, vector: Vec<f32>, rng: &mut StdRng) {
        let id = self.vectors.len();
        let level = self.sample_level(rng);
        self.vectors.push(vector);
        self.links.push(vec![Vec::new(); level + 1]);

        let Some(mut ep) = self.entry_point else {
            self.entry_point = Some(id);
            self.max_level = level;
            return;
        };

        let query = self.vectors[id].clone();
        // Greedy descent through the layers above the new node's level.
        let mut visited_hops = 0usize;
        for lc in (level + 1..=self.max_level).rev() {
            ep = self.greedy_closest(&query, ep, lc, &mut visited_hops);
        }
        // Insert into every layer from min(level, max_level) down to 0.
        let mut entry_points = vec![ep];
        for lc in (0..=level.min(self.max_level)).rev() {
            let candidates =
                self.search_layer(&query, &entry_points, self.config.ef_construction, lc);
            let m_max = if lc == 0 {
                self.config.m * 2
            } else {
                self.config.m
            };
            let selected: Vec<usize> = candidates
                .iter()
                .take(self.config.m)
                .map(|n| n.id)
                .collect();
            for &neighbor in &selected {
                self.links[id][lc].push(neighbor);
                self.links[neighbor][lc].push(id);
                if self.links[neighbor][lc].len() > m_max {
                    self.prune(neighbor, lc, m_max);
                }
            }
            entry_points = if selected.is_empty() {
                entry_points
            } else {
                selected
            };
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry_point = Some(id);
        }
    }

    fn prune(&mut self, node: usize, level: usize, m_max: usize) {
        let base = self.vectors[node].clone();
        let mut neighbors: Vec<Neighbor> = self.links[node][level]
            .iter()
            .map(|&n| Neighbor::new(n, self.distance(&base, &self.vectors[n])))
            .collect();
        neighbors.sort();
        neighbors.dedup_by_key(|n| n.id);
        self.links[node][level] = neighbors.into_iter().take(m_max).map(|n| n.id).collect();
    }

    fn greedy_closest(&self, query: &[f32], start: usize, level: usize, hops: &mut usize) -> usize {
        let mut current = start;
        let mut current_dist = self.distance(query, &self.vectors[current]);
        loop {
            let mut improved = false;
            if level < self.links[current].len() {
                for &n in &self.links[current][level] {
                    *hops += 1;
                    let d = self.distance(query, &self.vectors[n]);
                    if d < current_dist {
                        current = n;
                        current_dist = d;
                        improved = true;
                    }
                }
            }
            if !improved {
                return current;
            }
        }
    }

    fn search_layer(
        &self,
        query: &[f32],
        entry_points: &[usize],
        ef: usize,
        level: usize,
    ) -> Vec<Neighbor> {
        let mut visited: HashSet<usize> = HashSet::new();
        // Min-heap of candidates to expand (closest first).
        let mut candidates: BinaryHeap<std::cmp::Reverse<Neighbor>> = BinaryHeap::new();
        // Max-heap of the best ef results found so far (worst on top).
        let mut best: BinaryHeap<Neighbor> = BinaryHeap::new();
        for &ep in entry_points {
            if visited.insert(ep) {
                let n = Neighbor::new(ep, self.distance(query, &self.vectors[ep]));
                candidates.push(std::cmp::Reverse(n));
                best.push(n);
            }
        }
        while let Some(std::cmp::Reverse(current)) = candidates.pop() {
            let worst = best.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
            if current.distance > worst && best.len() >= ef {
                break;
            }
            if level < self.links[current.id].len() {
                for &n in &self.links[current.id][level] {
                    if visited.insert(n) {
                        let cand = Neighbor::new(n, self.distance(query, &self.vectors[n]));
                        let worst = best.peek().map(|x| x.distance).unwrap_or(f32::INFINITY);
                        if best.len() < ef || cand.distance < worst {
                            candidates.push(std::cmp::Reverse(cand));
                            best.push(cand);
                            if best.len() > ef {
                                best.pop();
                            }
                        }
                    }
                }
            }
        }
        let mut out: Vec<Neighbor> = best.into_vec();
        out.sort();
        out
    }

    /// Search for the `k` nearest neighbors of `query` with a candidate list
    /// of size `ef` (`ef >= k` for meaningful results).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for a query of the wrong
    /// dimensionality.
    pub fn search(&mut self, query: &[f32], k: usize, ef: usize) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let Some(mut ep) = self.entry_point else {
            return Ok(Vec::new());
        };
        let mut hops = 0usize;
        for lc in (1..=self.max_level).rev() {
            ep = self.greedy_closest(query, ep, lc, &mut hops);
        }
        let results = self.search_layer(query, &[ep], ef.max(k), 0);
        // Every settled candidate corresponds to (at least) one vertex visit.
        self.hops_last_search = hops + results.len();
        Ok(results.into_iter().take(k).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metrics::recall_at_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn finds_exact_match_for_indexed_vectors() {
        let data = random_data(300, 16, 1);
        let mut index = HnswIndex::build(data.clone(), HnswConfig::new(16)).unwrap();
        for qi in [0usize, 50, 123, 299] {
            let hits = index.search(&data[qi], 1, 32).unwrap();
            assert_eq!(hits[0].id, qi, "query {qi} should find itself");
            assert_eq!(hits[0].distance, 0.0);
        }
    }

    #[test]
    fn recall_against_exhaustive_search_is_high() {
        let data = random_data(800, 24, 2);
        let mut index = HnswIndex::build(data.clone(), HnswConfig::new(16)).unwrap();
        let flat = FlatIndex::new(data.clone(), Metric::SquaredL2).unwrap();
        let mut recall = 0.0;
        let queries = 30usize;
        for qi in 0..queries {
            let query = &data[qi * 13];
            let truth: Vec<usize> = flat
                .search(query, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let got: Vec<usize> = index
                .search(query, 10, 64)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            recall += recall_at_k(&got, &truth, 10);
        }
        recall /= queries as f64;
        assert!(recall > 0.85, "HNSW recall@10 = {recall} too low");
    }

    #[test]
    fn larger_ef_does_not_reduce_recall() {
        let data = random_data(500, 16, 3);
        let mut index = HnswIndex::build(data.clone(), HnswConfig::new(8)).unwrap();
        let flat = FlatIndex::new(data.clone(), Metric::SquaredL2).unwrap();
        let mut recall_small = 0.0;
        let mut recall_large = 0.0;
        for qi in 0..20 {
            let query = &data[qi * 17];
            let truth: Vec<usize> = flat
                .search(query, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let small: Vec<usize> = index
                .search(query, 10, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let large: Vec<usize> = index
                .search(query, 10, 128)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            recall_small += recall_at_k(&small, &truth, 10);
            recall_large += recall_at_k(&large, &truth, 10);
        }
        assert!(recall_large >= recall_small);
    }

    #[test]
    fn search_reports_graph_hops_and_footprint() {
        let data = random_data(400, 8, 4);
        let mut index = HnswIndex::build(data.clone(), HnswConfig::new(8)).unwrap();
        index.search(&data[7], 5, 32).unwrap();
        assert!(index.hops_last_search() > 0);
        assert!(index.graph_bytes() > 0);
        // The graph must connect every inserted node at layer 0.
        assert_eq!(index.len(), 400);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(matches!(
            HnswIndex::build(vec![], HnswConfig::new(8)),
            Err(AnnError::EmptyDataset)
        ));
        let data = random_data(10, 4, 5);
        assert!(matches!(
            HnswIndex::build(data.clone(), HnswConfig::new(0)),
            Err(AnnError::InvalidParameter { name: "m", .. })
        ));
        let mut index = HnswIndex::build(data, HnswConfig::new(4)).unwrap();
        assert!(index.search(&[0.0; 5], 1, 8).is_err());
    }

    #[test]
    fn single_vector_index_returns_it() {
        let mut index = HnswIndex::build(vec![vec![1.0, 2.0]], HnswConfig::new(4)).unwrap();
        let hits = index.search(&[1.0, 2.1], 3, 8).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }
}
