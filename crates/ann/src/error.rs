//! Error type for the ANNS algorithm library.

use std::fmt;

/// Errors returned by index construction and search operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnError {
    /// A vector had a different dimensionality than the index or quantizer
    /// was built for.
    DimensionMismatch {
        /// Dimensionality expected by the index.
        expected: usize,
        /// Dimensionality of the offending vector.
        actual: usize,
    },
    /// An operation that needs training data received an empty dataset.
    EmptyDataset,
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// An index was searched before it was trained / built.
    NotTrained,
    /// A vector id referenced by a search result or rerank request does not
    /// exist in the index.
    UnknownVector(usize),
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "vector has {actual} dimensions but the index expects {expected}"
                )
            }
            AnnError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            AnnError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            AnnError::NotTrained => write!(f, "index must be trained before searching"),
            AnnError::UnknownVector(id) => write!(f, "vector id {id} does not exist in the index"),
        }
    }
}

impl std::error::Error for AnnError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, AnnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_meaningful() {
        let errs = vec![
            AnnError::DimensionMismatch {
                expected: 1024,
                actual: 768,
            },
            AnnError::EmptyDataset,
            AnnError::InvalidParameter {
                name: "nlist",
                message: "must be non-zero".into(),
            },
            AnnError::NotTrained,
            AnnError::UnknownVector(9),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_implements_std_error_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<AnnError>();
    }
}
