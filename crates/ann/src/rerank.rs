//! Reranking (rescoring) of quantized search candidates.
//!
//! Binary quantization trades precision for speed; to recover recall, the
//! candidates it produces are *reranked* with a more precise distance before
//! the final top-k is returned (Sec. 4.3.2, step 7). REIS reranks the top
//! `10·k` binary candidates with INT8 distances on the SSD's embedded core;
//! the CPU baselines do the same on the host.

use crate::distance::Metric;
use crate::error::{AnnError, Result};
use crate::topk::{Neighbor, TopK};
use crate::vector::Int8Vector;

/// Multiplier applied to `k` to size the candidate set handed to the
/// reranker (the paper reranks the top `10·k` ANNS results).
pub const DEFAULT_RERANK_FACTOR: usize = 10;

/// Rerank candidate ids with INT8 distances and return the `k` nearest.
///
/// # Errors
///
/// * [`AnnError::UnknownVector`] if a candidate id is out of range.
/// * [`AnnError::DimensionMismatch`] if a candidate's dimensionality differs
///   from the query's.
pub fn rerank_int8(
    query: &Int8Vector,
    candidates: &[usize],
    database: &[Int8Vector],
    k: usize,
) -> Result<Vec<Neighbor>> {
    let mut top = TopK::new(k);
    for &id in candidates {
        let vector = database.get(id).ok_or(AnnError::UnknownVector(id))?;
        if vector.dim() != query.dim() {
            return Err(AnnError::DimensionMismatch {
                expected: query.dim(),
                actual: vector.dim(),
            });
        }
        top.push(Neighbor::new(id, vector.squared_l2(query) as f32));
    }
    Ok(top.into_sorted_vec())
}

/// Rerank candidate ids with full-precision distances and return the `k`
/// nearest.
///
/// # Errors
///
/// * [`AnnError::UnknownVector`] if a candidate id is out of range.
/// * [`AnnError::DimensionMismatch`] if a candidate's dimensionality differs
///   from the query's.
pub fn rerank_f32(
    query: &[f32],
    candidates: &[usize],
    database: &[Vec<f32>],
    metric: Metric,
    k: usize,
) -> Result<Vec<Neighbor>> {
    let mut top = TopK::new(k);
    for &id in candidates {
        let vector = database.get(id).ok_or(AnnError::UnknownVector(id))?;
        if vector.len() != query.len() {
            return Err(AnnError::DimensionMismatch {
                expected: query.len(),
                actual: vector.len(),
            });
        }
        top.push(Neighbor::new(id, metric.distance(query, vector)));
    }
    Ok(top.into_sorted_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::Int8Quantizer;

    #[test]
    fn int8_rerank_orders_candidates_by_true_similarity() {
        let data: Vec<Vec<f32>> = (0..20)
            .map(|i| vec![i as f32 * 0.1, 1.0 - i as f32 * 0.1, 0.5])
            .collect();
        let quantizer = Int8Quantizer::fit(&data).unwrap();
        let db = quantizer.quantize_all(&data).unwrap();
        let query = quantizer.quantize(&data[7]).unwrap();
        // Candidates arrive unordered (as they would from the binary stage).
        let candidates = vec![15, 3, 7, 9, 1, 12];
        let top = rerank_int8(&query, &candidates, &db, 3).unwrap();
        assert_eq!(top[0].id, 7);
        assert_eq!(top[0].distance, 0.0);
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn f32_rerank_matches_metric_ordering() {
        let data = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 3.0],
        ];
        let top = rerank_f32(&[0.2, 0.1], &[0, 1, 2, 3], &data, Metric::SquaredL2, 2).unwrap();
        assert_eq!(top[0].id, 0);
        assert_eq!(top[1].id, 1);
    }

    #[test]
    fn unknown_candidate_ids_are_rejected() {
        let data = vec![vec![0.0, 0.0]];
        assert!(matches!(
            rerank_f32(&[0.0, 0.0], &[5], &data, Metric::SquaredL2, 1),
            Err(AnnError::UnknownVector(5))
        ));
        let db = vec![Int8Vector::new(vec![0, 0])];
        assert!(matches!(
            rerank_int8(&Int8Vector::new(vec![0, 0]), &[1], &db, 1),
            Err(AnnError::UnknownVector(1))
        ));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let db = vec![Int8Vector::new(vec![0, 0, 0])];
        assert!(matches!(
            rerank_int8(&Int8Vector::new(vec![0, 0]), &[0], &db, 1),
            Err(AnnError::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn empty_candidates_produce_empty_result() {
        let data = vec![vec![0.0, 0.0]];
        let top = rerank_f32(&[0.0, 0.0], &[], &data, Metric::SquaredL2, 5).unwrap();
        assert!(top.is_empty());
    }
}
