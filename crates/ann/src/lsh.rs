//! Locality-Sensitive Hashing (LSH) with random hyperplanes.
//!
//! LSH hashes similar embeddings into the same bucket with high probability.
//! The paper's Fig. 5 evaluates it as the third mainstream ANNS family and
//! finds it uncompetitive for high-recall RAG retrieval (slower than
//! exhaustive search above ~0.8 recall); this implementation exists to
//! reproduce that series.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

use crate::distance::Metric;
use crate::error::{AnnError, Result};
use crate::topk::{Neighbor, TopK};

/// Configuration of a random-hyperplane LSH index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshConfig {
    /// Number of independent hash tables.
    pub num_tables: usize,
    /// Number of hyperplanes (hash bits) per table.
    pub num_bits: usize,
    /// Seed of the hyperplane generator.
    pub seed: u64,
}

impl LshConfig {
    /// A configuration with `num_tables` tables of `num_bits` bits each.
    pub fn new(num_tables: usize, num_bits: usize) -> Self {
        LshConfig {
            num_tables,
            num_bits,
            seed: 0x15B,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LshTable {
    hyperplanes: Vec<Vec<f32>>,
    buckets: HashMap<u64, Vec<usize>>,
}

impl LshTable {
    fn hash(&self, vector: &[f32]) -> u64 {
        let mut h = 0u64;
        for (i, plane) in self.hyperplanes.iter().enumerate() {
            let dot: f32 = plane.iter().zip(vector.iter()).map(|(a, b)| a * b).sum();
            if dot > 0.0 {
                h |= 1 << i;
            }
        }
        h
    }
}

/// A random-hyperplane LSH index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LshIndex {
    config: LshConfig,
    dim: usize,
    metric: Metric,
    vectors: Vec<Vec<f32>>,
    tables: Vec<LshTable>,
    /// Candidates examined by the most recent search (cost proxy).
    candidates_last_search: usize,
}

impl LshIndex {
    /// Build an LSH index over `vectors`.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `vectors` is empty.
    /// * [`AnnError::InvalidParameter`] if the table or bit count is zero or
    ///   `num_bits` exceeds 63.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn build(vectors: Vec<Vec<f32>>, config: LshConfig) -> Result<Self> {
        if vectors.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        if config.num_tables == 0 {
            return Err(AnnError::InvalidParameter {
                name: "num_tables",
                message: "must be at least 1".into(),
            });
        }
        if config.num_bits == 0 || config.num_bits > 63 {
            return Err(AnnError::InvalidParameter {
                name: "num_bits",
                message: format!("{} must be in 1..=63", config.num_bits),
            });
        }
        let dim = vectors[0].len();
        for v in &vectors {
            if v.len() != dim {
                return Err(AnnError::DimensionMismatch {
                    expected: dim,
                    actual: v.len(),
                });
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tables = Vec::with_capacity(config.num_tables);
        for _ in 0..config.num_tables {
            let hyperplanes: Vec<Vec<f32>> = (0..config.num_bits)
                .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
                .collect();
            let mut table = LshTable {
                hyperplanes,
                buckets: HashMap::new(),
            };
            for (id, v) in vectors.iter().enumerate() {
                let h = table.hash(v);
                table.buckets.entry(h).or_default().push(id);
            }
            tables.push(table);
        }
        Ok(LshIndex {
            config,
            dim,
            metric: Metric::SquaredL2,
            vectors,
            tables,
            candidates_last_search: 0,
        })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty (never true for a constructed index).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of candidate vectors ranked during the most recent search.
    pub fn candidates_last_search(&self) -> usize {
        self.candidates_last_search
    }

    /// Search for the `k` nearest neighbors of `query`.
    ///
    /// `multiprobe` additionally probes, per table, every bucket whose hash
    /// differs from the query's in exactly one bit, which raises recall at
    /// the cost of examining more candidates.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for a query of the wrong
    /// dimensionality.
    pub fn search(&mut self, query: &[f32], k: usize, multiprobe: bool) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut candidates: HashSet<usize> = HashSet::new();
        for table in &self.tables {
            let h = table.hash(query);
            if let Some(bucket) = table.buckets.get(&h) {
                candidates.extend(bucket.iter().copied());
            }
            if multiprobe {
                for bit in 0..self.config.num_bits {
                    if let Some(bucket) = table.buckets.get(&(h ^ (1 << bit))) {
                        candidates.extend(bucket.iter().copied());
                    }
                }
            }
        }
        self.candidates_last_search = candidates.len();
        let mut top = TopK::new(k);
        for id in candidates {
            top.push(Neighbor::new(
                id,
                self.metric.distance(query, &self.vectors[id]),
            ));
        }
        Ok(top.into_sorted_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metrics::recall_at_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..dim).map(|_| rng.gen_range(-3.0f32..3.0)).collect())
            .collect();
        (0..n)
            .map(|i| {
                centers[i % 8]
                    .iter()
                    .map(|&c| c + rng.gen_range(-0.2..0.2))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn finds_identical_vector_in_its_own_bucket() {
        let data = clustered_data(400, 16, 1);
        let mut index = LshIndex::build(data.clone(), LshConfig::new(8, 12)).unwrap();
        let hits = index.search(&data[33], 1, false).unwrap();
        assert_eq!(hits[0].id, 33);
        assert_eq!(hits[0].distance, 0.0);
        assert!(index.candidates_last_search() > 0);
        assert!(
            index.candidates_last_search() < index.len(),
            "LSH must prune candidates"
        );
    }

    #[test]
    fn multiprobe_improves_or_preserves_recall() {
        let data = clustered_data(600, 12, 2);
        let mut index = LshIndex::build(data.clone(), LshConfig::new(4, 14)).unwrap();
        let flat = FlatIndex::new(data.clone(), Metric::SquaredL2).unwrap();
        let mut recall_single = 0.0;
        let mut recall_multi = 0.0;
        for qi in 0..20 {
            let query = &data[qi * 23];
            let truth: Vec<usize> = flat
                .search(query, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let single: Vec<usize> = index
                .search(query, 10, false)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let multi: Vec<usize> = index
                .search(query, 10, true)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            recall_single += recall_at_k(&single, &truth, 10);
            recall_multi += recall_at_k(&multi, &truth, 10);
        }
        assert!(recall_multi >= recall_single);
        assert!(
            recall_multi > 0.5,
            "multiprobe recall {recall_multi} unexpectedly low"
        );
    }

    #[test]
    fn rejects_invalid_configuration() {
        let data = clustered_data(10, 4, 3);
        assert!(matches!(
            LshIndex::build(data.clone(), LshConfig::new(0, 8)),
            Err(AnnError::InvalidParameter {
                name: "num_tables",
                ..
            })
        ));
        assert!(matches!(
            LshIndex::build(data.clone(), LshConfig::new(2, 0)),
            Err(AnnError::InvalidParameter {
                name: "num_bits",
                ..
            })
        ));
        assert!(matches!(
            LshIndex::build(data.clone(), LshConfig::new(2, 64)),
            Err(AnnError::InvalidParameter {
                name: "num_bits",
                ..
            })
        ));
        assert!(matches!(
            LshIndex::build(vec![], LshConfig::new(2, 8)),
            Err(AnnError::EmptyDataset)
        ));
        let mut index = LshIndex::build(data, LshConfig::new(2, 8)).unwrap();
        assert!(index.search(&[0.0; 3], 1, false).is_err());
    }
}
