//! Distance metrics between full-precision embeddings.

use serde::{Deserialize, Serialize};

/// Distance / similarity metric used by an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Squared Euclidean distance (lower is closer).
    #[default]
    SquaredL2,
    /// Negative inner product (lower is closer), matching FAISS's
    /// `METRIC_INNER_PRODUCT` convention when used as a distance.
    InnerProduct,
    /// Cosine distance, `1 - cos(a, b)` (lower is closer).
    Cosine,
}

impl Metric {
    /// Compute the distance between two vectors under this metric.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::SquaredL2 => squared_l2(a, b),
            Metric::InnerProduct => -inner_product(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }
}

/// Squared Euclidean distance between two vectors.
///
/// Four-wide unrolled with independent accumulators so the adds pipeline
/// instead of forming one serial dependency chain (the scalar kernel is on
/// the critical path of IVF training and the flat baselines). Note the sum
/// order differs from a naive sequential fold, so results can differ by
/// float-rounding noise.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn squared_l2(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have equal dimensionality");
    let mut aq = a.chunks_exact(4);
    let mut bq = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (x, y) in aq.by_ref().zip(bq.by_ref()) {
        let d0 = x[0] - y[0];
        let d1 = x[1] - y[1];
        let d2 = x[2] - y[2];
        let d3 = x[3] - y[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut tail = 0.0f32;
    for (x, y) in aq.remainder().iter().zip(bq.remainder()) {
        tail += (x - y) * (x - y);
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Euclidean distance between two vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    squared_l2(a, b).sqrt()
}

/// Inner product of two vectors.
///
/// Four-wide unrolled with independent accumulators (see [`squared_l2`]).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have equal dimensionality");
    let mut aq = a.chunks_exact(4);
    let mut bq = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (x, y) in aq.by_ref().zip(bq.by_ref()) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut tail = 0.0f32;
    for (x, y) in aq.remainder().iter().zip(bq.remainder()) {
        tail += x * y;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// L2 norm of a vector.
pub fn norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Cosine distance `1 - cos(a, b)`; zero vectors are treated as orthogonal to
/// everything (distance 1).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - inner_product(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_l2_matches_manual_computation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 0.0, 3.0];
        assert_eq!(squared_l2(&a, &b), 1.0 + 4.0);
        assert!((l2(&a, &b) - 5.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        let a = [0.5, -1.5, 2.0, 0.0];
        assert_eq!(squared_l2(&a, &a), 0.0);
        assert!(cosine_distance(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn inner_product_metric_is_negated() {
        let a = [1.0, 0.0];
        let b = [2.0, 0.0];
        assert_eq!(Metric::InnerProduct.distance(&a, &b), -2.0);
        // The closer (more similar) pair has a smaller metric value.
        let far = [0.1, 0.0];
        assert!(Metric::InnerProduct.distance(&a, &b) < Metric::InnerProduct.distance(&a, &far));
    }

    #[test]
    fn cosine_distance_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(cosine_distance(&a, &b).abs() < 1e-6);
        let orthogonal = [0.0, 0.0, 0.0];
        assert_eq!(cosine_distance(&a, &orthogonal), 1.0);
    }

    #[test]
    fn metric_dispatch_matches_free_functions() {
        let a = [0.3, -0.2, 0.9];
        let b = [-0.4, 0.8, 0.1];
        assert_eq!(Metric::SquaredL2.distance(&a, &b), squared_l2(&a, &b));
        assert_eq!(Metric::Cosine.distance(&a, &b), cosine_distance(&a, &b));
        assert_eq!(
            Metric::InnerProduct.distance(&a, &b),
            -inner_product(&a, &b)
        );
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn mismatched_dimensions_panic() {
        squared_l2(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn unrolled_kernels_match_naive_fold_for_all_tail_lengths() {
        for dim in 1..=19usize {
            let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37) - 2.0).collect();
            let b: Vec<f32> = (0..dim).map(|i| 1.5 - (i as f32 * 0.11)).collect();
            let naive_l2: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_ip: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((squared_l2(&a, &b) - naive_l2).abs() < 1e-4, "dim {dim}");
            assert!((inner_product(&a, &b) - naive_ip).abs() < 1e-4, "dim {dim}");
        }
    }
}
