//! # reis-ann — ANNS algorithms, quantization and retrieval metrics
//!
//! The algorithm substrate of the REIS reproduction:
//!
//! * [`vector`] / [`distance`] — embedding representations (f32, binary,
//!   INT8) and distance metrics.
//! * [`quantize`] — binary quantization (the representation the in-flash
//!   engine consumes), INT8 scalar quantization (reranking) and product
//!   quantization (the Fig. 5 comparison point).
//! * [`kmeans`] — centroid training for IVF and PQ.
//! * [`flat`] — exhaustive search (ground truth and the "BF" configuration).
//! * [`ivf`] — the Inverted File index, including the binary-quantized +
//!   INT8-reranked variant REIS executes in storage.
//! * [`hnsw`] / [`lsh`] — the graph- and hash-based alternatives evaluated in
//!   Fig. 5 and used by the prior-work comparator models.
//! * [`rerank`] — INT8 / f32 rescoring of quantized candidates.
//! * [`topk`] — quickselect and top-k selection primitives (the kernels the
//!   SSD's embedded cores run).
//! * [`metrics`] — Recall@k and throughput accounting.
//!
//! # Example
//!
//! ```
//! use reis_ann::ivf::{IvfBqIndex, IvfConfig};
//!
//! # fn main() -> Result<(), reis_ann::error::AnnError> {
//! let vectors: Vec<Vec<f32>> = (0..200)
//!     .map(|i| (0..32).map(|d| ((i * 7 + d) % 13) as f32 - 6.0).collect())
//!     .collect();
//! let index = IvfBqIndex::build(vectors.clone(), IvfConfig::new(8))?;
//! let hits = index.search(&vectors[5], 10, 4, 10)?;
//! assert_eq!(hits[0].id, 5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distance;
pub mod error;
pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod lsh;
pub mod metrics;
pub mod quantize;
pub mod rerank;
pub mod topk;
pub mod vector;

pub use distance::Metric;
pub use error::{AnnError, Result};
pub use flat::{FlatBinaryIndex, FlatIndex};
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfBqIndex, IvfConfig, IvfIndex};
pub use lsh::{LshConfig, LshIndex};
pub use quantize::{BinaryQuantizer, Int8Quantizer, ProductQuantizer, ProductQuantizerConfig};
pub use topk::Neighbor;
pub use vector::{BinaryVector, Int8Vector};
