//! Inverted File (IVF) indexes.
//!
//! IVF clusters the database into `nlist` groups, each represented by a
//! centroid. A query first finds the `nprobe` nearest centroids
//! (coarse-grained search), then scans only the embeddings of those clusters
//! (fine-grained search). Because the fine-grained scan streams through
//! contiguous cluster data, IVF is the ISP-friendly algorithm REIS builds on
//! (Sec. 4.2): the same cluster structure is used both by the CPU baselines
//! in this module and by the in-storage engine in `reis-core`.

use serde::{Deserialize, Serialize};

use crate::distance::Metric;
use crate::error::{AnnError, Result};
use crate::kmeans::{self, KMeansConfig};
use crate::quantize::{BinaryQuantizer, Int8Quantizer};
use crate::rerank;
use crate::topk::{Neighbor, TopK};
use crate::vector::{BinaryVector, Int8Vector};

/// Configuration of an IVF index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of clusters (`nlist`). The paper uses 16384 for the full
    /// wiki_en dataset; scaled-down datasets use proportionally fewer.
    pub nlist: usize,
    /// Distance metric for both coarse and fine search.
    pub metric: Metric,
    /// Seed for centroid training.
    pub seed: u64,
    /// k-means iterations used to train the centroids.
    pub train_iterations: usize,
}

impl IvfConfig {
    /// A configuration with `nlist` clusters and defaults for the rest.
    pub fn new(nlist: usize) -> Self {
        IvfConfig {
            nlist,
            metric: Metric::SquaredL2,
            seed: 0x1F5,
            train_iterations: 15,
        }
    }

    /// Builder-style override of the metric.
    pub fn with_metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Full-precision IVF index (the FAISS `IVFFlat` equivalent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IvfIndex {
    config: IvfConfig,
    dim: usize,
    centroids: Vec<Vec<f32>>,
    lists: Vec<Vec<usize>>,
    assignments: Vec<usize>,
    vectors: Vec<Vec<f32>>,
}

impl IvfIndex {
    /// Build an IVF index over `vectors`.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `vectors` is empty.
    /// * [`AnnError::InvalidParameter`] if `nlist` is zero or larger than the
    ///   number of vectors.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn build(vectors: Vec<Vec<f32>>, config: IvfConfig) -> Result<Self> {
        if vectors.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        if config.nlist == 0 || config.nlist > vectors.len() {
            return Err(AnnError::InvalidParameter {
                name: "nlist",
                message: format!("nlist = {} must be in 1..={}", config.nlist, vectors.len()),
            });
        }
        let dim = vectors[0].len();
        let model = kmeans::train(
            &vectors,
            &KMeansConfig::new(config.nlist)
                .with_seed(config.seed)
                .with_max_iterations(config.train_iterations),
        )?;
        let mut lists = vec![Vec::new(); config.nlist];
        for (id, &cluster) in model.assignments.iter().enumerate() {
            lists[cluster].push(id);
        }
        Ok(IvfIndex {
            config,
            dim,
            centroids: model.centroids,
            lists,
            assignments: model.assignments,
            vectors,
        })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty (never true for a constructed index).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Per-cluster member id lists.
    pub fn lists(&self) -> &[Vec<usize>] {
        &self.lists
    }

    /// Cluster assignment of every indexed vector.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// The indexed vectors (id order).
    pub fn vectors(&self) -> &[Vec<f32>] {
        &self.vectors
    }

    /// Ids of the `nprobe` clusters nearest to `query` (the coarse-grained
    /// search step).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for a query of the wrong
    /// dimensionality.
    pub fn nearest_clusters(&self, query: &[f32], nprobe: usize) -> Result<Vec<usize>> {
        if query.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut top = TopK::new(nprobe.max(1));
        for (cluster, centroid) in self.centroids.iter().enumerate() {
            top.push(Neighbor::new(
                cluster,
                self.config.metric.distance(query, centroid),
            ));
        }
        Ok(top.into_sorted_vec().into_iter().map(|n| n.id).collect())
    }

    /// Search for the `k` nearest neighbors of `query`, probing `nprobe`
    /// clusters.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for a query of the wrong
    /// dimensionality.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Result<Vec<Neighbor>> {
        let clusters = self.nearest_clusters(query, nprobe)?;
        let mut top = TopK::new(k);
        for cluster in clusters {
            for &id in &self.lists[cluster] {
                top.push(Neighbor::new(
                    id,
                    self.config.metric.distance(query, &self.vectors[id]),
                ));
            }
        }
        Ok(top.into_sorted_vec())
    }

    /// Expected number of fine-grained distance computations for a query
    /// probing `nprobe` clusters (average cluster size × nprobe), plus the
    /// `nlist` coarse computations. Used by analytic cost models.
    pub fn expected_distance_computations(&self, nprobe: usize) -> f64 {
        let avg_list = self.vectors.len() as f64 / self.nlist() as f64;
        self.nlist() as f64 + nprobe.min(self.nlist()) as f64 * avg_list
    }
}

/// Binary-quantized IVF index with INT8 reranking — the algorithm REIS runs
/// in storage, here in its CPU form (also the "BQ IVF" series of Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IvfBqIndex {
    dim: usize,
    metric: Metric,
    centroids: Vec<Vec<f32>>,
    centroid_binary: Vec<BinaryVector>,
    lists: Vec<Vec<usize>>,
    assignments: Vec<usize>,
    binary: Vec<BinaryVector>,
    int8: Vec<Int8Vector>,
    binary_quantizer: BinaryQuantizer,
    int8_quantizer: Int8Quantizer,
}

impl IvfBqIndex {
    /// Build the quantized index from a trained full-precision [`IvfIndex`].
    ///
    /// # Errors
    ///
    /// Propagates quantizer training errors (empty dataset, dimension
    /// mismatches).
    pub fn from_ivf(ivf: &IvfIndex) -> Result<Self> {
        let binary_quantizer = BinaryQuantizer::fit(ivf.vectors())?;
        let int8_quantizer = Int8Quantizer::fit(ivf.vectors())?;
        let binary = binary_quantizer.quantize_all(ivf.vectors())?;
        let int8 = int8_quantizer.quantize_all(ivf.vectors())?;
        let centroid_binary = ivf
            .centroids()
            .iter()
            .map(|c| binary_quantizer.quantize(c))
            .collect::<Result<Vec<_>>>()?;
        Ok(IvfBqIndex {
            dim: ivf.dim(),
            metric: ivf.config.metric,
            centroids: ivf.centroids().to_vec(),
            centroid_binary,
            lists: ivf.lists().to_vec(),
            assignments: ivf.assignments().to_vec(),
            binary,
            int8,
            binary_quantizer,
            int8_quantizer,
        })
    }

    /// Build the quantized index directly from raw vectors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IvfIndex::build`].
    pub fn build(vectors: Vec<Vec<f32>>, config: IvfConfig) -> Result<Self> {
        let ivf = IvfIndex::build(vectors, config)?;
        Self::from_ivf(&ivf)
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.binary.len()
    }

    /// Whether the index is empty (never true for a constructed index).
    pub fn is_empty(&self) -> bool {
        self.binary.is_empty()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of clusters.
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Full-precision cluster centroids.
    pub fn centroids(&self) -> &[Vec<f32>] {
        &self.centroids
    }

    /// Binary-quantized cluster centroids (what the in-storage coarse search
    /// compares against).
    pub fn centroid_binary(&self) -> &[BinaryVector] {
        &self.centroid_binary
    }

    /// Per-cluster member id lists.
    pub fn lists(&self) -> &[Vec<usize>] {
        &self.lists
    }

    /// Cluster assignment of every indexed vector.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Binary-quantized database vectors (id order).
    pub fn binary_vectors(&self) -> &[BinaryVector] {
        &self.binary
    }

    /// INT8 database vectors (id order).
    pub fn int8_vectors(&self) -> &[Int8Vector] {
        &self.int8
    }

    /// The binary quantizer fitted to the database.
    pub fn binary_quantizer(&self) -> &BinaryQuantizer {
        &self.binary_quantizer
    }

    /// The INT8 quantizer fitted to the database.
    pub fn int8_quantizer(&self) -> &Int8Quantizer {
        &self.int8_quantizer
    }

    /// Search with binary coarse + fine search and INT8 reranking, the exact
    /// flow REIS executes in storage: Hamming distance against binary
    /// centroids, Hamming scan of the probed clusters, then INT8 rescoring of
    /// the top `rerank_factor × k` candidates.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for a query of the wrong
    /// dimensionality.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rerank_factor: usize,
    ) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let query_binary = self.binary_quantizer.quantize(query)?;
        let query_int8 = self.int8_quantizer.quantize(query)?;

        // Coarse-grained search over binary centroids.
        let mut coarse = TopK::new(nprobe.max(1));
        for (cluster, centroid) in self.centroid_binary.iter().enumerate() {
            coarse.push(Neighbor::new(
                cluster,
                query_binary.hamming_distance(centroid) as f32,
            ));
        }

        // Fine-grained Hamming scan of the probed clusters.
        let candidate_count = (rerank_factor.max(1)) * k.max(1);
        let mut fine = TopK::new(candidate_count);
        for cluster in coarse.into_sorted_vec() {
            for &id in &self.lists[cluster.id] {
                fine.push(Neighbor::new(
                    id,
                    query_binary.hamming_distance(&self.binary[id]) as f32,
                ));
            }
        }
        let candidates: Vec<usize> = fine.into_sorted_vec().into_iter().map(|n| n.id).collect();

        // INT8 reranking of the surviving candidates.
        rerank::rerank_int8(&query_int8, &candidates, &self.int8, k)
    }

    /// Coarse + fine search using full-precision centroids for the coarse
    /// step (the software configuration FAISS uses for BQ IVF), otherwise
    /// identical to [`IvfBqIndex::search`].
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for a query of the wrong
    /// dimensionality.
    pub fn search_float_coarse(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rerank_factor: usize,
    ) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let query_binary = self.binary_quantizer.quantize(query)?;
        let query_int8 = self.int8_quantizer.quantize(query)?;
        let mut coarse = TopK::new(nprobe.max(1));
        for (cluster, centroid) in self.centroids.iter().enumerate() {
            coarse.push(Neighbor::new(
                cluster,
                self.metric.distance(query, centroid),
            ));
        }
        let candidate_count = (rerank_factor.max(1)) * k.max(1);
        let mut fine = TopK::new(candidate_count);
        for cluster in coarse.into_sorted_vec() {
            for &id in &self.lists[cluster.id] {
                fine.push(Neighbor::new(
                    id,
                    query_binary.hamming_distance(&self.binary[id]) as f32,
                ));
            }
        }
        let candidates: Vec<usize> = fine.into_sorted_vec().into_iter().map(|n| n.id).collect();
        rerank::rerank_int8(&query_int8, &candidates, &self.int8, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::metrics::recall_at_k;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Clustered synthetic dataset: `clusters` Gaussian-ish blobs in `dim`
    /// dimensions.
    fn clustered_data(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        (0..n)
            .map(|i| {
                let c = &centers[i % clusters];
                c.iter().map(|&x| x + rng.gen_range(-0.3..0.3)).collect()
            })
            .collect()
    }

    #[test]
    fn ivf_groups_vectors_into_lists_covering_everything() {
        let data = clustered_data(300, 8, 6, 1);
        let index = IvfIndex::build(data.clone(), IvfConfig::new(6)).unwrap();
        assert_eq!(index.nlist(), 6);
        assert_eq!(index.len(), 300);
        let total: usize = index.lists().iter().map(Vec::len).sum();
        assert_eq!(total, 300, "every vector belongs to exactly one list");
        for (id, &cluster) in index.assignments().iter().enumerate() {
            assert!(index.lists()[cluster].contains(&id));
        }
    }

    #[test]
    fn probing_all_clusters_matches_exhaustive_search() {
        let data = clustered_data(200, 6, 4, 2);
        let index = IvfIndex::build(data.clone(), IvfConfig::new(4)).unwrap();
        let flat = FlatIndex::new(data.clone(), Metric::SquaredL2).unwrap();
        for qi in [0usize, 17, 63, 150] {
            let query = &data[qi];
            let ivf_hits: Vec<usize> = index
                .search(query, 5, 4)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let flat_hits: Vec<usize> = flat
                .search(query, 5)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            assert_eq!(ivf_hits, flat_hits, "query {qi}");
        }
    }

    #[test]
    fn small_nprobe_trades_recall_for_fewer_computations() {
        let data = clustered_data(600, 12, 12, 3);
        let index = IvfIndex::build(data.clone(), IvfConfig::new(12)).unwrap();
        let flat = FlatIndex::new(data.clone(), Metric::SquaredL2).unwrap();
        let mut recall_1 = 0.0;
        let mut recall_all = 0.0;
        let queries = 20usize;
        for qi in 0..queries {
            let query = &data[qi * 7];
            let truth: Vec<usize> = flat
                .search(query, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let got1: Vec<usize> = index
                .search(query, 10, 1)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let gotall: Vec<usize> = index
                .search(query, 10, 12)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            recall_1 += recall_at_k(&got1, &truth, 10);
            recall_all += recall_at_k(&gotall, &truth, 10);
        }
        recall_1 /= queries as f64;
        recall_all /= queries as f64;
        assert!(
            recall_all > 0.999,
            "full probe recall should be exact, got {recall_all}"
        );
        assert!(recall_1 <= recall_all);
        assert!(index.expected_distance_computations(1) < index.expected_distance_computations(12));
    }

    #[test]
    fn bq_index_recovers_high_recall_with_reranking() {
        let data = clustered_data(500, 64, 10, 4);
        let ivf = IvfIndex::build(data.clone(), IvfConfig::new(10)).unwrap();
        let bq = IvfBqIndex::from_ivf(&ivf).unwrap();
        let flat = FlatIndex::new(data.clone(), Metric::SquaredL2).unwrap();
        let queries = 20usize;
        let mut recall = 0.0;
        for qi in 0..queries {
            let query = &data[qi * 11];
            let truth: Vec<usize> = flat
                .search(query, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            let got: Vec<usize> = bq
                .search(query, 10, 10, 10)
                .unwrap()
                .iter()
                .map(|n| n.id)
                .collect();
            recall += recall_at_k(&got, &truth, 10);
        }
        recall /= queries as f64;
        // On this synthetic 64-d dataset the within-cluster spread is close to
        // the INT8 quantization step, so reranking cannot fully restore the
        // exact ordering; the paper's 0.96+ figures use 1024-d embeddings.
        assert!(recall > 0.75, "BQ + rerank recall@10 = {recall} too low");
    }

    #[test]
    fn bq_float_coarse_behaves_like_binary_coarse_on_separated_clusters() {
        let data = clustered_data(300, 32, 6, 5);
        let bq = IvfBqIndex::build(data.clone(), IvfConfig::new(6)).unwrap();
        let query = &data[42];
        let a: Vec<usize> = bq
            .search(query, 5, 6, 10)
            .unwrap()
            .iter()
            .map(|n| n.id)
            .collect();
        let b: Vec<usize> = bq
            .search_float_coarse(query, 5, 6, 10)
            .unwrap()
            .iter()
            .map(|n| n.id)
            .collect();
        assert_eq!(
            a, b,
            "probing all clusters makes the coarse step irrelevant"
        );
        assert!(a.contains(&42));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let data = clustered_data(10, 4, 2, 6);
        assert!(matches!(
            IvfIndex::build(data.clone(), IvfConfig::new(0)),
            Err(AnnError::InvalidParameter { name: "nlist", .. })
        ));
        assert!(matches!(
            IvfIndex::build(data.clone(), IvfConfig::new(11)),
            Err(AnnError::InvalidParameter { name: "nlist", .. })
        ));
        assert!(matches!(
            IvfIndex::build(vec![], IvfConfig::new(1)),
            Err(AnnError::EmptyDataset)
        ));
        let index = IvfIndex::build(data, IvfConfig::new(2)).unwrap();
        assert!(
            index.search(&[1.0, 2.0], 3, 1).is_err(),
            "wrong query dimensionality"
        );
    }

    #[test]
    fn accessors_expose_layout_for_the_storage_engine() {
        let data = clustered_data(120, 16, 4, 7);
        let bq = IvfBqIndex::build(data, IvfConfig::new(4)).unwrap();
        assert_eq!(bq.binary_vectors().len(), 120);
        assert_eq!(bq.int8_vectors().len(), 120);
        assert_eq!(bq.centroid_binary().len(), 4);
        assert_eq!(bq.lists().len(), 4);
        assert_eq!(bq.assignments().len(), 120);
        assert_eq!(bq.binary_quantizer().dim(), 16);
        assert_eq!(bq.int8_quantizer().dim(), 16);
        assert_eq!(bq.dim(), 16);
        assert_eq!(bq.nlist(), 4);
        assert!(!bq.is_empty());
    }
}
