//! Vector representations used throughout the retrieval stack.
//!
//! Text embeddings start life as high-dimensional `f32` vectors (768–8192
//! dimensions in the models the paper surveys). REIS stores two derived
//! representations: a *binary* vector (one bit per dimension, the form the
//! in-plane XOR/popcount engine consumes) and an *INT8* vector used by the
//! reranking kernel on the SSD's embedded cores.

use serde::{Deserialize, Serialize};

/// Hamming distance between two equally long packed bit vectors — the
/// workspace's single word-parallel kernel ([`reis_kernels::hamming_bytes`]),
/// re-exported where the vector types live.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub use reis_kernels::hamming_bytes;

/// Set-bit count of a packed bit vector, processed as `u64` words with a
/// byte-wise tail; uses the hardware POPCNT instruction when the CPU has it
/// (delegates to the workspace kernel crate, [`reis_kernels`]).
#[inline]
pub fn popcount(bytes: &[u8]) -> u32 {
    reis_kernels::popcount_bytes(bytes) as u32
}

/// A binary-quantized embedding: one bit per dimension, packed into bytes.
///
/// Bit `d` of the vector is stored in byte `d / 8`, bit position `d % 8`
/// (least-significant first), so a 1024-dimension embedding occupies exactly
/// 128 bytes — the mini-page granularity used by REIS.
///
/// # Examples
///
/// ```
/// use reis_ann::vector::BinaryVector;
///
/// let v = BinaryVector::from_bits(&[true, false, true, true]);
/// assert_eq!(v.dim(), 4);
/// assert_eq!(v.count_ones(), 3);
/// assert!(v.bit(0) && !v.bit(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryVector {
    dim: usize,
    bytes: Vec<u8>,
}

impl BinaryVector {
    /// Create a binary vector from individual bit values.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut bytes = vec![0u8; bits.len().div_ceil(8)];
        for (d, &bit) in bits.iter().enumerate() {
            if bit {
                bytes[d / 8] |= 1 << (d % 8);
            }
        }
        BinaryVector {
            dim: bits.len(),
            bytes,
        }
    }

    /// Create a binary vector of `dim` dimensions from pre-packed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short to hold `dim` bits.
    pub fn from_packed(dim: usize, bytes: Vec<u8>) -> Self {
        assert!(
            bytes.len() * 8 >= dim,
            "{} bytes cannot hold {dim} bits",
            bytes.len()
        );
        BinaryVector { dim, bytes }
    }

    /// Dimensionality (number of bits) of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed byte representation (length `ceil(dim / 8)`).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the vector and return its packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Value of bit `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dim()`.
    pub fn bit(&self, d: usize) -> bool {
        assert!(
            d < self.dim,
            "bit index {d} out of range for {}-d vector",
            self.dim
        );
        (self.bytes[d / 8] >> (d % 8)) & 1 == 1
    }

    /// Number of set bits (word-parallel popcount).
    pub fn count_ones(&self) -> u32 {
        popcount(&self.bytes)
    }

    /// Hamming distance to another binary vector of the same dimensionality,
    /// computed over `u64` words (the software mirror of the in-plane
    /// XOR + fail-bit-count engine).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn hamming_distance(&self, other: &BinaryVector) -> u32 {
        assert_eq!(
            self.dim, other.dim,
            "hamming distance requires equal dimensionality"
        );
        hamming_bytes(&self.bytes, &other.bytes)
    }
}

/// An INT8 scalar-quantized embedding used for reranking.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Int8Vector {
    values: Vec<i8>,
}

impl Int8Vector {
    /// Create an INT8 vector from raw components.
    pub fn new(values: Vec<i8>) -> Self {
        Int8Vector { values }
    }

    /// Dimensionality of the vector.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// The raw INT8 components.
    pub fn as_slice(&self) -> &[i8] {
        &self.values
    }

    /// The byte footprint of the vector (one byte per dimension).
    pub fn byte_len(&self) -> usize {
        self.values.len()
    }

    /// Squared Euclidean distance to another INT8 vector, accumulated in i64
    /// to avoid overflow.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn squared_l2(&self, other: &Int8Vector) -> i64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "distance requires equal dimensionality"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| {
                let d = a as i64 - b as i64;
                d * d
            })
            .sum()
    }

    /// Squared Euclidean distance to an INT8 embedding stored as raw bytes
    /// (each byte reinterpreted as `i8`), e.g. a slot borrowed directly from
    /// a flash page readout. Four-wide unrolled with independent
    /// accumulators so the lanes pipeline; each squared difference fits i32
    /// and the lane sums accumulate in i64, so no overflow is possible.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` differs from the vector's dimensionality.
    pub fn squared_l2_raw(&self, raw: &[u8]) -> i64 {
        assert_eq!(
            self.dim(),
            raw.len(),
            "distance requires equal dimensionality"
        );
        let mut aq = self.values.chunks_exact(4);
        let mut bq = raw.chunks_exact(4);
        let (mut s0, mut s1, mut s2, mut s3) = (0i64, 0i64, 0i64, 0i64);
        for (a, b) in aq.by_ref().zip(bq.by_ref()) {
            let d0 = a[0] as i32 - b[0] as i8 as i32;
            let d1 = a[1] as i32 - b[1] as i8 as i32;
            let d2 = a[2] as i32 - b[2] as i8 as i32;
            let d3 = a[3] as i32 - b[3] as i8 as i32;
            s0 += (d0 * d0) as i64;
            s1 += (d1 * d1) as i64;
            s2 += (d2 * d2) as i64;
            s3 += (d3 * d3) as i64;
        }
        let mut tail = 0i64;
        for (&a, &b) in aq.remainder().iter().zip(bq.remainder()) {
            let d = a as i64 - b as i8 as i64;
            tail += d * d;
        }
        s0 + s1 + s2 + s3 + tail
    }

    /// Inner product with another INT8 vector, accumulated in i64.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn dot(&self, other: &Int8Vector) -> i64 {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dot product requires equal dimensionality"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum()
    }
}

/// Byte footprint of one full-precision `f32` vector of `dim` dimensions.
pub fn f32_vector_bytes(dim: usize) -> usize {
    dim * std::mem::size_of::<f32>()
}

/// Byte footprint of one binary vector of `dim` dimensions (packed).
pub fn binary_vector_bytes(dim: usize) -> usize {
    dim.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bits_and_bit_access_agree() {
        let bits = vec![true, false, false, true, true, false, true, false, true];
        let v = BinaryVector::from_bits(&bits);
        assert_eq!(v.dim(), 9);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(v.bit(i), b, "bit {i}");
        }
        assert_eq!(v.count_ones(), 5);
        assert_eq!(v.as_bytes().len(), 2);
    }

    #[test]
    fn hamming_distance_counts_differing_bits() {
        let a = BinaryVector::from_bits(&[true, true, false, false]);
        let b = BinaryVector::from_bits(&[true, false, true, false]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn hamming_distance_requires_same_dim() {
        let a = BinaryVector::from_bits(&[true; 8]);
        let b = BinaryVector::from_bits(&[true; 9]);
        a.hamming_distance(&b);
    }

    #[test]
    fn packed_roundtrip() {
        let v = BinaryVector::from_packed(16, vec![0xFF, 0x01]);
        assert_eq!(v.count_ones(), 9);
        assert_eq!(v.clone().into_bytes(), vec![0xFF, 0x01]);
        assert!(v.bit(8));
        assert!(!v.bit(9));
    }

    #[test]
    fn int8_distances() {
        let a = Int8Vector::new(vec![1, -2, 3]);
        let b = Int8Vector::new(vec![-1, 2, 3]);
        assert_eq!(a.squared_l2(&b), (4 + 16));
        assert_eq!(a.dot(&b), -1 - 4 + 9);
        assert_eq!(a.byte_len(), 3);
    }

    #[test]
    fn squared_l2_raw_matches_vector_distance_for_all_tail_lengths() {
        for dim in 1..=67usize {
            let a = Int8Vector::new(
                (0..dim)
                    .map(|i| ((i * 37) as i64 % 255 - 127) as i8)
                    .collect(),
            );
            let b_vals: Vec<i8> = (0..dim)
                .map(|i| ((i * 91 + 13) as i64 % 255 - 127) as i8)
                .collect();
            let raw: Vec<u8> = b_vals.iter().map(|&v| v as u8).collect();
            let b = Int8Vector::new(b_vals);
            assert_eq!(a.squared_l2_raw(&raw), a.squared_l2(&b), "dim {dim}");
        }
    }

    #[test]
    fn word_kernels_match_bitwise_reference_for_odd_dims() {
        for dim in [1usize, 7, 8, 9, 63, 64, 65, 127, 128, 129, 255, 256] {
            let bits_a: Vec<bool> = (0..dim).map(|i| (i * 7 + 3) % 5 < 2).collect();
            let bits_b: Vec<bool> = (0..dim).map(|i| (i * 11 + 1) % 3 == 0).collect();
            let a = BinaryVector::from_bits(&bits_a);
            let b = BinaryVector::from_bits(&bits_b);
            let expected_ones = bits_a.iter().filter(|&&x| x).count() as u32;
            let expected_dist = bits_a.iter().zip(&bits_b).filter(|(x, y)| x != y).count() as u32;
            assert_eq!(a.count_ones(), expected_ones, "dim {dim}");
            assert_eq!(a.hamming_distance(&b), expected_dist, "dim {dim}");
        }
    }

    #[test]
    fn int8_distance_handles_extreme_values_without_overflow() {
        let a = Int8Vector::new(vec![i8::MIN; 8192]);
        let b = Int8Vector::new(vec![i8::MAX; 8192]);
        let d = a.squared_l2(&b);
        assert_eq!(d, 8192i64 * 255 * 255);
    }

    #[test]
    fn footprint_helpers() {
        assert_eq!(f32_vector_bytes(1024), 4096);
        assert_eq!(binary_vector_bytes(1024), 128);
        assert_eq!(binary_vector_bytes(1025), 129);
    }

    #[test]
    fn one_kibibyte_dimension_embedding_is_a_mini_page() {
        // A 1024-d binary embedding is 128 bytes: 128 of them fill a 16 KB page.
        assert_eq!(16 * 1024 / binary_vector_bytes(1024), 128);
    }
}
