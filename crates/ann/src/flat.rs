//! Flat (exhaustive) indexes.
//!
//! A flat index compares the query against every database vector. It is the
//! slowest search strategy but is exact, so it provides (i) the ground truth
//! used to measure the recall of approximate indexes and (ii) the
//! "brute force" (BF) configuration evaluated in Figs. 7, 8 and 10 of the
//! paper.

use serde::{Deserialize, Serialize};

use crate::distance::Metric;
use crate::error::{AnnError, Result};
use crate::topk::{Neighbor, TopK};
use crate::vector::BinaryVector;

/// Exact nearest-neighbor index over full-precision vectors.
///
/// # Examples
///
/// ```
/// use reis_ann::flat::FlatIndex;
/// use reis_ann::distance::Metric;
///
/// # fn main() -> Result<(), reis_ann::error::AnnError> {
/// let index = FlatIndex::new(vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]], Metric::SquaredL2)?;
/// let hits = index.search(&[0.9, 1.1], 2)?;
/// assert_eq!(hits[0].id, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatIndex {
    vectors: Vec<Vec<f32>>,
    metric: Metric,
    dim: usize,
}

impl FlatIndex {
    /// Build a flat index over the given vectors.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `vectors` is empty.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn new(vectors: Vec<Vec<f32>>, metric: Metric) -> Result<Self> {
        if vectors.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        let dim = vectors[0].len();
        for v in &vectors {
            if v.len() != dim {
                return Err(AnnError::DimensionMismatch {
                    expected: dim,
                    actual: v.len(),
                });
            }
        }
        Ok(FlatIndex {
            vectors,
            metric,
            dim,
        })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty (never true for a constructed index).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The metric the index ranks by.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Access an indexed vector by id.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::UnknownVector`] for an out-of-range id.
    pub fn vector(&self, id: usize) -> Result<&[f32]> {
        self.vectors
            .get(id)
            .map(Vec::as_slice)
            .ok_or(AnnError::UnknownVector(id))
    }

    /// Exhaustively search for the `k` nearest neighbors of `query`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] if the query's length differs
    /// from the index dimensionality.
    pub fn search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.len(),
            });
        }
        let mut top = TopK::new(k);
        for (id, v) in self.vectors.iter().enumerate() {
            top.push(Neighbor::new(id, self.metric.distance(query, v)));
        }
        Ok(top.into_sorted_vec())
    }

    /// Number of distance computations one query performs (the full database
    /// size; used by the analytic CPU cost model).
    pub fn distance_computations_per_query(&self) -> usize {
        self.vectors.len()
    }
}

/// Exact nearest-neighbor index over binary-quantized vectors (Hamming
/// distance), as used by the "CPU + BQ" baseline of Fig. 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatBinaryIndex {
    vectors: Vec<BinaryVector>,
    dim: usize,
}

impl FlatBinaryIndex {
    /// Build a flat Hamming index over the given binary vectors.
    ///
    /// # Errors
    ///
    /// * [`AnnError::EmptyDataset`] if `vectors` is empty.
    /// * [`AnnError::DimensionMismatch`] if the vectors have inconsistent
    ///   dimensionality.
    pub fn new(vectors: Vec<BinaryVector>) -> Result<Self> {
        if vectors.is_empty() {
            return Err(AnnError::EmptyDataset);
        }
        let dim = vectors[0].dim();
        for v in &vectors {
            if v.dim() != dim {
                return Err(AnnError::DimensionMismatch {
                    expected: dim,
                    actual: v.dim(),
                });
            }
        }
        Ok(FlatBinaryIndex { vectors, dim })
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty (never true for a constructed index).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality (bits) of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Access an indexed vector by id.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::UnknownVector`] for an out-of-range id.
    pub fn vector(&self, id: usize) -> Result<&BinaryVector> {
        self.vectors.get(id).ok_or(AnnError::UnknownVector(id))
    }

    /// Exhaustively search for the `k` nearest neighbors of `query` under
    /// Hamming distance.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] if the query's dimensionality
    /// differs from the index.
    pub fn search(&self, query: &BinaryVector, k: usize) -> Result<Vec<Neighbor>> {
        if query.dim() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let mut top = TopK::new(k);
        for (id, v) in self.vectors.iter().enumerate() {
            top.push(Neighbor::new(id, query.hamming_distance(v) as f32));
        }
        Ok(top.into_sorted_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::BinaryQuantizer;

    fn grid_vectors() -> Vec<Vec<f32>> {
        (0..25)
            .map(|i| vec![(i % 5) as f32, (i / 5) as f32])
            .collect()
    }

    #[test]
    fn search_returns_exact_nearest_neighbors_in_order() {
        let index = FlatIndex::new(grid_vectors(), Metric::SquaredL2).unwrap();
        let hits = index.search(&[0.1, 0.1], 3).unwrap();
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        let ids: Vec<usize> = hits.iter().map(|h| h.id).collect();
        assert!(
            ids.contains(&1) && ids.contains(&5),
            "axis neighbors must be next: {ids:?}"
        );
    }

    #[test]
    fn search_with_k_larger_than_database_returns_everything() {
        let index = FlatIndex::new(grid_vectors(), Metric::SquaredL2).unwrap();
        let hits = index.search(&[0.0, 0.0], 100).unwrap();
        assert_eq!(hits.len(), 25);
        assert_eq!(index.distance_computations_per_query(), 25);
    }

    #[test]
    fn construction_validates_input() {
        assert!(matches!(
            FlatIndex::new(vec![], Metric::SquaredL2),
            Err(AnnError::EmptyDataset)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(
            FlatIndex::new(ragged, Metric::SquaredL2),
            Err(AnnError::DimensionMismatch { .. })
        ));
        let index = FlatIndex::new(grid_vectors(), Metric::SquaredL2).unwrap();
        assert!(matches!(
            index.search(&[1.0], 1),
            Err(AnnError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            index.vector(999),
            Err(AnnError::UnknownVector(999))
        ));
        assert_eq!(index.vector(3).unwrap(), &[3.0, 0.0]);
    }

    #[test]
    fn binary_flat_search_finds_hamming_neighbors() {
        let data = grid_vectors();
        let quantizer = BinaryQuantizer::fit(&data).unwrap();
        let binary = quantizer.quantize_all(&data).unwrap();
        let index = FlatBinaryIndex::new(binary.clone()).unwrap();
        assert_eq!(index.len(), 25);
        assert_eq!(index.dim(), 2);
        let hits = index.search(&binary[7], 1).unwrap();
        // The nearest binary vector to itself is at distance zero.
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(index.vector(7).unwrap(), &binary[7]);
    }

    #[test]
    fn binary_flat_rejects_dimension_mismatch() {
        let a = BinaryVector::from_bits(&[true; 8]);
        let index = FlatBinaryIndex::new(vec![a]).unwrap();
        let bad = BinaryVector::from_bits(&[true; 16]);
        assert!(index.search(&bad, 1).is_err());
        assert!(FlatBinaryIndex::new(vec![]).is_err());
    }
}
