//! The work-stealing pool, its scoped-execution API and worker-local slots.

use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Environment variable overriding the pool size picked at system
/// construction (the scheduler gate runs the identity suites at pool sizes
/// 1 and 4 through it).
pub const POOL_SIZE_ENV: &str = "REIS_SCHED_WORKERS";

/// How long a parked worker or scope waiter sleeps before re-checking the
/// deques. A safety net only — the wakeup protocol notifies eagerly; the
/// timeout bounds the damage of any missed edge to one period.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// A queued unit of work. Scoped tasks are lifetime-erased to `'static` at
/// spawn; the scope's wait-for-drain guarantee is what makes that sound.
type Task = Box<dyn FnOnce(&WorkerContext) + Send + 'static>;

/// Parse a pool-size override, falling back on anything absent or invalid
/// (zero included — a pool always has at least one worker).
pub fn parse_pool_size(raw: Option<&str>, fallback: usize) -> usize {
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n > 0 => n,
        _ => fallback.max(1),
    }
}

/// Pool size from [`POOL_SIZE_ENV`], else `fallback` (clamped to ≥ 1).
pub fn pool_size_from_env(fallback: usize) -> usize {
    parse_pool_size(std::env::var(POOL_SIZE_ENV).ok().as_deref(), fallback)
}

/// State shared between the pool handle, its workers and scope waiters.
struct Shared {
    /// One deque per worker. Submissions round-robin across them; worker
    /// `i` pops `queues[i]` from the front and steals from the back of the
    /// others.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin injection cursor.
    next_queue: AtomicUsize,
    /// Number of workers currently parked, guarded so a submitter and a
    /// parking worker serialize their queue-check/notify steps.
    sleepers: Mutex<usize>,
    /// Wakes parked workers on submission and shutdown.
    wakeup: Condvar,
    /// Set once by `Drop`; workers exit when they see it with empty deques.
    shutdown: AtomicBool,
}

impl Shared {
    /// Queue a task and wake a parked worker if there is one.
    fn push(&self, task: Task) {
        let slot = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot].lock().unwrap().push_back(task);
        // Taking the sleeper lock after the push closes the lost-wakeup
        // window: a worker that saw this deque empty either has not yet
        // incremented `sleepers` (it will re-check the deques first) or is
        // already counted and gets notified here.
        let sleepers = self.sleepers.lock().unwrap();
        if *sleepers > 0 {
            self.wakeup.notify_one();
        }
    }

    /// Pop a task, preferring `home`'s own deque (front), then stealing
    /// from the back of the others in ring order. Non-blocking.
    fn find_task(&self, home: usize) -> Option<Task> {
        let n = self.queues.len();
        if let Some(task) = self.queues[home % n].lock().unwrap().pop_front() {
            return Some(task);
        }
        for offset in 1..n {
            if let Some(task) = self.queues[(home + offset) % n].lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        None
    }

    /// True if any deque holds a task.
    fn any_queued(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    /// Park the calling worker until woken or timed out. Re-checks the
    /// deques and the shutdown flag under the sleeper lock so it cannot
    /// sleep through a submission that raced the park.
    fn park(&self) {
        let mut sleepers = self.sleepers.lock().unwrap();
        if self.shutdown.load(Ordering::Acquire) || self.any_queued() {
            return;
        }
        *sleepers += 1;
        let (guard, _) = self.wakeup.wait_timeout(sleepers, PARK_TIMEOUT).unwrap();
        sleepers = guard;
        *sleepers -= 1;
    }
}

/// The long-lived work-stealing worker pool. Constructed once (per
/// `ReisSystem`); every scan window, fused chunk and replica batch executes
/// on it afterwards through [`WorkerPool::scope`]. Dropping the pool shuts
/// the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `workers` long-lived threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_queue: AtomicUsize::new(0),
            sleepers: Mutex::new(0),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("reis-sched-{index}"))
                    .spawn(move || worker_main(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Spawn a pool sized by [`POOL_SIZE_ENV`], else `fallback`.
    pub fn from_env(fallback: usize) -> Self {
        Self::new(pool_size_from_env(fallback))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The context index used by threads that help while waiting on a
    /// scope (one past the last worker index). [`WorkerLocal`] reserves a
    /// slot for it.
    pub fn helper_index(&self) -> usize {
        self.handles.len()
    }

    /// Run `body` with a [`Scope`] on which tasks borrowing from the
    /// caller's stack can be spawned, and wait for all of them — helping
    /// to run queued tasks while waiting. Returns `body`'s value, or the
    /// first task panic as a [`TaskPanic`] (the pool stays fully usable).
    ///
    /// If `body` itself panics, the scope still waits for every spawned
    /// task before unwinding (the borrows must outlive the tasks).
    pub fn scope<'env, F, R>(&self, body: F) -> Result<R, TaskPanic>
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = {
            // The guard waits for the scope to drain even when `body`
            // unwinds, so no queued task can outlive the `'env` borrows.
            let _wait = WaitGuard {
                shared: &self.shared,
                state: &state,
            };
            body(&scope)
        };
        match state.take_panic() {
            Some(message) => Err(TaskPanic { message }),
            None => Ok(result),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _sleepers = self.shared.sleepers.lock().unwrap();
            self.shared.wakeup.notify_all();
        }
        for handle in self.handles.drain(..) {
            // Tasks run under catch_unwind, so workers only exit cleanly.
            let _ = handle.join();
        }
    }
}

/// Worker thread main loop: run everything findable, then park.
fn worker_main(shared: &Shared, index: usize) {
    let ctx = WorkerContext { index };
    loop {
        if let Some(task) = shared.find_task(index) {
            task(&ctx);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        shared.park();
    }
}

/// Identifies which pool thread is running a task: worker index, or
/// [`WorkerPool::helper_index`] for a scope waiter helping out. Used by
/// [`WorkerLocal`] to pick the preferred slot.
#[derive(Debug, Clone, Copy)]
pub struct WorkerContext {
    index: usize,
}

impl WorkerContext {
    /// The running thread's slot index.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// Per-scope completion tracking: outstanding task count plus the first
/// captured panic message.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<String>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn add(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn finish(&self) {
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn record_panic(&self, message: String) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(message);
        }
    }

    fn take_panic(&self) -> Option<String> {
        self.panic.lock().unwrap().take()
    }
}

/// Render a panic payload the way `std` does for unwinding threads.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Waits for a scope's tasks, helping to run queued work instead of
/// blocking. Helping is what makes nested scopes safe: a worker whose task
/// opens an inner scope drains tasks (its own inner shards included) while
/// it waits, so even a one-worker pool cannot deadlock on nesting.
struct WaitGuard<'a> {
    shared: &'a Shared,
    state: &'a ScopeState,
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        let helper = WorkerContext {
            index: self.shared.queues.len(),
        };
        loop {
            if let Some(task) = self.shared.find_task(helper.index) {
                task(&helper);
                continue;
            }
            let pending = self.state.pending.lock().unwrap();
            if *pending == 0 {
                return;
            }
            // Timed wait: a task stolen by another scope's waiter finishes
            // with a notify, but the timeout also bounds any missed edge.
            let _ = self.state.done.wait_timeout(pending, PARK_TIMEOUT).unwrap();
        }
    }
}

/// A scope handed to [`WorkerPool::scope`]'s body; tasks spawned on it may
/// borrow anything that outlives `'env` and are guaranteed to finish before
/// `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant in `'env`, exactly like `std::thread::Scope`.
    _env: PhantomData<&'scope mut &'env ()>,
}

impl fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope")
            .field("pending", &*self.state.pending.lock().unwrap())
            .finish()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue `task` on the pool. It runs on some worker (or on a helping
    /// waiter) before the enclosing [`WorkerPool::scope`] call returns; a
    /// panic inside it is captured into the scope's [`TaskPanic`] instead
    /// of unwinding through the pool.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&WorkerContext) + Send + 'env,
    {
        self.state.add();
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce(&WorkerContext) + Send + 'env> =
            Box::new(move |ctx: &WorkerContext| {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(ctx))) {
                    state.record_panic(panic_message(payload));
                }
                state.finish();
            });
        // SAFETY: lifetime erasure only. The enclosing `scope` call cannot
        // return — even by unwinding — until this scope's pending count hits
        // zero (`WaitGuard`), which happens strictly after `wrapped` has
        // run; the closure therefore never outlives the `'env` borrows it
        // captures. `finish` is called after the closure body completes, so
        // there is no window where the count is zero with the task live.
        let wrapped: Task = unsafe {
            std::mem::transmute::<
                Box<dyn FnOnce(&WorkerContext) + Send + 'env>,
                Box<dyn FnOnce(&WorkerContext) + Send + 'static>,
            >(wrapped)
        };
        self.pool.shared.push(wrapped);
    }
}

/// A task spawned in a [`WorkerPool::scope`] panicked. The panic is
/// contained: the pool, its workers and every other scope keep working;
/// callers surface this as an error value (`ReisError::WorkerPanic` in
/// `reis-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload, rendered as text.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// One slot of mutable state per pool thread (workers plus the helping
/// waiter), for scratch structures that should stay warm on the worker
/// that used them last.
///
/// [`WorkerLocal::acquire`] never blocks: it tries the caller's own slot
/// first, then the others. Under help-recursion one OS thread can hold
/// several slots at once (a replica task helping runs a sibling replica
/// task), so a blocking lock could self-deadlock — instead `acquire`
/// returns `None` when every slot is busy and the caller falls back to a
/// temporary. Scratch state never affects results, only allocation reuse,
/// so the fallback is identity-safe.
pub struct WorkerLocal<T> {
    slots: Vec<Mutex<T>>,
}

impl<T> fmt::Debug for WorkerLocal<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerLocal")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl<T> WorkerLocal<T> {
    /// One slot per pool thread: `pool.workers() + 1` (the extra one is the
    /// helping waiter's, see [`WorkerPool::helper_index`]).
    pub fn new(pool: &WorkerPool, mut init: impl FnMut(usize) -> T) -> Self {
        Self {
            slots: (0..=pool.workers()).map(|i| Mutex::new(init(i))).collect(),
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Exclusive iteration over every slot (no locking — requires `&mut`).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|m| m.get_mut().unwrap())
    }

    /// Borrow a slot without blocking, preferring the caller's own; `None`
    /// if every slot is currently held (callers use a temporary then).
    pub fn acquire(&self, ctx: &WorkerContext) -> Option<MutexGuard<'_, T>> {
        let n = self.slots.len();
        let home = ctx.index() % n;
        for offset in 0..n {
            if let Ok(guard) = self.slots[(home + offset) % n].try_lock() {
                return Some(guard);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_spawned_task() {
        let pool = WorkerPool::new(4);
        let count = AtomicUsize::new(0);
        let result = pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            "body value"
        });
        assert_eq!(result, Ok("body value"));
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn tasks_borrow_stack_data() {
        let pool = WorkerPool::new(2);
        let mut cells: Vec<Mutex<u64>> = (0..16).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (i, cell) in cells.iter().enumerate() {
                s.spawn(move |_| {
                    *cell.lock().unwrap() = i as u64 + 1;
                });
            }
        })
        .unwrap();
        let total: u64 = cells.iter_mut().map(|c| *c.get_mut().unwrap()).sum();
        assert_eq!(total, (1..=16).sum::<u64>());
    }

    #[test]
    fn panic_is_isolated_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        let result = pool.scope(|s| {
            s.spawn(|_| panic!("boom in task"));
            for _ in 0..31 {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        let err = result.unwrap_err();
        assert!(err.message.contains("boom in task"), "{}", err.message);
        // Every non-panicking sibling still ran.
        assert_eq!(count.load(Ordering::Relaxed), 31);
        // The pool is not poisoned: a later scope works normally.
        let again = pool.scope(|s| {
            s.spawn(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(again, Ok(()));
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn scope_body_panic_still_waits_for_tasks() {
        let pool = WorkerPool::new(1);
        let count = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&count);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.scope(|s| {
                for _ in 0..8 {
                    let seen = Arc::clone(&seen);
                    s.spawn(move |_| {
                        seen.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body bails out");
            });
        }));
        assert!(outcome.is_err());
        // The drop guard drained the scope before the unwind continued.
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_scopes_on_one_worker_cannot_deadlock() {
        let pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|_| {
                    // The worker waits on the inner scope while helping,
                    // so it runs the inner tasks itself.
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|_| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    })
                    .unwrap();
                });
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn worker_local_slots_cover_all_contexts() {
        let pool = WorkerPool::new(3);
        let mut local: WorkerLocal<Vec<usize>> = WorkerLocal::new(&pool, |_| Vec::new());
        assert_eq!(local.slots(), 4);
        pool.scope(|s| {
            for i in 0..32 {
                let local = &local;
                s.spawn(move |ctx| {
                    assert!(ctx.index() < local.slots());
                    let mut slot = local.acquire(ctx).expect("uncontended acquire");
                    slot.push(i);
                });
            }
        })
        .unwrap();
        let mut all: Vec<usize> = Vec::new();
        for slot in local.iter_mut() {
            all.append(slot);
        }
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn parse_pool_size_contract() {
        assert_eq!(parse_pool_size(None, 3), 3);
        assert_eq!(parse_pool_size(Some("4"), 3), 4);
        assert_eq!(parse_pool_size(Some(" 2 "), 3), 2);
        assert_eq!(parse_pool_size(Some("0"), 3), 3);
        assert_eq!(parse_pool_size(Some("nope"), 3), 3);
        assert_eq!(parse_pool_size(None, 0), 1);
    }

    #[test]
    fn drop_joins_cleanly() {
        for _ in 0..8 {
            let pool = WorkerPool::new(2);
            pool.scope(|s| {
                s.spawn(|_| {});
            })
            .unwrap();
            drop(pool);
        }
    }
}
