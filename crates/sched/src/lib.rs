//! # reis-sched — persistent work-stealing worker pool
//!
//! REIS's throughput case rests on keeping every channel/die busy while the
//! host stays decoupled from device-side work. Before this crate, the engine
//! spawned scoped threads anew for every adaptive scan window, every fused
//! page chunk and every replica batch — and `BENCH_pr5.json` showed the
//! per-window spawn/join overhead eating the sharding win at transfer-optimal
//! window sizes. [`WorkerPool`] is the fix: a long-lived pool built on std
//! primitives only, constructed once per [`ReisSystem`](../reis_core) and
//! reused by every query path afterwards, so no query or mutation path
//! creates threads after system construction.
//!
//! Design:
//!
//! * **Per-worker injector + stealable deques** — each worker owns a deque;
//!   submission round-robins across them, a worker pops its own deque from
//!   the front and steals from the back of its siblings when empty.
//! * **Parked idle workers** — an idle worker parks on a condvar after
//!   re-checking the deques under the sleeper lock (no lost wakeups), and a
//!   submission wakes exactly one sleeper.
//! * **Panic-isolating scoped execution** — [`WorkerPool::scope`] mirrors
//!   `std::thread::scope`: tasks may borrow from the caller's stack, and the
//!   scope does not return until every spawned task ran. Each task runs
//!   under `catch_unwind`; the first panic is reported as a [`TaskPanic`]
//!   value, poisoning neither the pool nor unrelated scopes.
//! * **Help-while-waiting** — a thread waiting for its scope to drain runs
//!   queued tasks itself instead of blocking. This keeps nested scopes (a
//!   replica-batch task whose query opens a sharded-scan scope) deadlock-free
//!   even on a one-worker pool, and lets pool size 1 make progress at all.
//! * **Per-worker state affinity** — [`WorkerLocal`] keeps one slot per
//!   worker (plus one for helping waiters) so hot scratch structures such as
//!   `ScanScratch` stay warm on the worker that used them last, acquired with
//!   a non-blocking protocol that can never deadlock under help-recursion.
//!
//! Scheduling never influences *what* is computed: callers merge results in
//! shard/worker order from slots they own, so results and logical accounting
//! are bit-identical across pool sizes — property-tested by
//! `crates/core/tests/scheduler.rs` and enforced by the `scheduler-gate` CI
//! job.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod pool;

pub use pool::{
    parse_pool_size, pool_size_from_env, Scope, TaskPanic, WorkerContext, WorkerLocal, WorkerPool,
    POOL_SIZE_ENV,
};
