//! The asynchronous request pipeline over an aggregator-leaf cluster.
//!
//! Same front door as [`reis_core::Pipeline`] — bounded lanes, batch
//! formation, priority lanes, explicit [`ReisError::Overloaded`]
//! backpressure — but dispatching through [`ClusterSystem::search_batch`]
//! so a formed batch fans out across every shard once per query. The lane
//! mechanics (`PipelineConfig`, `PipelineRequest`, `LanePriority`) are
//! shared with the single-device pipeline so traces port between the two
//! unchanged.
//!
//! Virtual-time semantics are identical: callers stamp submissions, the
//! aggregator's modelled end-to-end latency prices completions, and a
//! device-busy horizon serializes dispatches. One difference in replies:
//! cluster inserts mint a stable id rather than returning a mutation
//! outcome, so they complete at dispatch time with
//! [`ClusterPipelineReply::Inserted`].

use std::collections::VecDeque;

use reis_core::{
    LanePriority, MutationOutcome, PipelineConfig, PipelineRequest, ReisError, Result,
};
use reis_telemetry::{CounterId, HistogramId};

use crate::cluster::{ClusterSearchOutcome, ClusterSystem};

/// A completed cluster request's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterPipelineReply {
    /// A search's merged cluster-wide outcome.
    Search(ClusterSearchOutcome),
    /// An insert's globally minted stable id.
    Inserted(u32),
    /// A delete or upsert outcome (from the owning shard's replicas).
    Mutation(MutationOutcome),
}

/// One completion record, mirroring [`reis_core::PipelineCompletion`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPipelineCompletion {
    /// The id [`ClusterPipeline::submit`] returned.
    pub request_id: u64,
    /// Virtual submission timestamp (the caller's).
    pub submitted_ns: u64,
    /// Virtual time the request's batch left its lane.
    pub dispatched_ns: u64,
    /// Virtual time the modelled cluster completed it.
    pub completed_ns: u64,
    /// Size of the batch the request dispatched in (1 for mutations).
    pub batch_size: usize,
    /// The answer, or the error the whole batch surfaced.
    pub reply: Result<ClusterPipelineReply>,
}

#[derive(Debug)]
struct Pending {
    request_id: u64,
    submitted_ns: u64,
    request: PipelineRequest,
}

/// The asynchronous request pipeline over a [`ClusterSystem`] (see the
/// module docs). Created by [`ClusterSystem::pipeline`].
#[derive(Debug)]
pub struct ClusterPipeline<'a> {
    system: &'a mut ClusterSystem,
    config: PipelineConfig,
    clock_ns: u64,
    device_free_ns: u64,
    searches: VecDeque<Pending>,
    mutations: VecDeque<Pending>,
    completions: Vec<ClusterPipelineCompletion>,
    next_id: u64,
    shed: u64,
}

impl ClusterSystem {
    /// Open an asynchronous request pipeline over the deployed corpus
    /// (see [`ClusterPipeline`]). The pipeline borrows the cluster
    /// exclusively; drop it (after [`ClusterPipeline::flush`]) to use
    /// the cluster directly again.
    pub fn pipeline(&mut self, config: PipelineConfig) -> ClusterPipeline<'_> {
        ClusterPipeline {
            system: self,
            config: PipelineConfig {
                max_batch: config.max_batch.max(1),
                queue_depth: config.queue_depth.max(1),
                workers: config.workers.max(1),
                ..config
            },
            clock_ns: 0,
            device_free_ns: 0,
            searches: VecDeque::new(),
            mutations: VecDeque::new(),
            completions: Vec::new(),
            next_id: 0,
            shed: 0,
        }
    }
}

impl ClusterPipeline<'_> {
    /// Submit one request at virtual time `at_ns`. Semantics match
    /// [`reis_core::Pipeline::submit`].
    ///
    /// # Errors
    ///
    /// [`ReisError::Overloaded`] when the request's lane is at
    /// [`PipelineConfig::queue_depth`]; the request is shed and the
    /// pipeline stays fully usable.
    pub fn submit(&mut self, at_ns: u64, request: PipelineRequest) -> Result<u64> {
        self.run_until(at_ns);
        self.clock_ns = self.clock_ns.max(at_ns);

        let telemetry = self.system.telemetry().clone();
        let lane = if request.is_mutation() {
            &mut self.mutations
        } else {
            &mut self.searches
        };
        if lane.len() >= self.config.queue_depth {
            self.shed += 1;
            telemetry.count(CounterId::PipelineShed, 1);
            return Err(ReisError::Overloaded {
                depth: self.config.queue_depth,
            });
        }

        let incompatible = !request.is_mutation()
            && self
                .searches
                .front()
                .is_some_and(|head| head.request.batch_key() != request.batch_key());
        if incompatible {
            self.dispatch_searches();
        }

        let request_id = self.next_id;
        self.next_id += 1;
        let is_mutation = request.is_mutation();
        let pending = Pending {
            request_id,
            submitted_ns: self.clock_ns,
            request,
        };
        let lane = if is_mutation {
            &mut self.mutations
        } else {
            &mut self.searches
        };
        lane.push_back(pending);
        let depth = lane.len();
        telemetry.count(CounterId::PipelineRequests, 1);
        telemetry.observe(HistogramId::PipelineQueueDepth, depth as u64);

        if !is_mutation && self.searches.len() >= self.config.max_batch {
            self.dispatch_searches();
        }
        Ok(request_id)
    }

    /// Advance virtual time to `at_ns`, firing elapsed formation
    /// deadlines in deadline order (ties broken by [`LanePriority`]).
    pub fn run_until(&mut self, at_ns: u64) {
        loop {
            let search_deadline = self
                .searches
                .front()
                .map(|p| p.submitted_ns.saturating_add(self.config.max_wait_ns));
            let mutation_deadline = self
                .mutations
                .front()
                .map(|p| p.submitted_ns.saturating_add(self.config.max_wait_ns));
            let mutations_first = match (search_deadline, mutation_deadline) {
                (None, None) => break,
                (Some(s), None) if s <= at_ns => false,
                (None, Some(m)) if m <= at_ns => true,
                (Some(s), Some(m)) if s.min(m) <= at_ns => {
                    m < s || (m == s && self.config.priority == LanePriority::MutationsFirst)
                }
                _ => break,
            };
            let deadline = if mutations_first {
                mutation_deadline.unwrap()
            } else {
                search_deadline.unwrap()
            };
            self.clock_ns = self.clock_ns.max(deadline);
            if mutations_first {
                self.dispatch_mutations();
            } else {
                self.dispatch_searches();
            }
        }
        self.clock_ns = self.clock_ns.max(at_ns);
    }

    /// Dispatch everything still queued, in priority order.
    pub fn flush(&mut self) {
        match self.config.priority {
            LanePriority::MutationsFirst => {
                self.dispatch_mutations();
                self.dispatch_searches();
            }
            LanePriority::SearchesFirst => {
                self.dispatch_searches();
                self.dispatch_mutations();
            }
        }
    }

    /// Take every completion recorded so far, in dispatch order.
    pub fn drain_completions(&mut self) -> Vec<ClusterPipelineCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Requests shed with [`ReisError::Overloaded`] so far.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Requests currently queued across both lanes.
    pub fn queued(&self) -> usize {
        self.searches.len() + self.mutations.len()
    }

    /// The current virtual time, nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    fn dispatch_searches(&mut self) {
        if self.config.priority == LanePriority::MutationsFirst && !self.mutations.is_empty() {
            self.dispatch_mutations();
        }
        if self.searches.is_empty() {
            return;
        }
        let batch: Vec<Pending> = self.searches.drain(..).collect();
        let dispatched_ns = self.clock_ns;
        let start_ns = dispatched_ns.max(self.device_free_ns);
        let batch_size = batch.len();
        let telemetry = self.system.telemetry().clone();
        telemetry.observe(HistogramId::PipelineBatchSize, batch_size as u64);
        for pending in &batch {
            telemetry.observe(
                HistogramId::PipelineQueueWaitNs,
                dispatched_ns.saturating_sub(pending.submitted_ns),
            );
        }

        let (k, nprobe) = batch[0]
            .request
            .batch_key()
            .expect("search lane holds only searches");
        let queries: Vec<Vec<f32>> = batch
            .iter()
            .map(|p| match &p.request {
                PipelineRequest::Search { query, .. }
                | PipelineRequest::IvfSearch { query, .. } => query.clone(),
                _ => unreachable!("search lane holds only searches"),
            })
            .collect();
        match self.system.search_batch(&queries, k, nprobe) {
            Ok(outcomes) => {
                let mut busy_until = start_ns;
                for (pending, outcome) in batch.into_iter().zip(outcomes) {
                    let completed_ns = start_ns + outcome.latency.as_nanos();
                    busy_until = busy_until.max(completed_ns);
                    self.completions.push(ClusterPipelineCompletion {
                        request_id: pending.request_id,
                        submitted_ns: pending.submitted_ns,
                        dispatched_ns,
                        completed_ns,
                        batch_size,
                        reply: Ok(ClusterPipelineReply::Search(outcome)),
                    });
                }
                self.device_free_ns = busy_until;
            }
            Err(error) => {
                for pending in batch {
                    self.completions.push(ClusterPipelineCompletion {
                        request_id: pending.request_id,
                        submitted_ns: pending.submitted_ns,
                        dispatched_ns,
                        completed_ns: start_ns,
                        batch_size,
                        reply: Err(error.clone()),
                    });
                }
            }
        }
    }

    fn dispatch_mutations(&mut self) {
        if self.mutations.is_empty() {
            return;
        }
        let lane: Vec<Pending> = self.mutations.drain(..).collect();
        let dispatched_ns = self.clock_ns;
        let telemetry = self.system.telemetry().clone();
        for pending in lane {
            telemetry.observe(
                HistogramId::PipelineQueueWaitNs,
                dispatched_ns.saturating_sub(pending.submitted_ns),
            );
            let start_ns = dispatched_ns.max(self.device_free_ns);
            let (completed_ns, reply) = match pending.request {
                PipelineRequest::Insert { vector, document } => {
                    match self.system.insert(&vector, document) {
                        // Cluster inserts report only the minted id, so no
                        // modelled program latency advances the horizon.
                        Ok(id) => (start_ns, Ok(ClusterPipelineReply::Inserted(id))),
                        Err(error) => (start_ns, Err(error)),
                    }
                }
                PipelineRequest::Delete { id } => match self.system.delete(id) {
                    Ok(outcome) => {
                        let done = start_ns + outcome.latency.as_nanos();
                        self.device_free_ns = done;
                        (done, Ok(ClusterPipelineReply::Mutation(outcome)))
                    }
                    Err(error) => (start_ns, Err(error)),
                },
                PipelineRequest::Upsert {
                    id,
                    vector,
                    document,
                } => match self.system.upsert(id, &vector, &document) {
                    Ok(outcome) => {
                        let done = start_ns + outcome.latency.as_nanos();
                        self.device_free_ns = done;
                        (done, Ok(ClusterPipelineReply::Mutation(outcome)))
                    }
                    Err(error) => (start_ns, Err(error)),
                },
                _ => unreachable!("mutation lane holds only mutations"),
            };
            self.completions.push(ClusterPipelineCompletion {
                request_id: pending.request_id,
                submitted_ns: pending.submitted_ns,
                dispatched_ns,
                completed_ns,
                batch_size: 1,
                reply,
            });
        }
    }
}
