//! The exact scatter–gather merge.
//!
//! A single device cuts its rerank candidate set *globally*: the best
//! `rerank_factor × k` threshold survivors by `(binary distance, storage
//! index)`, then the top k of those by `(raw INT8 distance, storage
//! index)`. Leaves can only cut locally, so each reports its full ≤ budget
//! candidate set ([`LeafCandidate`]) and the aggregator replays both cuts
//! over the union under the **lifted** orders
//!
//! * candidate cut: `(binary, leaf, storage index)`
//! * final ranking: `(raw, leaf, storage index)`
//!
//! When each leaf holds a contiguous slice of the single-device scan
//! order, `(leaf, storage index)` is order-isomorphic to the single-device
//! storage index, so the lifted orders coincide with the single-device
//! orders and the merged top-k is bit-identical. Any candidate in the
//! union's top budget is a fortiori in its own leaf's top budget, so the
//! union of leaf sets is a superset of the single-device candidate set and
//! no survivor is ever missing.

use reis_core::LeafCandidate;

/// A merged candidate with its originating leaf (the merge tie-break key
/// and the document-fetch routing handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedCandidate {
    /// Index of the leaf that reported the candidate.
    pub leaf: usize,
    /// The leaf's fully scored candidate.
    pub candidate: LeafCandidate,
}

/// What the merge produced, with the accounting the aggregator reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOutcome {
    /// The global top-k, ascending by `(raw, leaf, storage index)`.
    pub winners: Vec<RankedCandidate>,
    /// Union candidate count before the global cut.
    pub merged_candidates: usize,
    /// Candidates surviving the global `rerank_factor × k` cut.
    pub cut_candidates: usize,
}

/// Merge per-leaf candidate sets into the global top `k`: the global
/// candidate cut to `budget` by `(binary, leaf, storage index)`, then the
/// top `k` by `(raw, leaf, storage index)`.
pub fn merge_top_k(per_leaf: &[Vec<LeafCandidate>], budget: usize, k: usize) -> MergeOutcome {
    let mut union: Vec<RankedCandidate> = per_leaf
        .iter()
        .enumerate()
        .flat_map(|(leaf, candidates)| {
            candidates
                .iter()
                .map(move |&candidate| RankedCandidate { leaf, candidate })
        })
        .collect();
    let merged_candidates = union.len();

    union.sort_unstable_by_key(|r| (r.candidate.binary, r.leaf, r.candidate.storage_index));
    union.truncate(budget);
    let cut_candidates = union.len();

    union.sort_unstable_by_key(|r| (r.candidate.raw, r.leaf, r.candidate.storage_index));
    union.truncate(k);

    MergeOutcome {
        winners: union,
        merged_candidates,
        cut_candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(binary: u32, storage_index: u32, id: u32, raw: i64) -> LeafCandidate {
        LeafCandidate {
            binary,
            storage_index,
            id,
            raw,
        }
    }

    #[test]
    fn candidate_cut_prefers_lower_leaf_then_lower_storage_index() {
        // Three candidates share the boundary binary distance; budget keeps
        // exactly one of them. Leaf order breaks the tie first, storage
        // index second.
        let per_leaf = vec![
            vec![cand(3, 9, 100, 50)],
            vec![cand(3, 0, 200, 10), cand(3, 1, 201, 20)],
        ];
        let merged = merge_top_k(&per_leaf, 1, 1);
        assert_eq!(merged.merged_candidates, 3);
        assert_eq!(merged.cut_candidates, 1);
        // (3, leaf 0, idx 9) beats (3, leaf 1, idx 0) despite the larger
        // storage index: the leaf id is the senior tie-break.
        assert_eq!(merged.winners[0].candidate.id, 100);
    }

    #[test]
    fn final_ranking_breaks_raw_ties_by_leaf_then_storage_index() {
        // Duplicate raw distances colliding across leaves.
        let per_leaf = vec![
            vec![cand(1, 5, 10, 77), cand(2, 6, 11, 77)],
            vec![cand(1, 0, 20, 77)],
            vec![cand(1, 2, 30, 76)],
        ];
        let merged = merge_top_k(&per_leaf, 10, 4);
        let ids: Vec<u32> = merged.winners.iter().map(|w| w.candidate.id).collect();
        // 30 wins outright (raw 76); among the 77s: leaf 0 idx 5, leaf 0
        // idx 6, then leaf 1 idx 0.
        assert_eq!(ids, vec![30, 10, 11, 20]);
    }

    #[test]
    fn cut_happens_before_ranking() {
        // A candidate with the best raw distance but a boundary-losing
        // binary distance must be cut before ranking, exactly as a single
        // device would cut it.
        let per_leaf = vec![
            vec![cand(1, 0, 1, 100), cand(1, 1, 2, 90)],
            vec![cand(5, 0, 3, 1)],
        ];
        let merged = merge_top_k(&per_leaf, 2, 2);
        let ids: Vec<u32> = merged.winners.iter().map(|w| w.candidate.id).collect();
        assert_eq!(
            ids,
            vec![2, 1],
            "raw-best candidate must not survive the binary cut"
        );
    }

    #[test]
    fn short_inputs_merge_without_padding() {
        let merged = merge_top_k(&[vec![], vec![cand(0, 0, 7, 5)]], 10, 3);
        assert_eq!(merged.merged_candidates, 1);
        assert_eq!(merged.cut_candidates, 1);
        assert_eq!(merged.winners.len(), 1);
        assert_eq!(merged.winners[0].leaf, 1);
    }
}
