//! Modelled per-leaf latency skew and hedged requests.
//!
//! Real scale-out deployments see *stragglers*: one leaf's answer arrives
//! late because of queueing, garbage collection or a slow link, and the
//! aggregator's fan-out latency is the **max** over leaf completions. The
//! standard mitigation is the hedged request: if a leaf has not answered
//! by a deadline, dispatch a duplicate to a replica and take whichever
//! answer lands first.
//!
//! Everything here is *modelled time*, deterministic under a seed — the
//! leaf's in-storage work is computed exactly once, and the skew draws
//! only decide how long that work is *deemed* to take. Because primary and
//! hedge would execute the identical deterministic pipeline, the merged
//! results are bit-identical no matter which replica "wins"; only the
//! reported completion time differs. The scale-out test suite pins this
//! down by sweeping schedules where the hedge wins, loses and ties.

use reis_nand::Nanos;
use reis_persist::splitmix64;

/// Seeded per-leaf latency skew: every `(leaf, query, attempt)` triple maps
/// to one deterministic delay draw in `base_ns + [0, jitter_ns)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    seed: u64,
    base_ns: u64,
    jitter_ns: u64,
}

impl LatencyModel {
    /// No skew at all: every draw is zero (the default for bit-identity
    /// tests, where modelled time is irrelevant).
    pub const fn uniform() -> Self {
        LatencyModel {
            seed: 0,
            base_ns: 0,
            jitter_ns: 0,
        }
    }

    /// A skew model drawing `base_ns + [0, jitter_ns)` under `seed`.
    pub const fn new(seed: u64, base_ns: u64, jitter_ns: u64) -> Self {
        LatencyModel {
            seed,
            base_ns,
            jitter_ns,
        }
    }

    /// The delay of attempt `attempt` of query `seq` on `leaf`.
    /// Deterministic: same triple, same seed, same draw.
    pub fn delay(&self, leaf: usize, seq: u64, attempt: u32) -> Nanos {
        if self.jitter_ns == 0 {
            return Nanos::from_nanos(self.base_ns);
        }
        let mut state = self
            .seed
            .wrapping_add((leaf as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(seq.wrapping_mul(0x9FB2_1C65_1E98_DF25))
            .wrapping_add((attempt as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        Nanos::from_nanos(self.base_ns + splitmix64(&mut state) % self.jitter_ns)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::uniform()
    }
}

/// Hedged-request policy: when a leaf's primary completion (compute plus
/// skew) overshoots `deadline`, a duplicate is dispatched at the deadline
/// and the leaf completes at the earlier of the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgePolicy {
    /// Time after fan-out at which a straggling leaf is hedged.
    pub deadline: Nanos,
}

impl HedgePolicy {
    /// A policy hedging after `deadline`.
    pub const fn new(deadline: Nanos) -> Self {
        HedgePolicy { deadline }
    }
}

/// One leaf's modelled completion of one fanned-out request: compute time
/// plus the primary skew draw, hedged against `deadline + compute + hedge
/// draw` when the policy says so. Returns the completion time and whether
/// a hedge was launched.
pub(crate) fn leaf_completion(
    model: &LatencyModel,
    hedge: Option<HedgePolicy>,
    leaf: usize,
    seq: u64,
    compute: Nanos,
) -> (Nanos, bool) {
    let primary = compute + model.delay(leaf, seq, 0);
    match hedge {
        Some(policy) if primary > policy.deadline => {
            let duplicate = policy.deadline + compute + model.delay(leaf, seq, 1);
            (primary.min(duplicate), true)
        }
        _ => (primary, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_bounded() {
        let model = LatencyModel::new(42, 1_000, 5_000);
        for leaf in 0..4 {
            for seq in 0..16u64 {
                for attempt in 0..2 {
                    let a = model.delay(leaf, seq, attempt);
                    let b = model.delay(leaf, seq, attempt);
                    assert_eq!(a, b);
                    assert!(a >= Nanos::from_nanos(1_000));
                    assert!(a < Nanos::from_nanos(6_000));
                }
            }
        }
        // Distinct triples actually vary.
        let distinct: std::collections::BTreeSet<u64> = (0..16u64)
            .map(|seq| model.delay(0, seq, 0).as_nanos())
            .collect();
        assert!(distinct.len() > 8, "jitter draws look constant");
    }

    #[test]
    fn uniform_model_is_zero() {
        let model = LatencyModel::uniform();
        assert_eq!(model.delay(3, 99, 1), Nanos::ZERO);
    }

    #[test]
    fn hedge_fires_only_past_deadline_and_takes_the_min() {
        let compute = Nanos::from_micros(10);
        // Huge jitter forces the primary past a tight deadline.
        let model = LatencyModel::new(7, 100_000, 1);
        let policy = HedgePolicy::new(Nanos::from_micros(50));
        let (hedged, launched) = leaf_completion(&model, Some(policy), 0, 0, compute);
        assert!(launched);
        // The leaf completes at the earlier of the primary and the
        // duplicate dispatched at the deadline.
        let primary = compute + model.delay(0, 0, 0);
        let duplicate = policy.deadline + compute + model.delay(0, 0, 1);
        assert_eq!(hedged, primary.min(duplicate));

        // A generous deadline never hedges.
        let policy = HedgePolicy::new(Nanos::from_millis(10));
        let (relaxed, launched) = leaf_completion(&model, Some(policy), 0, 0, compute);
        assert!(!launched);
        assert_eq!(relaxed, compute + model.delay(0, 0, 0));

        // No policy, no hedge.
        let (bare, launched) = leaf_completion(&model, None, 0, 0, compute);
        assert!(!launched);
        assert_eq!(bare, relaxed);
    }
}
