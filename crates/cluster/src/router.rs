//! Deterministic document sharding.
//!
//! The router answers two questions: *which shard holds stable id `x`*,
//! and *which global ids a new batch of inserts receives*. Both must be
//! pure functions of durable state so that recovery — and any
//! re-execution of the same mutation trace — routes identically.
//!
//! Deploy-time ids are assigned by slicing the union corpus's **storage
//! order** (entry order for a flat database, cluster-major order for IVF)
//! into one contiguous, near-even slice per shard; the resulting
//! id-to-shard map is the manifest's `initial_owners` section. Ids minted
//! later for online inserts carry no placement history, so they route
//! arithmetically: id `x` lives on shard `x mod num_shards`.
//!
//! With a replication factor `R` each shard is served by `R` physical
//! leaves laid out **shard-major**: shard `s`'s replica group is leaves
//! `s·R .. (s+1)·R`, and leaf `l` serves shard `l / R`. `R = 1` collapses
//! to the original one-leaf-per-shard layout, where shard and leaf
//! indices coincide.

use reis_core::{ReisError, Result};
use std::ops::Range;

/// Deterministic shard map of one cluster deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
    /// Leaves serving each shard (shard-major replica groups).
    replication: usize,
    /// Owning shard of each deploy-time stable id (`initial_owners[id]`).
    initial_owners: Vec<u32>,
    /// Next unassigned global stable id.
    next_global: u32,
}

impl ShardRouter {
    /// An empty unreplicated router: `num_leaves` shards, one leaf each.
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] when `num_leaves` is zero.
    pub fn new(num_leaves: usize) -> Result<Self> {
        ShardRouter::new_replicated(num_leaves, 1)
    }

    /// An empty router over `num_shards` shards, each served by
    /// `replication` lockstep replica leaves (`num_shards × replication`
    /// physical leaves in total).
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] when either count is zero.
    pub fn new_replicated(num_shards: usize, replication: usize) -> Result<Self> {
        if num_shards == 0 {
            return Err(ReisError::MalformedDatabase(
                "a cluster needs at least one leaf".into(),
            ));
        }
        if replication == 0 {
            return Err(ReisError::MalformedDatabase(
                "a replicated cluster needs a replication factor of at least one".into(),
            ));
        }
        Ok(ShardRouter {
            num_shards,
            replication,
            initial_owners: Vec::new(),
            next_global: 0,
        })
    }

    /// Rebuild a router from recovered durable state: the manifest's owner
    /// map plus the id watermark re-derived from the leaves.
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] when the leaf count does not
    /// divide into `replication`-sized replica groups, the owner map names
    /// a shard outside `0..num_shards`, or the watermark precedes the
    /// initial corpus.
    pub fn from_owners(
        initial_owners: Vec<u32>,
        num_leaves: usize,
        next_global: u32,
    ) -> Result<Self> {
        ShardRouter::from_owners_replicated(initial_owners, num_leaves, 1, next_global)
    }

    /// [`ShardRouter::from_owners`] for a replicated deployment:
    /// `num_leaves` physical leaves grouped into `num_leaves /
    /// replication` shards.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ShardRouter::from_owners`].
    pub fn from_owners_replicated(
        initial_owners: Vec<u32>,
        num_leaves: usize,
        replication: usize,
        next_global: u32,
    ) -> Result<Self> {
        if num_leaves == 0 || replication == 0 {
            return Err(ReisError::MalformedDatabase(
                "a cluster needs at least one leaf".into(),
            ));
        }
        if !num_leaves.is_multiple_of(replication) {
            return Err(ReisError::MalformedDatabase(format!(
                "{num_leaves} leaves do not divide into replica groups of {replication}"
            )));
        }
        let num_shards = num_leaves / replication;
        if let Some(&bad) = initial_owners
            .iter()
            .find(|&&shard| shard as usize >= num_shards)
        {
            return Err(ReisError::MalformedDatabase(format!(
                "owner map names shard {bad} of a {num_shards}-shard cluster"
            )));
        }
        if (next_global as usize) < initial_owners.len() {
            return Err(ReisError::MalformedDatabase(format!(
                "next_global {next_global} precedes the {}-entry initial corpus",
                initial_owners.len()
            )));
        }
        Ok(ShardRouter {
            num_shards,
            replication,
            initial_owners,
            next_global,
        })
    }

    /// Contiguous, near-even slices of `entries` storage positions over
    /// `num_leaves` leaves: the first `entries % num_leaves` slices get one
    /// extra entry. Pure and order-preserving, so the concatenation of the
    /// slices is the identity over `0..entries`.
    pub fn slices(entries: usize, num_leaves: usize) -> Vec<Range<usize>> {
        let base = entries / num_leaves.max(1);
        let extra = entries % num_leaves.max(1);
        let mut start = 0;
        (0..num_leaves)
            .map(|leaf| {
                let len = base + usize::from(leaf < extra);
                let range = start..start + len;
                start += len;
                range
            })
            .collect()
    }

    /// Record the deploy-time owner map (called once, at deployment).
    pub(crate) fn set_initial_owners(&mut self, owners: Vec<u32>) {
        self.next_global = self.next_global.max(owners.len() as u32);
        self.initial_owners = owners;
    }

    /// The shard holding stable id `id`: the owner map for deploy-time
    /// ids, round-robin `id mod num_shards` for ids minted by later
    /// inserts.
    pub fn owner(&self, id: u32) -> usize {
        match self.initial_owners.get(id as usize) {
            Some(&shard) => shard as usize,
            None => id as usize % self.num_shards,
        }
    }

    /// The physical leaves of shard `shard`'s replica group, in failover
    /// order (replica 0 is the primary).
    pub fn replicas(&self, shard: usize) -> Range<usize> {
        shard * self.replication..(shard + 1) * self.replication
    }

    /// The shard physical leaf `leaf` serves.
    pub fn shard_of_leaf(&self, leaf: usize) -> usize {
        leaf / self.replication
    }

    /// Mint `count` fresh global stable ids (consecutive, ascending).
    pub fn assign(&mut self, count: usize) -> Vec<u32> {
        let first = self.next_global;
        self.next_global += count as u32;
        (first..self.next_global).collect()
    }

    /// Number of physical leaves (`num_shards × replication`).
    pub fn num_leaves(&self) -> usize {
        self.num_shards * self.replication
    }

    /// Number of shards the corpus is sliced into.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Replica leaves per shard.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The deploy-time owner map (`initial_owners[id]` is a shard index).
    pub fn initial_owners(&self) -> &[u32] {
        &self.initial_owners
    }

    /// The next unassigned global stable id.
    pub fn next_global(&self) -> u32 {
        self.next_global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_are_contiguous_even_and_exhaustive() {
        for entries in [0usize, 1, 7, 8, 9, 100] {
            for leaves in [1usize, 2, 3, 5, 8] {
                let slices = ShardRouter::slices(entries, leaves);
                assert_eq!(slices.len(), leaves);
                let mut next = 0;
                for range in &slices {
                    assert_eq!(range.start, next);
                    next = range.end;
                }
                assert_eq!(next, entries);
                let sizes: Vec<usize> = slices.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "uneven split {sizes:?}");
            }
        }
    }

    #[test]
    fn owner_uses_map_then_round_robin() {
        let mut router = ShardRouter::new(3).unwrap();
        router.set_initial_owners(vec![2, 2, 0, 1]);
        assert_eq!(router.owner(0), 2);
        assert_eq!(router.owner(3), 1);
        // Ids past the initial corpus route arithmetically.
        assert_eq!(router.owner(4), 1);
        assert_eq!(router.owner(5), 2);
        assert_eq!(router.owner(6), 0);
    }

    #[test]
    fn assign_mints_consecutive_ids_past_the_corpus() {
        let mut router = ShardRouter::new(2).unwrap();
        router.set_initial_owners(vec![0, 1, 0]);
        assert_eq!(router.assign(2), vec![3, 4]);
        assert_eq!(router.assign(1), vec![5]);
        assert_eq!(router.next_global(), 6);
    }

    #[test]
    fn replica_groups_are_shard_major() {
        let router = ShardRouter::new_replicated(3, 2).unwrap();
        assert_eq!(router.num_shards(), 3);
        assert_eq!(router.replication(), 2);
        assert_eq!(router.num_leaves(), 6);
        assert_eq!(router.replicas(0), 0..2);
        assert_eq!(router.replicas(2), 4..6);
        for leaf in 0..6 {
            assert_eq!(router.shard_of_leaf(leaf), leaf / 2);
            assert!(router.replicas(router.shard_of_leaf(leaf)).contains(&leaf));
        }
        // R = 1 collapses shard and leaf indices.
        let flat = ShardRouter::new(4).unwrap();
        assert_eq!(flat.replicas(3), 3..4);
        assert_eq!(flat.shard_of_leaf(3), 3);
    }

    #[test]
    fn invalid_recovered_state_is_rejected() {
        assert!(ShardRouter::new(0).is_err());
        assert!(ShardRouter::new_replicated(2, 0).is_err());
        assert!(ShardRouter::from_owners(vec![3], 3, 1).is_err());
        assert!(ShardRouter::from_owners(vec![0, 1], 2, 1).is_err());
        assert!(ShardRouter::from_owners(vec![0, 1], 2, 2).is_ok());
        // Leaves must divide into replica groups; owners are shard indices.
        assert!(ShardRouter::from_owners_replicated(vec![0], 3, 2, 1).is_err());
        assert!(ShardRouter::from_owners_replicated(vec![2], 4, 2, 1).is_err());
        let router = ShardRouter::from_owners_replicated(vec![1, 0], 4, 2, 2).unwrap();
        assert_eq!(router.num_shards(), 2);
        assert_eq!(router.owner(0), 1);
        assert_eq!(router.owner(7), 1, "minted ids route modulo num_shards");
    }
}
