//! Per-leaf health tracking, the retry policy and the coverage contract.
//!
//! Every physical leaf carries a tiny state machine driven by the
//! aggregator's observations of its calls:
//!
//! ```text
//! Healthy ──failure──▶ Suspect ──retries exhausted──▶ Down
//!    ▲                    │                            │
//!    └─────success────────┘        rejoin (replay +    │
//!    ▲                              catch-up)          ▼
//!    └──────────success──────────────────────────── Recovered
//! ```
//!
//! A transient fault marks the leaf *Suspect* and is retried under
//! [`RetryPolicy`] — bounded attempts, deterministic exponential backoff,
//! a fixed timeout deadline per hung attempt. Exhausting the retries
//! marks the leaf *Down*: it is skipped (queries fail over to the next
//! replica in its shard group; mutations are logged for catch-up) until
//! [`rejoin_leaf`](crate::ClusterSystem::rejoin_leaf) replays what it
//! missed, after which the
//! first successful call completes the round trip back to *Healthy*.
//!
//! [`ShardCoverage`] is the degradation contract: a query outcome always
//! says exactly which shards answered. Full coverage means the answer is
//! bit-identical to the no-fault run; partial coverage means it is
//! bit-identical to a single-device deployment of the covered shards.

use reis_nand::Nanos;

/// One leaf's position in the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// At least one recent call failed; still being tried.
    Suspect,
    /// Out of retries (or killed by the fault plan): skipped by queries
    /// and mutations until it rejoins.
    Down,
    /// Rejoined after being down (durable replay + aggregator catch-up);
    /// promoted back to [`HealthState::Healthy`] by the next success.
    Recovered,
}

/// Health bookkeeping of one physical leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafHealth {
    state: HealthState,
    consecutive_failures: u32,
    /// Aggregator-log position at which the leaf went down: the first
    /// logged mutation it missed and must replay on rejoin.
    down_at_log: usize,
}

impl LeafHealth {
    /// A healthy leaf.
    pub fn new() -> Self {
        LeafHealth {
            state: HealthState::Healthy,
            consecutive_failures: 0,
            down_at_log: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether the leaf is down (skipped by queries and mutations).
    pub fn is_down(&self) -> bool {
        self.state == HealthState::Down
    }

    /// Consecutive failed call attempts since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Aggregator-log position recorded when the leaf went down.
    pub fn down_at_log(&self) -> usize {
        self.down_at_log
    }

    pub(crate) fn on_success(&mut self) {
        self.state = HealthState::Healthy;
        self.consecutive_failures = 0;
    }

    pub(crate) fn on_failure(&mut self) {
        if self.state != HealthState::Down {
            self.state = HealthState::Suspect;
        }
        self.consecutive_failures += 1;
    }

    pub(crate) fn mark_down(&mut self, log_position: usize) {
        if self.state != HealthState::Down {
            self.state = HealthState::Down;
            self.down_at_log = log_position;
        }
    }

    pub(crate) fn rejoin(&mut self) {
        if self.state == HealthState::Down {
            self.state = HealthState::Recovered;
            self.consecutive_failures = 0;
        }
    }
}

impl Default for LeafHealth {
    fn default() -> Self {
        LeafHealth::new()
    }
}

/// Bounded-retry policy for faulted leaf calls. Everything is modelled
/// time and pure arithmetic — the same fault schedule always produces the
/// same retry trace and the same modelled latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`max_retries + 1` attempts total
    /// per replica per call).
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base << n` (deterministic
    /// exponential, saturating).
    pub backoff_base: Nanos,
    /// Modelled time charged for an attempt the fault plan times out (the
    /// aggregator stops waiting at this deadline).
    pub deadline: Nanos,
}

impl RetryPolicy {
    /// A policy with explicit bounds.
    pub const fn new(max_retries: u32, backoff_base: Nanos, deadline: Nanos) -> Self {
        RetryPolicy {
            max_retries,
            backoff_base,
            deadline,
        }
    }

    /// The backoff charged before retry `attempt` (0-based):
    /// `backoff_base × 2^attempt`, saturating.
    pub fn backoff(&self, attempt: u32) -> Nanos {
        let shift = attempt.min(20);
        Nanos::from_nanos(self.backoff_base.as_nanos().saturating_mul(1u64 << shift))
    }
}

impl Default for RetryPolicy {
    /// Two retries, 100 µs base backoff, a 5 ms timeout deadline.
    fn default() -> Self {
        RetryPolicy::new(2, Nanos::from_micros(100), Nanos::from_millis(5))
    }
}

/// Which shards contributed to a query answer — the degradation contract
/// carried by every `ClusterSearchOutcome`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCoverage {
    covered: Vec<bool>,
}

impl ShardCoverage {
    pub(crate) fn new(covered: Vec<bool>) -> Self {
        ShardCoverage { covered }
    }

    /// Whether every shard answered (the bit-identical-to-no-fault case).
    pub fn is_full(&self) -> bool {
        self.covered.iter().all(|&c| c)
    }

    /// Whether shard `shard` answered.
    pub fn covered(&self, shard: usize) -> bool {
        self.covered[shard]
    }

    /// Number of shards that answered.
    pub fn covered_count(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// Number of shards fanned out to.
    pub fn num_shards(&self) -> usize {
        self.covered.len()
    }

    /// Indices of the shards that did **not** answer, ascending.
    pub fn uncovered(&self) -> Vec<usize> {
        self.covered
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(shard, _)| shard)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_walks_the_documented_state_machine() {
        let mut health = LeafHealth::new();
        assert_eq!(health.state(), HealthState::Healthy);
        health.on_failure();
        assert_eq!(health.state(), HealthState::Suspect);
        assert_eq!(health.consecutive_failures(), 1);
        health.on_success();
        assert_eq!(health.state(), HealthState::Healthy);
        assert_eq!(health.consecutive_failures(), 0);

        health.on_failure();
        health.mark_down(7);
        assert!(health.is_down());
        assert_eq!(health.down_at_log(), 7);
        // A second mark keeps the original log position.
        health.mark_down(99);
        assert_eq!(health.down_at_log(), 7);

        health.rejoin();
        assert_eq!(health.state(), HealthState::Recovered);
        assert!(!health.is_down());
        health.on_success();
        assert_eq!(health.state(), HealthState::Healthy);
    }

    #[test]
    fn backoff_is_exponential_and_saturating() {
        let policy = RetryPolicy::new(3, Nanos::from_nanos(100), Nanos::from_millis(1));
        assert_eq!(policy.backoff(0), Nanos::from_nanos(100));
        assert_eq!(policy.backoff(1), Nanos::from_nanos(200));
        assert_eq!(policy.backoff(4), Nanos::from_nanos(1_600));
        // Deep attempts clamp instead of overflowing.
        assert_eq!(policy.backoff(63), policy.backoff(64));
    }

    #[test]
    fn coverage_reports_exactly_the_missing_shards() {
        let full = ShardCoverage::new(vec![true, true, true]);
        assert!(full.is_full());
        assert_eq!(full.covered_count(), 3);
        assert!(full.uncovered().is_empty());

        let partial = ShardCoverage::new(vec![true, false, true, false]);
        assert!(!partial.is_full());
        assert_eq!(partial.num_shards(), 4);
        assert_eq!(partial.covered_count(), 2);
        assert_eq!(partial.uncovered(), vec![1, 3]);
        assert!(partial.covered(0));
        assert!(!partial.covered(3));
    }
}
