//! [`ClusterSystem`]: the aggregator over N leaf devices.
//!
//! The aggregator owns the leaves, the shard router, the skew model and
//! the cluster manifest. Its public surface mirrors the single-device
//! [`ReisSystem`] (deploy, search, batched search, insert/delete/upsert,
//! compaction, save/recover) but every operation is scattered to the
//! leaves and gathered exactly:
//!
//! * **Deploy** slices the union corpus's storage order contiguously
//!   across shards, re-using the union's quantizers (and, for IVF, the
//!   full global centroid set) so every leaf scores exactly as the
//!   single device would, and floors every leaf's document slot at the
//!   union's slot size so document accounting matches. With a
//!   replication factor `R` each shard's slice is deployed identically
//!   to all `R` leaves of its replica group.
//! * **Search** fans out [`ReisSystem::leaf_query`] to one live replica
//!   per shard, merges under the lifted `(distance, shard, storage
//!   index)` orders ([`crate::merge`]) and fetches only the winners'
//!   chunks from their serving replicas.
//! * **Mutations** route to every live replica of the owning shard with
//!   globally assigned stable ids, so the cluster's id namespace is the
//!   single device's and replicas stay in bit-identical lockstep.
//! * **Durability** is per-leaf (each leaf keeps its own snapshot/WAL
//!   store) plus one tiny cluster manifest
//!   ([`reis_persist::ClusterManifest`]) tying the leaves together;
//!   recovery restores each leaf independently and re-derives the id
//!   watermark as the max over leaf watermarks.
//! * **Faults** are survived, not hidden: an optional seeded
//!   [`FaultPlan`] rules each fan-out leaf call, transient faults are
//!   retried under a deterministic [`RetryPolicy`], exhausted replicas
//!   go down and queries fail over along each shard's replica group,
//!   and a shard with no live replica degrades the answer *explicitly*
//!   via [`ClusterSearchOutcome::shard_coverage`] rather than erroring.
//!   Down leaves rejoin by replaying their durable epoch
//!   ([`ClusterSystem::reload_leaf`]) and catching up missed mutations
//!   from the aggregator's in-memory log.

use std::time::Instant;

use reis_ann::topk::Neighbor;
use reis_nand::Nanos;
use reis_persist::{ClusterManifest, PersistError, Vfs};
use reis_telemetry::{CounterId, HistogramId, QueryTrace, Span, Telemetry};

use reis_core::system::ReisSystem;
use reis_core::{
    ClusterInfo, CompactionOutcome, DurableStore, LeafCandidate, MutationOutcome, QueryActivity,
    RecoveryReport, ReisConfig, ReisError, Result, ScrubReport, VectorDatabase, DOC_SUBPAGE_BYTES,
};

use crate::fault::{FaultDecision, FaultPlan};
use crate::health::{HealthState, LeafHealth, RetryPolicy, ShardCoverage};
use crate::latency::{leaf_completion, HedgePolicy, LatencyModel};
use crate::merge::merge_top_k;
use crate::router::ShardRouter;

/// File name of the cluster manifest inside its VFS.
pub const MANIFEST_FILE: &str = "CLUSTER.manifest";

/// Skew-draw attempt index of the document-fetch phase (0 and 1 are the
/// fan-out primary and its hedge).
const DOC_ATTEMPT: u32 = 2;

/// Skew-draw attempt index of the first fault retry; retry `n` draws
/// attempt `RETRY_ATTEMPT_BASE + n`, keeping retry service times
/// independent of the primary/hedge/doc draws.
const RETRY_ATTEMPT_BASE: u32 = 3;

/// Cluster-wide activity accounting of one fanned-out query. Deliberately
/// free of any schedule-dependent field: the same query against the same
/// corpus reports the same `ClusterActivity` whatever the skew seed,
/// hedging deadline, or hedge race outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterActivity {
    /// Summed per-shard activity (see [`QueryActivity::absorb`]); its
    /// `fine_entries` is the cluster's transferred-entry count, equal to a
    /// single device's under the static-threshold leaf protocol.
    pub activity: QueryActivity,
    /// Number of shards fanned out to (one serving replica each).
    pub leaves: usize,
    /// Union candidate count before the global cut.
    pub merged_candidates: usize,
    /// Candidates surviving the global `rerank_factor × k` cut.
    pub cut_candidates: usize,
}

/// Outcome of one cluster query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSearchOutcome {
    /// The global top-k as `(stable id, INT8 rerank distance)`.
    pub results: Vec<Neighbor>,
    /// The winners' document chunks, aligned with `results`.
    pub documents: Vec<Vec<u8>>,
    /// Schedule-independent work accounting.
    pub activity: ClusterActivity,
    /// Modelled end-to-end latency: fan-out plus document phase.
    pub latency: Nanos,
    /// Modelled fan-out latency (max over hedged leaf completions,
    /// including retry backoffs and failover penalties under faults).
    pub fanout_latency: Nanos,
    /// Modelled document-phase latency (max over serving leaves).
    pub document_latency: Nanos,
    /// Hedged duplicates launched by the straggler policy (schedule
    /// dependent, deliberately outside [`ClusterActivity`]).
    pub hedges_launched: usize,
    /// Which shards answered. Full coverage means the answer is
    /// bit-identical to the no-fault run; partial coverage means it is
    /// bit-identical to a deployment of exactly the covered shards.
    pub shard_coverage: ShardCoverage,
}

impl ClusterSearchOutcome {
    /// Queries per second the modelled latency corresponds to.
    pub fn qps(&self) -> f64 {
        let secs = self.latency.as_secs_f64();
        if secs > 0.0 {
            1.0 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Whether the answer covers every shard (not degraded).
    pub fn is_full_coverage(&self) -> bool {
        self.shard_coverage.is_full()
    }
}

/// What cluster recovery found: the manifest epoch plus each leaf's own
/// recovery report, in leaf order.
#[derive(Debug)]
pub struct ClusterRecovery {
    /// Epoch recorded in the recovered manifest.
    pub epoch: u64,
    /// Per-leaf recovery reports.
    pub leaves: Vec<RecoveryReport>,
}

impl ClusterRecovery {
    /// Per-leaf quarantined-WAL-tail counts, in leaf order — the uniform
    /// cluster view of [`RecoveryReport::quarantine_count`].
    pub fn quarantine_counts(&self) -> Vec<usize> {
        self.leaves
            .iter()
            .map(RecoveryReport::quarantine_count)
            .collect()
    }
}

/// A mutation retained by the aggregator for leaves that missed it. The
/// log only grows while at least one leaf is down and is dropped once
/// every leaf has caught up, so the healthy path never pays for it.
#[derive(Debug, Clone)]
enum AggWalRecord {
    /// A routed insert batch with its minted global ids.
    InsertBatch {
        ids: Vec<u32>,
        vectors: Vec<Vec<f32>>,
        documents: Vec<Vec<u8>>,
    },
    /// A delete of one stable id.
    Delete { id: u32 },
    /// An in-place upsert of one stable id.
    Upsert {
        id: u32,
        vector: Vec<f32>,
        document: Vec<u8>,
    },
    /// A cluster-wide compaction.
    Compact,
}

/// The aggregator: N leaf systems behind one logical corpus.
#[derive(Debug)]
pub struct ClusterSystem {
    config: ReisConfig,
    leaves: Vec<ReisSystem>,
    /// Per-leaf deployed database id (empty until `deploy_*`).
    leaf_dbs: Vec<u32>,
    router: ShardRouter,
    latency: LatencyModel,
    hedge: Option<HedgePolicy>,
    manifest_vfs: Option<Box<dyn Vfs>>,
    epoch: u64,
    /// Query sequence number (the skew model's per-query key).
    seq: u64,
    /// Aggregator-side telemetry (fan-out counters, completion
    /// histograms, per-leaf trace spans). Each leaf additionally keeps
    /// its own [`ReisSystem`] telemetry handle; see
    /// [`ClusterSystem::enable_telemetry`].
    telemetry: Telemetry,
    /// Seeded fault schedule ruling each fan-out leaf call (`None` never
    /// faults).
    fault: Option<FaultPlan>,
    retry: RetryPolicy,
    /// Per-leaf health, indexed by physical leaf.
    health: Vec<LeafHealth>,
    /// Mutations retained for down leaves to replay on rejoin.
    agg_wal: Vec<AggWalRecord>,
    /// Run [`ClusterSystem::scrub`] after every save and fail the save on
    /// corruption.
    scrub_on_save: bool,
}

impl ClusterSystem {
    /// An in-memory cluster of `num_leaves` fresh leaves (one shard each).
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] when `num_leaves` is zero.
    pub fn new(config: ReisConfig, num_leaves: usize) -> Result<Self> {
        ClusterSystem::new_replicated(config, num_leaves, 1)
    }

    /// An in-memory cluster of `num_shards` shards, each served by
    /// `replication` lockstep replica leaves (`num_shards × replication`
    /// fresh leaves in total).
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] when either count is zero.
    pub fn new_replicated(
        config: ReisConfig,
        num_shards: usize,
        replication: usize,
    ) -> Result<Self> {
        let router = ShardRouter::new_replicated(num_shards, replication)?;
        let num_leaves = router.num_leaves();
        Ok(ClusterSystem {
            config,
            leaves: (0..num_leaves).map(|_| ReisSystem::new(config)).collect(),
            leaf_dbs: Vec::new(),
            router,
            latency: LatencyModel::uniform(),
            hedge: None,
            manifest_vfs: None,
            epoch: 0,
            seq: 0,
            telemetry: Telemetry::from_env(),
            fault: None,
            retry: RetryPolicy::default(),
            health: vec![LeafHealth::new(); num_leaves],
            agg_wal: Vec::new(),
            scrub_on_save: false,
        })
    }

    /// Open a durable cluster: one snapshot/WAL store per leaf plus a VFS
    /// holding the cluster manifest. A present manifest triggers full
    /// recovery (each leaf from its own store, the router from the
    /// manifest, including its recorded replication factor); an absent one
    /// opens every leaf fresh and unreplicated.
    ///
    /// # Errors
    ///
    /// Propagates leaf recovery errors, and rejects a manifest whose leaf
    /// count disagrees with `stores.len()`.
    pub fn open(
        config: ReisConfig,
        stores: Vec<DurableStore>,
        manifest_vfs: Box<dyn Vfs>,
    ) -> Result<(Self, Option<ClusterRecovery>)> {
        ClusterSystem::open_with_replication(config, stores, manifest_vfs, None)
    }

    /// [`ClusterSystem::open`] with an explicit replication factor: the
    /// `stores.len()` leaves group into `stores.len() / replication`
    /// shards. A present manifest must record the same factor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSystem::open`], plus a factor that does
    /// not divide the store count or disagrees with the manifest.
    pub fn open_replicated(
        config: ReisConfig,
        stores: Vec<DurableStore>,
        manifest_vfs: Box<dyn Vfs>,
        replication: usize,
    ) -> Result<(Self, Option<ClusterRecovery>)> {
        ClusterSystem::open_with_replication(config, stores, manifest_vfs, Some(replication))
    }

    fn open_with_replication(
        config: ReisConfig,
        stores: Vec<DurableStore>,
        manifest_vfs: Box<dyn Vfs>,
        expected_replication: Option<usize>,
    ) -> Result<(Self, Option<ClusterRecovery>)> {
        if stores.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "a cluster needs at least one leaf store".into(),
            ));
        }
        let num_leaves = stores.len();
        if manifest_vfs.exists(MANIFEST_FILE) {
            let bytes = manifest_vfs.read_file(MANIFEST_FILE)?;
            let manifest = ClusterManifest::decode(&bytes, MANIFEST_FILE)?;
            if manifest.num_leaves() != num_leaves {
                return Err(PersistError::Malformed(format!(
                    "manifest describes {} leaves but {num_leaves} stores were given",
                    manifest.num_leaves()
                ))
                .into());
            }
            let replication = manifest.replication as usize;
            if let Some(expected) = expected_replication {
                if expected != replication {
                    return Err(PersistError::Malformed(format!(
                        "manifest records replication {replication} but {expected} was requested"
                    ))
                    .into());
                }
            }
            let mut leaves = Vec::with_capacity(num_leaves);
            let mut reports = Vec::with_capacity(num_leaves);
            for store in stores {
                let (leaf, report) = ReisSystem::recover(config, store)?;
                leaves.push(leaf);
                reports.push(report);
            }
            // The id watermark is re-derived from the leaves: WAL replay may
            // have carried inserts past the last manifest write.
            let mut next_global = manifest.next_global;
            for (leaf, &db_id) in leaves.iter().zip(&manifest.leaf_db_ids) {
                next_global = next_global.max(leaf.next_stable_id(db_id)?);
            }
            let router = ShardRouter::from_owners_replicated(
                manifest.initial_owners.clone(),
                num_leaves,
                replication,
                next_global,
            )?;
            let cluster = ClusterSystem {
                config,
                leaves,
                leaf_dbs: manifest.leaf_db_ids.clone(),
                router,
                latency: LatencyModel::uniform(),
                hedge: None,
                manifest_vfs: Some(manifest_vfs),
                epoch: manifest.epoch,
                seq: 0,
                telemetry: Telemetry::from_env(),
                fault: None,
                retry: RetryPolicy::default(),
                health: vec![LeafHealth::new(); num_leaves],
                agg_wal: Vec::new(),
                scrub_on_save: false,
            };
            let recovery = ClusterRecovery {
                epoch: manifest.epoch,
                leaves: reports,
            };
            Ok((cluster, Some(recovery)))
        } else {
            let replication = expected_replication.unwrap_or(1);
            if replication == 0 || !num_leaves.is_multiple_of(replication) {
                return Err(ReisError::MalformedDatabase(format!(
                    "{num_leaves} leaf stores do not divide into replica groups of {replication}"
                )));
            }
            let mut leaves = Vec::with_capacity(num_leaves);
            for store in stores {
                let (leaf, _) = ReisSystem::open(config, store)?;
                leaves.push(leaf);
            }
            let router = ShardRouter::new_replicated(num_leaves / replication, replication)?;
            let cluster = ClusterSystem {
                config,
                leaves,
                leaf_dbs: Vec::new(),
                router,
                latency: LatencyModel::uniform(),
                hedge: None,
                manifest_vfs: Some(manifest_vfs),
                epoch: 0,
                seq: 0,
                telemetry: Telemetry::from_env(),
                fault: None,
                retry: RetryPolicy::default(),
                health: vec![LeafHealth::new(); num_leaves],
                agg_wal: Vec::new(),
                scrub_on_save: false,
            };
            Ok((cluster, None))
        }
    }

    /// Replace the skew model (chainable).
    pub fn with_latency_model(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Replace the hedging policy (chainable; `None` disables hedging).
    pub fn with_hedging(mut self, hedge: Option<HedgePolicy>) -> Self {
        self.hedge = hedge;
        self
    }

    /// Replace the fault plan (chainable; `None` never faults).
    pub fn with_fault_plan(mut self, fault: Option<FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// Replace the retry policy (chainable).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replace the skew model in place.
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// Replace the hedging policy in place.
    pub fn set_hedging(&mut self, hedge: Option<HedgePolicy>) {
        self.hedge = hedge;
    }

    /// Replace the fault plan in place (`None` never faults).
    pub fn set_fault_plan(&mut self, fault: Option<FaultPlan>) {
        self.fault = fault;
    }

    /// Replace the retry policy in place.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Scrub every live leaf's durable store after each save and fail the
    /// save when corruption is found (off by default).
    pub fn set_scrub_on_save(&mut self, scrub: bool) {
        self.scrub_on_save = scrub;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The aggregator's telemetry handle (fan-out counters, leaf
    /// completion and fan-out histograms, cluster query traces). Per-leaf
    /// counters live on each leaf's own handle: `cluster.leaf(i).telemetry()`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enable telemetry on the aggregator and on every leaf (fresh
    /// registries where not already enabled). Recording is strictly
    /// observational: results, activity accounting and modelled schedules
    /// are bit-identical with telemetry on or off.
    pub fn enable_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
        for leaf in &mut self.leaves {
            leaf.enable_telemetry();
        }
    }

    /// Deploy a flat corpus sharded across the leaves: union-fitted
    /// quantizers, contiguous entry-order slices, global stable ids equal
    /// to corpus positions — exactly the ids a single device would assign.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::deploy`], plus
    /// [`ReisError::MalformedDatabase`] when the corpus has fewer entries
    /// than the cluster has shards or a corpus is already deployed.
    pub fn deploy_flat(&mut self, vectors: &[Vec<f32>], documents: &[Vec<u8>]) -> Result<()> {
        let union = VectorDatabase::flat(vectors, documents.to_vec())?;
        self.deploy_sharded(&union, vectors, documents)
    }

    /// Deploy an IVF corpus sharded across the leaves: the union's
    /// centroids are replicated to **every** leaf (so coarse search picks
    /// identical probe sets everywhere) while the member lists split as
    /// contiguous slices of the union's cluster-major storage order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSystem::deploy_flat`].
    pub fn deploy_ivf(
        &mut self,
        vectors: &[Vec<f32>],
        documents: &[Vec<u8>],
        nlist: usize,
    ) -> Result<()> {
        let union = VectorDatabase::ivf(vectors, documents.to_vec(), nlist)?;
        self.deploy_sharded(&union, vectors, documents)
    }

    fn deploy_sharded(
        &mut self,
        union: &VectorDatabase,
        vectors: &[Vec<f32>],
        documents: &[Vec<u8>],
    ) -> Result<()> {
        if !self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster already serves a deployed corpus".into(),
            ));
        }
        let entries = vectors.len();
        let num_shards = self.router.num_shards();
        if entries < num_shards {
            return Err(ReisError::MalformedDatabase(format!(
                "cannot shard {entries} entries across {num_shards} shards"
            )));
        }

        // The union's storage order: entry order for flat, cluster-major
        // for IVF. Slicing *this* order contiguously is what makes the
        // lifted merge order coincide with the single-device scan order.
        let order: Vec<usize> = match union.clusters() {
            Some(info) => info.lists.iter().flatten().copied().collect(),
            None => (0..entries).collect(),
        };
        let cluster_of: Option<Vec<usize>> = union.clusters().map(|info| {
            let mut map = vec![0usize; entries];
            for (cluster, members) in info.lists.iter().enumerate() {
                for &member in members {
                    map[member] = cluster;
                }
            }
            map
        });

        // Every leaf must use the document slot size the *union* corpus
        // would: the slot is a step function of the corpus's largest
        // document, and per-leaf maxima can fall on the other side of the
        // step.
        let max_doc = documents.iter().map(Vec::len).max().unwrap_or(0);
        let page = self.config.ssd.geometry.page_size_bytes;
        let min_doc_slot = if max_doc + 4 <= DOC_SUBPAGE_BYTES {
            DOC_SUBPAGE_BYTES.min(page)
        } else {
            page
        };

        let mut owners = vec![0u32; entries];
        let mut leaf_dbs = Vec::with_capacity(self.leaves.len());
        for (shard_idx, range) in ShardRouter::slices(entries, num_shards)
            .into_iter()
            .enumerate()
        {
            let slice = &order[range];
            let ids: Vec<u32> = slice.iter().map(|&entry| entry as u32).collect();
            for &entry in slice {
                owners[entry] = shard_idx as u32;
            }
            let leaf_vectors: Vec<Vec<f32>> =
                slice.iter().map(|&entry| vectors[entry].clone()).collect();
            let leaf_documents: Vec<Vec<u8>> = slice
                .iter()
                .map(|&entry| documents[entry].clone())
                .collect();
            let shard = match (union.clusters(), &cluster_of) {
                (Some(info), Some(cluster_of)) => {
                    let mut lists = vec![Vec::new(); info.nlist()];
                    for (position, &entry) in slice.iter().enumerate() {
                        lists[cluster_of[entry]].push(position);
                    }
                    VectorDatabase::ivf_with_clusters(
                        &leaf_vectors,
                        leaf_documents,
                        union.binary_quantizer().clone(),
                        union.int8_quantizer().clone(),
                        ClusterInfo {
                            centroids: info.centroids.clone(),
                            lists,
                        },
                    )?
                }
                _ => VectorDatabase::flat_with_quantizers(
                    &leaf_vectors,
                    leaf_documents,
                    union.binary_quantizer().clone(),
                    union.int8_quantizer().clone(),
                )?,
            };
            // Every replica of the shard receives the identical deployment,
            // so the group is bit-identical by construction.
            for leaf_idx in self.router.replicas(shard_idx) {
                leaf_dbs.push(self.leaves[leaf_idx].deploy_with_ids(&shard, &ids, min_doc_slot)?);
            }
        }

        self.leaf_dbs = leaf_dbs;
        self.router.set_initial_owners(owners);
        if self.manifest_vfs.is_some() {
            self.write_manifest()?;
        }
        Ok(())
    }

    /// Brute-force top-k over the whole cluster.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::search`], plus
    /// [`ReisError::MalformedDatabase`] before a corpus is deployed.
    pub fn search(&mut self, query: &[f32], k: usize) -> Result<ClusterSearchOutcome> {
        self.run(query, k, None)
    }

    /// IVF top-k probing `nprobe` clusters (the same clusters on every
    /// leaf — they share the full centroid set).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::ivf_search_with_nprobe`], plus
    /// [`ReisError::MalformedDatabase`] before a corpus is deployed.
    pub fn ivf_search_with_nprobe(
        &mut self,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<ClusterSearchOutcome> {
        self.run(query, k, Some(nprobe))
    }

    /// Batched search: each query is fanned out and merged independently
    /// (per-query outcomes, in request order). Every query advances the
    /// skew model's sequence number exactly as the same queries issued
    /// one at a time would, so batching never changes results *or*
    /// modelled schedules.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSystem::search`].
    pub fn search_batch(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<Vec<ClusterSearchOutcome>> {
        queries.iter().map(|q| self.run(q, k, nprobe)).collect()
    }

    fn run(
        &mut self,
        query: &[f32],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<ClusterSearchOutcome> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        let seq = self.seq;
        self.seq += 1;
        let enabled = self.telemetry.is_enabled();
        let mut spans: Vec<Span> = Vec::new();

        // Scatter: one live replica per shard runs the in-storage pipeline
        // through the rerank and reports its full scored candidate set.
        // Within a shard, replicas are tried in failover order: known-down
        // replicas are skipped outright (no fault-plan draw), transient
        // faults are retried with deterministic exponential backoff, and a
        // replica that exhausts its retries is marked down before the next
        // replica takes over. A shard whose replicas are all down
        // contributes nothing and is reported uncovered.
        let num_shards = self.router.num_shards();
        let mut per_shard: Vec<Vec<LeafCandidate>> = Vec::with_capacity(num_shards);
        let mut serving: Vec<Option<usize>> = vec![None; num_shards];
        let mut activity = QueryActivity::default();
        let mut budget = 0;
        let mut fanout_latency = Nanos::ZERO;
        let mut hedges_launched = 0;
        for (shard, serving_slot) in serving.iter_mut().enumerate() {
            // Modelled time burned on this shard before a replica answers:
            // failed attempts, backoffs and timeout deadlines, sequentially.
            let mut penalty = Nanos::ZERO;
            let mut candidates: Vec<LeafCandidate> = Vec::new();
            for leaf_idx in self.router.replicas(shard) {
                if self.health[leaf_idx].is_down() {
                    if enabled {
                        self.telemetry.count(CounterId::LeafFailovers, 1);
                    }
                    continue;
                }
                let mut attempt: u32 = 0;
                let mut served = false;
                loop {
                    let decision = match self.fault.as_mut() {
                        Some(plan) => plan.decide(leaf_idx),
                        None => FaultDecision::Ok,
                    };
                    match decision {
                        FaultDecision::Ok => {
                            let leaf_started = enabled.then(Instant::now);
                            let outcome = self.leaves[leaf_idx].leaf_query(
                                self.leaf_dbs[leaf_idx],
                                query,
                                k,
                                nprobe,
                            )?;
                            debug_assert!(
                                budget == 0 || budget == outcome.candidate_budget,
                                "leaves disagree on the candidate budget"
                            );
                            budget = outcome.candidate_budget;
                            let (completion, hedged) = leaf_completion(
                                &self.latency,
                                self.hedge,
                                leaf_idx,
                                seq,
                                outcome.latency.total(),
                            );
                            let shard_completion = penalty + completion;
                            fanout_latency = fanout_latency.max(shard_completion);
                            hedges_launched += usize::from(hedged);
                            activity.absorb(&outcome.activity);
                            candidates = outcome.candidates;
                            self.health[leaf_idx].on_success();
                            if enabled {
                                self.telemetry.count(CounterId::LeafRequests, 1);
                                if hedged {
                                    self.telemetry.count(CounterId::HedgesLaunched, 1);
                                }
                                self.telemetry.observe(
                                    HistogramId::LeafCompletionNs,
                                    shard_completion.as_nanos(),
                                );
                                spans.push(Span {
                                    stage: if hedged { "leaf_hedged" } else { "leaf" },
                                    index: leaf_idx as u32,
                                    wall_ns: leaf_started
                                        .map(|t0| t0.elapsed().as_nanos() as u64)
                                        .unwrap_or(0),
                                    modelled_ns: shard_completion.as_nanos(),
                                });
                            }
                            served = true;
                            break;
                        }
                        FaultDecision::Unavailable => {
                            // A fast failure still costs one service draw.
                            penalty +=
                                self.latency
                                    .delay(leaf_idx, seq, RETRY_ATTEMPT_BASE + attempt);
                            self.health[leaf_idx].on_failure();
                        }
                        FaultDecision::Timeout => {
                            penalty += self.retry.deadline;
                            self.health[leaf_idx].on_failure();
                        }
                    }
                    if attempt >= self.retry.max_retries {
                        let position = self.agg_wal.len();
                        self.health[leaf_idx].mark_down(position);
                        if enabled {
                            self.telemetry.count(CounterId::LeafFailovers, 1);
                        }
                        break;
                    }
                    penalty += self.retry.backoff(attempt);
                    attempt += 1;
                    if enabled {
                        self.telemetry.count(CounterId::LeafRetries, 1);
                    }
                }
                if served {
                    *serving_slot = Some(leaf_idx);
                    break;
                }
            }
            if serving_slot.is_none() {
                // The shard is uncovered; the time spent discovering that
                // still gates the fan-out.
                fanout_latency = fanout_latency.max(penalty);
            }
            per_shard.push(candidates);
        }
        let covered: Vec<bool> = serving.iter().map(Option::is_some).collect();
        let degraded = covered.iter().any(|&c| !c);

        // Gather: replay the single-device cut and ranking over the union
        // of the covered shards (all shards, in the healthy case).
        let merge_started = enabled.then(Instant::now);
        let merged = merge_top_k(&per_shard, budget, k);
        let results: Vec<Neighbor> = merged
            .winners
            .iter()
            .map(|w| Neighbor::new(w.candidate.id as usize, w.candidate.raw as f32))
            .collect();

        // Fetch only the winners' chunks, each from its shard's serving
        // replica, and splice them back into global rank order.
        let merge_wall = merge_started
            .map(|t0| t0.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let doc_started = enabled.then(Instant::now);
        let mut documents: Vec<Vec<u8>> = vec![Vec::new(); results.len()];
        let mut document_latency = Nanos::ZERO;
        for (shard, slot) in serving.iter().enumerate() {
            let Some(leaf_idx) = *slot else {
                continue;
            };
            let wanted: Vec<usize> = merged
                .winners
                .iter()
                .enumerate()
                .filter(|(_, w)| w.leaf == shard)
                .map(|(rank, _)| rank)
                .collect();
            if wanted.is_empty() {
                continue;
            }
            let neighbors: Vec<Neighbor> = wanted.iter().map(|&rank| results[rank]).collect();
            let fetched =
                self.leaves[leaf_idx].leaf_fetch_documents(self.leaf_dbs[leaf_idx], &neighbors)?;
            document_latency = document_latency
                .max(fetched.latency + self.latency.delay(leaf_idx, seq, DOC_ATTEMPT));
            for (rank, chunk) in wanted.into_iter().zip(fetched.documents) {
                documents[rank] = chunk;
            }
        }
        activity.documents = results.len();

        if enabled {
            self.telemetry.count(CounterId::ClusterQueries, 1);
            if degraded {
                self.telemetry.count(CounterId::DegradedQueries, 1);
            }
            self.telemetry
                .observe(HistogramId::FanoutNs, fanout_latency.as_nanos());
            spans.push(Span {
                stage: "merge",
                index: 0,
                wall_ns: merge_wall,
                modelled_ns: 0,
            });
            spans.push(Span {
                stage: "doc_fetch",
                index: 0,
                wall_ns: doc_started
                    .map(|t0| t0.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
                modelled_ns: document_latency.as_nanos(),
            });
            let sequence = self.telemetry.next_sequence();
            self.telemetry.record_trace(QueryTrace {
                sequence,
                kind: "cluster_search",
                spans,
            });
        }

        Ok(ClusterSearchOutcome {
            results,
            documents,
            activity: ClusterActivity {
                activity,
                leaves: num_shards,
                merged_candidates: merged.merged_candidates,
                cut_candidates: merged.cut_candidates,
            },
            latency: fanout_latency + document_latency,
            fanout_latency,
            document_latency,
            hedges_launched,
            shard_coverage: ShardCoverage::new(covered),
        })
    }

    /// Insert one entry; returns its globally assigned stable id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::insert`].
    pub fn insert(&mut self, vector: &[f32], document: Vec<u8>) -> Result<u32> {
        let ids = self.insert_batch(std::slice::from_ref(&vector.to_vec()), vec![document])?;
        Ok(ids[0])
    }

    /// Insert a batch; global ids are minted consecutively and each entry
    /// is routed to (and natively stored under its global id by) every
    /// live replica of its owning shard, keeping the group in lockstep.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::insert_batch`], plus
    /// [`ReisError::Unavailable`] when a target shard has no live replica
    /// (refused before any id is minted or any leaf touched).
    pub fn insert_batch(
        &mut self,
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
    ) -> Result<Vec<u32>> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        if vectors.len() != documents.len() {
            return Err(ReisError::MalformedDatabase(format!(
                "{} vectors but {} documents in cluster insert",
                vectors.len(),
                documents.len()
            )));
        }
        // Pre-check availability against the ids about to be minted so a
        // refused insert leaves the id watermark untouched.
        let start = self.router.next_global();
        for offset in 0..vectors.len() {
            let shard = self.router.owner(start + offset as u32);
            if self.live_replica(shard).is_none() {
                return Err(ReisError::Unavailable {
                    leaf: self.router.replicas(shard).start,
                    source: None,
                });
            }
        }
        let ids = self.router.assign(vectors.len());
        let log_record = self.log_needed().then(|| AggWalRecord::InsertBatch {
            ids: ids.clone(),
            vectors: vectors.to_vec(),
            documents: documents.clone(),
        });
        type RoutedBatch = (Vec<u32>, Vec<Vec<f32>>, Vec<Vec<u8>>);
        let mut routed: Vec<RoutedBatch> = vec![Default::default(); self.router.num_shards()];
        for ((id, vector), document) in ids.iter().zip(vectors).zip(documents) {
            let shard = self.router.owner(*id);
            routed[shard].0.push(*id);
            routed[shard].1.push(vector.clone());
            routed[shard].2.push(document);
        }
        for (shard, (shard_ids, shard_vectors, mut shard_documents)) in
            routed.into_iter().enumerate()
        {
            if shard_ids.is_empty() {
                continue;
            }
            let live: Vec<usize> = self
                .router
                .replicas(shard)
                .filter(|&leaf| !self.health[leaf].is_down())
                .collect();
            for (position, &leaf_idx) in live.iter().enumerate() {
                let leaf_documents = if position + 1 == live.len() {
                    std::mem::take(&mut shard_documents)
                } else {
                    shard_documents.clone()
                };
                self.leaves[leaf_idx].insert_batch_at(
                    self.leaf_dbs[leaf_idx],
                    &shard_ids,
                    &shard_vectors,
                    leaf_documents,
                )?;
            }
        }
        if let Some(record) = log_record {
            self.agg_wal.push(record);
        }
        Ok(ids)
    }

    /// Delete stable id `id` from every live replica of its owning shard.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::delete`], plus
    /// [`ReisError::Unavailable`] when the shard has no live replica.
    pub fn delete(&mut self, id: u32) -> Result<MutationOutcome> {
        let shard = self.owning_shard(id)?;
        let mut outcome: Option<MutationOutcome> = None;
        for leaf_idx in self.router.replicas(shard) {
            if self.health[leaf_idx].is_down() {
                continue;
            }
            let leaf_outcome = self.leaves[leaf_idx].delete(self.leaf_dbs[leaf_idx], id)?;
            outcome.get_or_insert(leaf_outcome);
        }
        let outcome = outcome.ok_or_else(|| ReisError::Unavailable {
            leaf: self.router.replicas(shard).start,
            source: None,
        })?;
        self.log_mutation(AggWalRecord::Delete { id });
        Ok(outcome)
    }

    /// Upsert stable id `id` in place on every live replica of its owning
    /// shard.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::upsert`], plus
    /// [`ReisError::Unavailable`] when the shard has no live replica.
    pub fn upsert(&mut self, id: u32, vector: &[f32], document: &[u8]) -> Result<MutationOutcome> {
        let shard = self.owning_shard(id)?;
        let mut outcome: Option<MutationOutcome> = None;
        for leaf_idx in self.router.replicas(shard) {
            if self.health[leaf_idx].is_down() {
                continue;
            }
            let leaf_outcome =
                self.leaves[leaf_idx].upsert(self.leaf_dbs[leaf_idx], id, vector, document)?;
            outcome.get_or_insert(leaf_outcome);
        }
        let outcome = outcome.ok_or_else(|| ReisError::Unavailable {
            leaf: self.router.replicas(shard).start,
            source: None,
        })?;
        self.log_mutation(AggWalRecord::Upsert {
            id,
            vector: vector.to_vec(),
            document: document.to_vec(),
        });
        Ok(outcome)
    }

    /// Compact every live leaf, in leaf order (down leaves compact during
    /// rejoin catch-up instead).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::compact`].
    pub fn compact(&mut self) -> Result<Vec<CompactionOutcome>> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        let mut outcomes = Vec::new();
        for leaf in 0..self.leaves.len() {
            if self.health[leaf].is_down() {
                continue;
            }
            outcomes.push(self.leaves[leaf].compact(self.leaf_dbs[leaf])?);
        }
        self.log_mutation(AggWalRecord::Compact);
        Ok(outcomes)
    }

    /// Checkpoint the whole cluster: every live leaf saves a snapshot,
    /// then the manifest is rewritten under a bumped epoch (down leaves
    /// keep their last durable epoch and catch up on rejoin). With
    /// [`ClusterSystem::set_scrub_on_save`], every live leaf's store is
    /// scrubbed afterwards and corruption fails the save. Returns the new
    /// epoch.
    ///
    /// # Errors
    ///
    /// [`ReisError::Persist`] when the cluster was not opened durably, on
    /// storage failure, or when the post-save scrub finds corruption.
    pub fn save(&mut self) -> Result<u64> {
        if self.manifest_vfs.is_none() {
            return Err(ReisError::Persist(PersistError::Malformed(
                "save() requires a durably opened cluster (see ClusterSystem::open)".into(),
            )));
        }
        for (leaf_idx, leaf) in self.leaves.iter_mut().enumerate() {
            if self.health[leaf_idx].is_down() {
                continue;
            }
            leaf.save()?;
        }
        self.epoch += 1;
        self.write_manifest()?;
        if self.scrub_on_save {
            for (leaf_idx, report) in self.scrub()?.into_iter().enumerate() {
                if !report.is_clean() {
                    return Err(ReisError::Persist(PersistError::Malformed(format!(
                        "post-save scrub of leaf {leaf_idx} found {} corrupt artifacts",
                        report.corrupt_artifacts()
                    ))));
                }
            }
        }
        Ok(self.epoch)
    }

    /// Scrub every live leaf's durable store — verify all snapshot and WAL
    /// epoch checksums without loading anything — and return the per-leaf
    /// reports, in leaf order (down leaves report empty).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::scrub`].
    pub fn scrub(&self) -> Result<Vec<ScrubReport>> {
        self.leaves
            .iter()
            .enumerate()
            .map(|(leaf_idx, leaf)| {
                if self.health[leaf_idx].is_down() {
                    Ok(ScrubReport::default())
                } else {
                    leaf.scrub()
                }
            })
            .collect()
    }

    /// Rejoin down leaf `leaf` using its retained in-memory state: replay
    /// every aggregator-logged mutation it missed, lift any fault-plan
    /// kill, and mark it [`HealthState::Recovered`] (promoted back to
    /// healthy by its next successful call).
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] when `leaf` is out of range or not
    /// down; propagates replay errors.
    pub fn rejoin_leaf(&mut self, leaf: usize) -> Result<()> {
        if leaf >= self.leaves.len() {
            return Err(ReisError::MalformedDatabase(format!(
                "leaf {leaf} is out of range for a {}-leaf cluster",
                self.leaves.len()
            )));
        }
        if !self.health[leaf].is_down() {
            return Err(ReisError::MalformedDatabase(format!(
                "leaf {leaf} is not down"
            )));
        }
        let from = self.health[leaf].down_at_log();
        self.catch_up(leaf, from)?;
        if let Some(plan) = &mut self.fault {
            plan.revive(leaf);
        }
        self.health[leaf].rejoin();
        self.maybe_truncate_agg_wal();
        Ok(())
    }

    /// Rejoin down leaf `leaf` from its durable store: run single-device
    /// recovery (newest snapshot plus WAL replay, PR 6), then catch up the
    /// mutations the aggregator logged while the leaf was down, exactly as
    /// [`ClusterSystem::rejoin_leaf`]. Returns the leaf's recovery report.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSystem::rejoin_leaf`]; propagates
    /// recovery errors.
    pub fn reload_leaf(&mut self, leaf: usize, store: DurableStore) -> Result<RecoveryReport> {
        if leaf >= self.leaves.len() {
            return Err(ReisError::MalformedDatabase(format!(
                "leaf {leaf} is out of range for a {}-leaf cluster",
                self.leaves.len()
            )));
        }
        if !self.health[leaf].is_down() {
            return Err(ReisError::MalformedDatabase(format!(
                "leaf {leaf} is not down"
            )));
        }
        let (system, report) = ReisSystem::recover(self.config, store)?;
        self.leaves[leaf] = system;
        if self.telemetry.is_enabled() {
            self.leaves[leaf].enable_telemetry();
        }
        let from = self.health[leaf].down_at_log();
        self.catch_up(leaf, from)?;
        if let Some(plan) = &mut self.fault {
            plan.revive(leaf);
        }
        self.health[leaf].rejoin();
        self.maybe_truncate_agg_wal();
        Ok(report)
    }

    /// Replay the aggregator log from `from`, filtered to `leaf`'s shard.
    fn catch_up(&mut self, leaf: usize, from: usize) -> Result<()> {
        let shard = self.router.shard_of_leaf(leaf);
        let from = from.min(self.agg_wal.len());
        let records: Vec<AggWalRecord> = self.agg_wal[from..].to_vec();
        for record in records {
            match record {
                AggWalRecord::InsertBatch {
                    ids,
                    vectors,
                    documents,
                } => {
                    let mut shard_ids = Vec::new();
                    let mut shard_vectors = Vec::new();
                    let mut shard_documents = Vec::new();
                    for ((id, vector), document) in ids.iter().zip(vectors).zip(documents) {
                        if self.router.owner(*id) == shard {
                            shard_ids.push(*id);
                            shard_vectors.push(vector);
                            shard_documents.push(document);
                        }
                    }
                    if !shard_ids.is_empty() {
                        self.leaves[leaf].insert_batch_at(
                            self.leaf_dbs[leaf],
                            &shard_ids,
                            &shard_vectors,
                            shard_documents,
                        )?;
                    }
                }
                AggWalRecord::Delete { id } => {
                    if self.router.owner(id) == shard {
                        self.leaves[leaf].delete(self.leaf_dbs[leaf], id)?;
                    }
                }
                AggWalRecord::Upsert {
                    id,
                    vector,
                    document,
                } => {
                    if self.router.owner(id) == shard {
                        self.leaves[leaf].upsert(self.leaf_dbs[leaf], id, &vector, &document)?;
                    }
                }
                AggWalRecord::Compact => {
                    self.leaves[leaf].compact(self.leaf_dbs[leaf])?;
                }
            }
        }
        Ok(())
    }

    /// Whether mutations must currently be retained for a down leaf.
    fn log_needed(&self) -> bool {
        self.health.iter().any(LeafHealth::is_down)
    }

    fn log_mutation(&mut self, record: AggWalRecord) {
        if self.log_needed() {
            self.agg_wal.push(record);
        }
    }

    fn maybe_truncate_agg_wal(&mut self) {
        if !self.log_needed() {
            self.agg_wal.clear();
        }
    }

    fn write_manifest(&self) -> Result<()> {
        let vfs = self
            .manifest_vfs
            .as_ref()
            .expect("write_manifest is only called on durable clusters");
        let manifest = ClusterManifest {
            epoch: self.epoch,
            leaf_db_ids: self.leaf_dbs.clone(),
            next_global: self.router.next_global(),
            initial_owners: self.router.initial_owners().to_vec(),
            replication: self.router.replication() as u32,
        };
        vfs.write_file(MANIFEST_FILE, &manifest.encode())?;
        Ok(())
    }

    fn owning_shard(&self, id: u32) -> Result<usize> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        Ok(self.router.owner(id))
    }

    /// The first live replica of `shard`, in failover order.
    fn live_replica(&self, shard: usize) -> Option<usize> {
        self.router
            .replicas(shard)
            .find(|&leaf| !self.health[leaf].is_down())
    }

    /// Number of physical leaves (`num_shards × replication`).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Number of shards the corpus is sliced into.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// Replica leaves per shard.
    pub fn replication(&self) -> usize {
        self.router.replication()
    }

    /// The shard router (owner map and id watermark).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The manifest epoch of the last save (0 before any).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Borrow leaf `leaf` (tests inspect per-leaf state through this).
    pub fn leaf(&self, leaf: usize) -> &ReisSystem {
        &self.leaves[leaf]
    }

    /// The database id leaf `leaf` serves the shard under.
    pub fn leaf_db_id(&self, leaf: usize) -> Option<u32> {
        self.leaf_dbs.get(leaf).copied()
    }

    /// Health state of physical leaf `leaf`.
    pub fn leaf_health(&self, leaf: usize) -> HealthState {
        self.health[leaf].state()
    }

    /// Indices of the leaves currently down, ascending.
    pub fn down_leaves(&self) -> Vec<usize> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, health)| health.is_down())
            .map(|(leaf, _)| leaf)
            .collect()
    }

    /// Mutations currently retained for down leaves to replay on rejoin.
    pub fn aggregator_log_len(&self) -> usize {
        self.agg_wal.len()
    }

    /// CRC fingerprints of shard `shard`'s replicas' logical state, in
    /// replica (failover) order. Live replicas of a shard are kept in
    /// lockstep by construction, so their fingerprints agree; a stale
    /// down replica's may differ until it rejoins.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::state_crc`].
    pub fn shard_state_crcs(&mut self, shard: usize) -> Result<Vec<u32>> {
        self.router
            .replicas(shard)
            .map(|leaf| self.leaves[leaf].state_crc())
            .collect()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ReisConfig {
        &self.config
    }
}
