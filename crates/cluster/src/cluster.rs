//! [`ClusterSystem`]: the aggregator over N leaf devices.
//!
//! The aggregator owns the leaves, the shard router, the skew model and
//! the cluster manifest. Its public surface mirrors the single-device
//! [`ReisSystem`] (deploy, search, batched search, insert/delete/upsert,
//! compaction, save/recover) but every operation is scattered to the
//! leaves and gathered exactly:
//!
//! * **Deploy** slices the union corpus's storage order contiguously
//!   across leaves, re-using the union's quantizers (and, for IVF, the
//!   full global centroid set) so every leaf scores exactly as the
//!   single device would, and floors every leaf's document slot at the
//!   union's slot size so document accounting matches.
//! * **Search** fans out [`ReisSystem::leaf_query`], merges under the
//!   lifted `(distance, leaf, storage index)` orders
//!   ([`crate::merge`]) and fetches only the winners' chunks from their
//!   owning leaves.
//! * **Mutations** route to the owning leaf with globally assigned
//!   stable ids, so the cluster's id namespace is the single device's.
//! * **Durability** is per-leaf (each leaf keeps its own snapshot/WAL
//!   store) plus one tiny cluster manifest
//!   ([`reis_persist::ClusterManifest`]) tying the leaves together;
//!   recovery restores each leaf independently and re-derives the id
//!   watermark as the max over leaf watermarks.

use std::time::Instant;

use reis_ann::topk::Neighbor;
use reis_nand::Nanos;
use reis_persist::{ClusterManifest, PersistError, Vfs};
use reis_telemetry::{CounterId, HistogramId, QueryTrace, Span, Telemetry};

use reis_core::system::ReisSystem;
use reis_core::{
    ClusterInfo, CompactionOutcome, DurableStore, LeafCandidate, MutationOutcome, QueryActivity,
    RecoveryReport, ReisConfig, ReisError, Result, VectorDatabase, DOC_SUBPAGE_BYTES,
};

use crate::latency::{leaf_completion, HedgePolicy, LatencyModel};
use crate::merge::merge_top_k;
use crate::router::ShardRouter;

/// File name of the cluster manifest inside its VFS.
pub const MANIFEST_FILE: &str = "CLUSTER.manifest";

/// Skew-draw attempt index of the document-fetch phase (0 and 1 are the
/// fan-out primary and its hedge).
const DOC_ATTEMPT: u32 = 2;

/// Cluster-wide activity accounting of one fanned-out query. Deliberately
/// free of any schedule-dependent field: the same query against the same
/// corpus reports the same `ClusterActivity` whatever the skew seed,
/// hedging deadline, or hedge race outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterActivity {
    /// Summed per-leaf activity (see [`QueryActivity::absorb`]); its
    /// `fine_entries` is the cluster's transferred-entry count, equal to a
    /// single device's under the static-threshold leaf protocol.
    pub activity: QueryActivity,
    /// Number of leaves fanned out to.
    pub leaves: usize,
    /// Union candidate count before the global cut.
    pub merged_candidates: usize,
    /// Candidates surviving the global `rerank_factor × k` cut.
    pub cut_candidates: usize,
}

/// Outcome of one cluster query.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSearchOutcome {
    /// The global top-k as `(stable id, INT8 rerank distance)`.
    pub results: Vec<Neighbor>,
    /// The winners' document chunks, aligned with `results`.
    pub documents: Vec<Vec<u8>>,
    /// Schedule-independent work accounting.
    pub activity: ClusterActivity,
    /// Modelled end-to-end latency: fan-out plus document phase.
    pub latency: Nanos,
    /// Modelled fan-out latency (max over hedged leaf completions).
    pub fanout_latency: Nanos,
    /// Modelled document-phase latency (max over owning leaves).
    pub document_latency: Nanos,
    /// Hedged duplicates launched by the straggler policy (schedule
    /// dependent, deliberately outside [`ClusterActivity`]).
    pub hedges_launched: usize,
}

impl ClusterSearchOutcome {
    /// Queries per second the modelled latency corresponds to.
    pub fn qps(&self) -> f64 {
        let secs = self.latency.as_secs_f64();
        if secs > 0.0 {
            1.0 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// What cluster recovery found: the manifest epoch plus each leaf's own
/// recovery report, in leaf order.
#[derive(Debug)]
pub struct ClusterRecovery {
    /// Epoch recorded in the recovered manifest.
    pub epoch: u64,
    /// Per-leaf recovery reports.
    pub leaves: Vec<RecoveryReport>,
}

/// The aggregator: N leaf systems behind one logical corpus.
#[derive(Debug)]
pub struct ClusterSystem {
    config: ReisConfig,
    leaves: Vec<ReisSystem>,
    /// Per-leaf deployed database id (empty until `deploy_*`).
    leaf_dbs: Vec<u32>,
    router: ShardRouter,
    latency: LatencyModel,
    hedge: Option<HedgePolicy>,
    manifest_vfs: Option<Box<dyn Vfs>>,
    epoch: u64,
    /// Query sequence number (the skew model's per-query key).
    seq: u64,
    /// Aggregator-side telemetry (fan-out counters, completion
    /// histograms, per-leaf trace spans). Each leaf additionally keeps
    /// its own [`ReisSystem`] telemetry handle; see
    /// [`ClusterSystem::enable_telemetry`].
    telemetry: Telemetry,
}

impl ClusterSystem {
    /// An in-memory cluster of `num_leaves` fresh leaves.
    ///
    /// # Errors
    ///
    /// [`ReisError::MalformedDatabase`] when `num_leaves` is zero.
    pub fn new(config: ReisConfig, num_leaves: usize) -> Result<Self> {
        let router = ShardRouter::new(num_leaves)?;
        Ok(ClusterSystem {
            config,
            leaves: (0..num_leaves).map(|_| ReisSystem::new(config)).collect(),
            leaf_dbs: Vec::new(),
            router,
            latency: LatencyModel::uniform(),
            hedge: None,
            manifest_vfs: None,
            epoch: 0,
            seq: 0,
            telemetry: Telemetry::from_env(),
        })
    }

    /// Open a durable cluster: one snapshot/WAL store per leaf plus a VFS
    /// holding the cluster manifest. A present manifest triggers full
    /// recovery (each leaf from its own store, the router from the
    /// manifest); an absent one opens every leaf fresh.
    ///
    /// # Errors
    ///
    /// Propagates leaf recovery errors, and rejects a manifest whose leaf
    /// count disagrees with `stores.len()`.
    pub fn open(
        config: ReisConfig,
        stores: Vec<DurableStore>,
        manifest_vfs: Box<dyn Vfs>,
    ) -> Result<(Self, Option<ClusterRecovery>)> {
        if stores.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "a cluster needs at least one leaf store".into(),
            ));
        }
        let num_leaves = stores.len();
        if manifest_vfs.exists(MANIFEST_FILE) {
            let bytes = manifest_vfs.read_file(MANIFEST_FILE)?;
            let manifest = ClusterManifest::decode(&bytes, MANIFEST_FILE)?;
            if manifest.num_leaves() != num_leaves {
                return Err(PersistError::Malformed(format!(
                    "manifest describes {} leaves but {num_leaves} stores were given",
                    manifest.num_leaves()
                ))
                .into());
            }
            let mut leaves = Vec::with_capacity(num_leaves);
            let mut reports = Vec::with_capacity(num_leaves);
            for store in stores {
                let (leaf, report) = ReisSystem::recover(config, store)?;
                leaves.push(leaf);
                reports.push(report);
            }
            // The id watermark is re-derived from the leaves: WAL replay may
            // have carried inserts past the last manifest write.
            let mut next_global = manifest.next_global;
            for (leaf, &db_id) in leaves.iter().zip(&manifest.leaf_db_ids) {
                next_global = next_global.max(leaf.next_stable_id(db_id)?);
            }
            let router =
                ShardRouter::from_owners(manifest.initial_owners.clone(), num_leaves, next_global)?;
            let cluster = ClusterSystem {
                config,
                leaves,
                leaf_dbs: manifest.leaf_db_ids.clone(),
                router,
                latency: LatencyModel::uniform(),
                hedge: None,
                manifest_vfs: Some(manifest_vfs),
                epoch: manifest.epoch,
                seq: 0,
                telemetry: Telemetry::from_env(),
            };
            let recovery = ClusterRecovery {
                epoch: manifest.epoch,
                leaves: reports,
            };
            Ok((cluster, Some(recovery)))
        } else {
            let mut leaves = Vec::with_capacity(num_leaves);
            for store in stores {
                let (leaf, _) = ReisSystem::open(config, store)?;
                leaves.push(leaf);
            }
            let router = ShardRouter::new(num_leaves)?;
            let cluster = ClusterSystem {
                config,
                leaves,
                leaf_dbs: Vec::new(),
                router,
                latency: LatencyModel::uniform(),
                hedge: None,
                manifest_vfs: Some(manifest_vfs),
                epoch: 0,
                seq: 0,
                telemetry: Telemetry::from_env(),
            };
            Ok((cluster, None))
        }
    }

    /// Replace the skew model (chainable).
    pub fn with_latency_model(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Replace the hedging policy (chainable; `None` disables hedging).
    pub fn with_hedging(mut self, hedge: Option<HedgePolicy>) -> Self {
        self.hedge = hedge;
        self
    }

    /// Replace the skew model in place.
    pub fn set_latency_model(&mut self, model: LatencyModel) {
        self.latency = model;
    }

    /// Replace the hedging policy in place.
    pub fn set_hedging(&mut self, hedge: Option<HedgePolicy>) {
        self.hedge = hedge;
    }

    /// The aggregator's telemetry handle (fan-out counters, leaf
    /// completion and fan-out histograms, cluster query traces). Per-leaf
    /// counters live on each leaf's own handle: `cluster.leaf(i).telemetry()`.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enable telemetry on the aggregator and on every leaf (fresh
    /// registries where not already enabled). Recording is strictly
    /// observational: results, activity accounting and modelled schedules
    /// are bit-identical with telemetry on or off.
    pub fn enable_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            self.telemetry = Telemetry::enabled();
        }
        for leaf in &mut self.leaves {
            leaf.enable_telemetry();
        }
    }

    /// Deploy a flat corpus sharded across the leaves: union-fitted
    /// quantizers, contiguous entry-order slices, global stable ids equal
    /// to corpus positions — exactly the ids a single device would assign.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::deploy`], plus
    /// [`ReisError::MalformedDatabase`] when the corpus has fewer entries
    /// than the cluster has leaves or a corpus is already deployed.
    pub fn deploy_flat(&mut self, vectors: &[Vec<f32>], documents: &[Vec<u8>]) -> Result<()> {
        let union = VectorDatabase::flat(vectors, documents.to_vec())?;
        self.deploy_sharded(&union, vectors, documents)
    }

    /// Deploy an IVF corpus sharded across the leaves: the union's
    /// centroids are replicated to **every** leaf (so coarse search picks
    /// identical probe sets everywhere) while the member lists split as
    /// contiguous slices of the union's cluster-major storage order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSystem::deploy_flat`].
    pub fn deploy_ivf(
        &mut self,
        vectors: &[Vec<f32>],
        documents: &[Vec<u8>],
        nlist: usize,
    ) -> Result<()> {
        let union = VectorDatabase::ivf(vectors, documents.to_vec(), nlist)?;
        self.deploy_sharded(&union, vectors, documents)
    }

    fn deploy_sharded(
        &mut self,
        union: &VectorDatabase,
        vectors: &[Vec<f32>],
        documents: &[Vec<u8>],
    ) -> Result<()> {
        if !self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster already serves a deployed corpus".into(),
            ));
        }
        let entries = vectors.len();
        let num_leaves = self.leaves.len();
        if entries < num_leaves {
            return Err(ReisError::MalformedDatabase(format!(
                "cannot shard {entries} entries across {num_leaves} leaves"
            )));
        }

        // The union's storage order: entry order for flat, cluster-major
        // for IVF. Slicing *this* order contiguously is what makes the
        // lifted merge order coincide with the single-device scan order.
        let order: Vec<usize> = match union.clusters() {
            Some(info) => info.lists.iter().flatten().copied().collect(),
            None => (0..entries).collect(),
        };
        let cluster_of: Option<Vec<usize>> = union.clusters().map(|info| {
            let mut map = vec![0usize; entries];
            for (cluster, members) in info.lists.iter().enumerate() {
                for &member in members {
                    map[member] = cluster;
                }
            }
            map
        });

        // Every leaf must use the document slot size the *union* corpus
        // would: the slot is a step function of the corpus's largest
        // document, and per-leaf maxima can fall on the other side of the
        // step.
        let max_doc = documents.iter().map(Vec::len).max().unwrap_or(0);
        let page = self.config.ssd.geometry.page_size_bytes;
        let min_doc_slot = if max_doc + 4 <= DOC_SUBPAGE_BYTES {
            DOC_SUBPAGE_BYTES.min(page)
        } else {
            page
        };

        let mut owners = vec![0u32; entries];
        let mut leaf_dbs = Vec::with_capacity(num_leaves);
        for (leaf_idx, range) in ShardRouter::slices(entries, num_leaves)
            .into_iter()
            .enumerate()
        {
            let slice = &order[range];
            let ids: Vec<u32> = slice.iter().map(|&entry| entry as u32).collect();
            for &entry in slice {
                owners[entry] = leaf_idx as u32;
            }
            let leaf_vectors: Vec<Vec<f32>> =
                slice.iter().map(|&entry| vectors[entry].clone()).collect();
            let leaf_documents: Vec<Vec<u8>> = slice
                .iter()
                .map(|&entry| documents[entry].clone())
                .collect();
            let shard = match (union.clusters(), &cluster_of) {
                (Some(info), Some(cluster_of)) => {
                    let mut lists = vec![Vec::new(); info.nlist()];
                    for (position, &entry) in slice.iter().enumerate() {
                        lists[cluster_of[entry]].push(position);
                    }
                    VectorDatabase::ivf_with_clusters(
                        &leaf_vectors,
                        leaf_documents,
                        union.binary_quantizer().clone(),
                        union.int8_quantizer().clone(),
                        ClusterInfo {
                            centroids: info.centroids.clone(),
                            lists,
                        },
                    )?
                }
                _ => VectorDatabase::flat_with_quantizers(
                    &leaf_vectors,
                    leaf_documents,
                    union.binary_quantizer().clone(),
                    union.int8_quantizer().clone(),
                )?,
            };
            leaf_dbs.push(self.leaves[leaf_idx].deploy_with_ids(&shard, &ids, min_doc_slot)?);
        }

        self.leaf_dbs = leaf_dbs;
        self.router.set_initial_owners(owners);
        if self.manifest_vfs.is_some() {
            self.write_manifest()?;
        }
        Ok(())
    }

    /// Brute-force top-k over the whole cluster.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::search`], plus
    /// [`ReisError::MalformedDatabase`] before a corpus is deployed.
    pub fn search(&mut self, query: &[f32], k: usize) -> Result<ClusterSearchOutcome> {
        self.run(query, k, None)
    }

    /// IVF top-k probing `nprobe` clusters (the same clusters on every
    /// leaf — they share the full centroid set).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::ivf_search_with_nprobe`], plus
    /// [`ReisError::MalformedDatabase`] before a corpus is deployed.
    pub fn ivf_search_with_nprobe(
        &mut self,
        query: &[f32],
        k: usize,
        nprobe: usize,
    ) -> Result<ClusterSearchOutcome> {
        self.run(query, k, Some(nprobe))
    }

    /// Batched search: each query is fanned out and merged independently
    /// (per-query outcomes, in request order). Every query advances the
    /// skew model's sequence number exactly as the same queries issued
    /// one at a time would, so batching never changes results *or*
    /// modelled schedules.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSystem::search`].
    pub fn search_batch(
        &mut self,
        queries: &[Vec<f32>],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<Vec<ClusterSearchOutcome>> {
        queries.iter().map(|q| self.run(q, k, nprobe)).collect()
    }

    fn run(
        &mut self,
        query: &[f32],
        k: usize,
        nprobe: Option<usize>,
    ) -> Result<ClusterSearchOutcome> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        let seq = self.seq;
        self.seq += 1;
        let enabled = self.telemetry.is_enabled();
        let mut spans: Vec<Span> = Vec::new();

        // Scatter: every leaf runs the in-storage pipeline through the
        // rerank and reports its full scored candidate set.
        let mut per_leaf: Vec<Vec<LeafCandidate>> = Vec::with_capacity(self.leaves.len());
        let mut activity = QueryActivity::default();
        let mut budget = 0;
        let mut fanout_latency = Nanos::ZERO;
        let mut hedges_launched = 0;
        for (leaf_idx, leaf) in self.leaves.iter_mut().enumerate() {
            let leaf_started = enabled.then(Instant::now);
            let outcome = leaf.leaf_query(self.leaf_dbs[leaf_idx], query, k, nprobe)?;
            debug_assert!(
                budget == 0 || budget == outcome.candidate_budget,
                "leaves disagree on the candidate budget"
            );
            budget = outcome.candidate_budget;
            let (completion, hedged) = leaf_completion(
                &self.latency,
                self.hedge,
                leaf_idx,
                seq,
                outcome.latency.total(),
            );
            fanout_latency = fanout_latency.max(completion);
            hedges_launched += usize::from(hedged);
            activity.absorb(&outcome.activity);
            per_leaf.push(outcome.candidates);
            if enabled {
                self.telemetry.count(CounterId::LeafRequests, 1);
                if hedged {
                    self.telemetry.count(CounterId::HedgesLaunched, 1);
                }
                self.telemetry
                    .observe(HistogramId::LeafCompletionNs, completion.as_nanos());
                spans.push(Span {
                    stage: if hedged { "leaf_hedged" } else { "leaf" },
                    index: leaf_idx as u32,
                    wall_ns: leaf_started
                        .map(|t0| t0.elapsed().as_nanos() as u64)
                        .unwrap_or(0),
                    modelled_ns: completion.as_nanos(),
                });
            }
        }

        // Gather: replay the single-device cut and ranking over the union.
        let merge_started = enabled.then(Instant::now);
        let merged = merge_top_k(&per_leaf, budget, k);
        let results: Vec<Neighbor> = merged
            .winners
            .iter()
            .map(|w| Neighbor::new(w.candidate.id as usize, w.candidate.raw as f32))
            .collect();

        // Fetch only the winners' chunks, each from its owning leaf, and
        // splice them back into global rank order.
        let merge_wall = merge_started
            .map(|t0| t0.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let doc_started = enabled.then(Instant::now);
        let mut documents: Vec<Vec<u8>> = vec![Vec::new(); results.len()];
        let mut document_latency = Nanos::ZERO;
        for leaf_idx in 0..self.leaves.len() {
            let wanted: Vec<usize> = merged
                .winners
                .iter()
                .enumerate()
                .filter(|(_, w)| w.leaf == leaf_idx)
                .map(|(rank, _)| rank)
                .collect();
            if wanted.is_empty() {
                continue;
            }
            let neighbors: Vec<Neighbor> = wanted.iter().map(|&rank| results[rank]).collect();
            let fetched =
                self.leaves[leaf_idx].leaf_fetch_documents(self.leaf_dbs[leaf_idx], &neighbors)?;
            document_latency = document_latency
                .max(fetched.latency + self.latency.delay(leaf_idx, seq, DOC_ATTEMPT));
            for (rank, chunk) in wanted.into_iter().zip(fetched.documents) {
                documents[rank] = chunk;
            }
        }
        activity.documents = results.len();

        if enabled {
            self.telemetry.count(CounterId::ClusterQueries, 1);
            self.telemetry
                .observe(HistogramId::FanoutNs, fanout_latency.as_nanos());
            spans.push(Span {
                stage: "merge",
                index: 0,
                wall_ns: merge_wall,
                modelled_ns: 0,
            });
            spans.push(Span {
                stage: "doc_fetch",
                index: 0,
                wall_ns: doc_started
                    .map(|t0| t0.elapsed().as_nanos() as u64)
                    .unwrap_or(0),
                modelled_ns: document_latency.as_nanos(),
            });
            let sequence = self.telemetry.next_sequence();
            self.telemetry.record_trace(QueryTrace {
                sequence,
                kind: "cluster_search",
                spans,
            });
        }

        Ok(ClusterSearchOutcome {
            results,
            documents,
            activity: ClusterActivity {
                activity,
                leaves: self.leaves.len(),
                merged_candidates: merged.merged_candidates,
                cut_candidates: merged.cut_candidates,
            },
            latency: fanout_latency + document_latency,
            fanout_latency,
            document_latency,
            hedges_launched,
        })
    }

    /// Insert one entry; returns its globally assigned stable id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::insert`].
    pub fn insert(&mut self, vector: &[f32], document: Vec<u8>) -> Result<u32> {
        let ids = self.insert_batch(std::slice::from_ref(&vector.to_vec()), vec![document])?;
        Ok(ids[0])
    }

    /// Insert a batch; global ids are minted consecutively and each entry
    /// is routed to (and natively stored under its global id by) its
    /// owning leaf.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::insert_batch`].
    pub fn insert_batch(
        &mut self,
        vectors: &[Vec<f32>],
        documents: Vec<Vec<u8>>,
    ) -> Result<Vec<u32>> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        if vectors.len() != documents.len() {
            return Err(ReisError::MalformedDatabase(format!(
                "{} vectors but {} documents in cluster insert",
                vectors.len(),
                documents.len()
            )));
        }
        let ids = self.router.assign(vectors.len());
        type RoutedBatch = (Vec<u32>, Vec<Vec<f32>>, Vec<Vec<u8>>);
        let mut routed: Vec<RoutedBatch> = vec![Default::default(); self.leaves.len()];
        for ((id, vector), document) in ids.iter().zip(vectors).zip(documents) {
            let leaf = self.router.owner(*id);
            routed[leaf].0.push(*id);
            routed[leaf].1.push(vector.clone());
            routed[leaf].2.push(document);
        }
        for (leaf_idx, (leaf_ids, leaf_vectors, leaf_documents)) in routed.into_iter().enumerate() {
            if leaf_ids.is_empty() {
                continue;
            }
            self.leaves[leaf_idx].insert_batch_at(
                self.leaf_dbs[leaf_idx],
                &leaf_ids,
                &leaf_vectors,
                leaf_documents,
            )?;
        }
        Ok(ids)
    }

    /// Delete stable id `id` from its owning leaf.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::delete`].
    pub fn delete(&mut self, id: u32) -> Result<MutationOutcome> {
        let leaf = self.owning_leaf(id)?;
        self.leaves[leaf].delete(self.leaf_dbs[leaf], id)
    }

    /// Upsert stable id `id` in place on its owning leaf.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::upsert`].
    pub fn upsert(&mut self, id: u32, vector: &[f32], document: &[u8]) -> Result<MutationOutcome> {
        let leaf = self.owning_leaf(id)?;
        self.leaves[leaf].upsert(self.leaf_dbs[leaf], id, vector, document)
    }

    /// Compact every leaf, in leaf order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReisSystem::compact`].
    pub fn compact(&mut self) -> Result<Vec<CompactionOutcome>> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        (0..self.leaves.len())
            .map(|leaf| self.leaves[leaf].compact(self.leaf_dbs[leaf]))
            .collect()
    }

    /// Checkpoint the whole cluster: every leaf saves a snapshot, then the
    /// manifest is rewritten under a bumped epoch. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`ReisError::Persist`] when the cluster was not opened durably, or
    /// on storage failure.
    pub fn save(&mut self) -> Result<u64> {
        if self.manifest_vfs.is_none() {
            return Err(ReisError::Persist(PersistError::Malformed(
                "save() requires a durably opened cluster (see ClusterSystem::open)".into(),
            )));
        }
        for leaf in &mut self.leaves {
            leaf.save()?;
        }
        self.epoch += 1;
        self.write_manifest()?;
        Ok(self.epoch)
    }

    fn write_manifest(&self) -> Result<()> {
        let vfs = self
            .manifest_vfs
            .as_ref()
            .expect("write_manifest is only called on durable clusters");
        let manifest = ClusterManifest {
            epoch: self.epoch,
            leaf_db_ids: self.leaf_dbs.clone(),
            next_global: self.router.next_global(),
            initial_owners: self.router.initial_owners().to_vec(),
        };
        vfs.write_file(MANIFEST_FILE, &manifest.encode())?;
        Ok(())
    }

    fn owning_leaf(&self, id: u32) -> Result<usize> {
        if self.leaf_dbs.is_empty() {
            return Err(ReisError::MalformedDatabase(
                "cluster has no deployed corpus".into(),
            ));
        }
        Ok(self.router.owner(id))
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// The shard router (owner map and id watermark).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The manifest epoch of the last save (0 before any).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Borrow leaf `leaf` (tests inspect per-leaf state through this).
    pub fn leaf(&self, leaf: usize) -> &ReisSystem {
        &self.leaves[leaf]
    }

    /// The database id leaf `leaf` serves the shard under.
    pub fn leaf_db_id(&self, leaf: usize) -> Option<u32> {
        self.leaf_dbs.get(leaf).copied()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ReisConfig {
        &self.config
    }
}
