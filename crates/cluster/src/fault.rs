//! Deterministic fault injection at the aggregator→leaf call boundary.
//!
//! A [`FaultPlan`] is the cluster-level sibling of `reis-persist`'s
//! `FaultVfs`: where that wrapper corrupts *bytes at rest*, this one fails
//! *calls in flight*. Every aggregator→leaf interaction first consults the
//! plan, which rules it one of three ways:
//!
//! * **Ok** — the call executes normally.
//! * **Unavailable** — the call fails fast (modelled as one leaf-service
//!   delay) and is retried under the cluster's `RetryPolicy`.
//! * **Timeout** — the call hangs; the aggregator charges its timeout
//!   deadline and retries.
//!
//! Rulings are a pure function of `(seed, leaf, nth_call)` via the same
//! splitmix64 generator the persistence layer uses, so a fault schedule is
//! fully described by its seed and rates: replaying the same operation
//! trace against the same plan reproduces the exact same faults, which is
//! what lets the property suite compare a faulted run against its
//! no-fault twin bit for bit. Rates are expressed in parts-per-million.
//! A *kill* entry additionally takes a leaf down permanently from its
//! Nth call onward — until [`FaultPlan::revive`] lifts it, modelling the
//! operator repairing the leaf before it rejoins.
//!
//! The plan keeps one cursor per leaf ([`FaultPlan::calls_consumed`])
//! counting the calls actually issued; leaves the cluster already knows
//! are down are skipped *without* consuming a draw, so the schedule stays
//! aligned with the calls that really happen.

use reis_persist::splitmix64;

/// Rates are drawn against one million slots per call.
const PPM_SCALE: u64 = 1_000_000;

/// The plan's ruling on a single aggregator→leaf call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// The call goes through.
    Ok,
    /// The call fails fast with a transient outage.
    Unavailable,
    /// The call hangs until the aggregator's timeout deadline.
    Timeout,
}

/// A seeded, deterministic schedule of leaf-call faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    fail_ppm: u32,
    timeout_ppm: u32,
    /// Permanent kills: leaf `l` answers `Unavailable` to every call from
    /// its `n`th onward (0-based) until revived.
    kills: Vec<(usize, u64)>,
    /// Per-leaf count of calls ruled so far.
    calls: Vec<u64>,
}

impl FaultPlan {
    /// A plan that fails a call with probability `fail_ppm` ppm and times
    /// one out with probability `timeout_ppm` ppm, decided per call by
    /// splitmix64 draws from `seed`.
    ///
    /// # Panics
    ///
    /// When the two rates together exceed one million ppm.
    pub fn new(seed: u64, fail_ppm: u32, timeout_ppm: u32) -> Self {
        assert!(
            u64::from(fail_ppm) + u64::from(timeout_ppm) <= PPM_SCALE,
            "fault rates exceed {PPM_SCALE} ppm"
        );
        FaultPlan {
            seed,
            fail_ppm,
            timeout_ppm,
            kills: Vec::new(),
            calls: Vec::new(),
        }
    }

    /// A plan that never faults — useful as the healthy-path baseline when
    /// measuring the retry machinery's overhead.
    pub fn healthy() -> Self {
        FaultPlan::new(0, 0, 0)
    }

    /// Additionally kill leaf `leaf` permanently at its `nth_call`th call
    /// (0-based): that call and every later one rule `Unavailable` until
    /// [`FaultPlan::revive`].
    pub fn with_kill(mut self, leaf: usize, nth_call: u64) -> Self {
        self.kills.push((leaf, nth_call));
        self
    }

    /// Lift every kill on `leaf`, modelling the leaf being repaired before
    /// it rejoins the cluster. Random fail/timeout rates still apply.
    pub fn revive(&mut self, leaf: usize) {
        self.kills.retain(|&(killed, _)| killed != leaf);
    }

    /// The ruling for leaf `leaf`'s `call`th call (0-based). Pure in
    /// `(seed, leaf, call)` — this is the function [`FaultPlan::decide`]
    /// samples along each leaf's call cursor.
    pub fn decision_at(&self, leaf: usize, call: u64) -> FaultDecision {
        if self
            .kills
            .iter()
            .any(|&(killed, nth)| killed == leaf && call >= nth)
        {
            return FaultDecision::Unavailable;
        }
        if self.fail_ppm == 0 && self.timeout_ppm == 0 {
            return FaultDecision::Ok;
        }
        let mut state = self
            .seed
            .wrapping_add((leaf as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(call.wrapping_mul(0x9FB2_1C65_1E98_DF25));
        let draw = splitmix64(&mut state) % PPM_SCALE;
        if draw < u64::from(self.fail_ppm) {
            FaultDecision::Unavailable
        } else if draw < u64::from(self.fail_ppm) + u64::from(self.timeout_ppm) {
            FaultDecision::Timeout
        } else {
            FaultDecision::Ok
        }
    }

    /// Rule the next call to `leaf`, consuming one slot of its schedule.
    pub fn decide(&mut self, leaf: usize) -> FaultDecision {
        if self.calls.len() <= leaf {
            self.calls.resize(leaf + 1, 0);
        }
        let call = self.calls[leaf];
        self.calls[leaf] += 1;
        self.decision_at(leaf, call)
    }

    /// How many calls to `leaf` the plan has ruled so far.
    pub fn calls_consumed(&self, leaf: usize) -> u64 {
        self.calls.get(leaf).copied().unwrap_or(0)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Transient-failure rate in parts per million.
    pub fn fail_ppm(&self) -> u32 {
        self.fail_ppm
    }

    /// Timeout rate in parts per million.
    pub fn timeout_ppm(&self) -> u32 {
        self.timeout_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_cursor_aligned() {
        let mut a = FaultPlan::new(42, 200_000, 100_000);
        let mut b = FaultPlan::new(42, 200_000, 100_000);
        for leaf in [0usize, 1, 0, 2, 1, 0] {
            assert_eq!(a.decide(leaf), b.decide(leaf));
        }
        assert_eq!(a.calls_consumed(0), 3);
        assert_eq!(a.calls_consumed(2), 1);
        // The stateful cursor samples the pure function.
        let plan = FaultPlan::new(42, 200_000, 100_000);
        let mut replay = FaultPlan::new(42, 200_000, 100_000);
        for call in 0..3 {
            assert_eq!(replay.decide(0), plan.decision_at(0, call));
        }
    }

    #[test]
    fn rates_are_roughly_honoured_and_disjoint() {
        let plan = FaultPlan::new(7, 250_000, 125_000);
        let mut fails = 0u32;
        let mut timeouts = 0u32;
        const DRAWS: u64 = 20_000;
        for call in 0..DRAWS {
            match plan.decision_at(3, call) {
                FaultDecision::Unavailable => fails += 1,
                FaultDecision::Timeout => timeouts += 1,
                FaultDecision::Ok => {}
            }
        }
        let fail_rate = f64::from(fails) / DRAWS as f64;
        let timeout_rate = f64::from(timeouts) / DRAWS as f64;
        assert!((fail_rate - 0.25).abs() < 0.02, "fail rate {fail_rate}");
        assert!(
            (timeout_rate - 0.125).abs() < 0.02,
            "timeout rate {timeout_rate}"
        );
    }

    #[test]
    fn zero_rate_plans_never_fault() {
        let mut plan = FaultPlan::healthy();
        for _ in 0..1_000 {
            assert_eq!(plan.decide(0), FaultDecision::Ok);
        }
    }

    #[test]
    fn kills_are_permanent_until_revived() {
        let mut plan = FaultPlan::healthy().with_kill(1, 2);
        assert_eq!(plan.decide(1), FaultDecision::Ok);
        assert_eq!(plan.decide(1), FaultDecision::Ok);
        assert_eq!(plan.decide(1), FaultDecision::Unavailable);
        assert_eq!(plan.decide(1), FaultDecision::Unavailable);
        // Other leaves are untouched.
        assert_eq!(plan.decide(0), FaultDecision::Ok);
        plan.revive(1);
        assert_eq!(plan.decide(1), FaultDecision::Ok);
    }

    #[test]
    fn leaves_decide_independently() {
        let plan = FaultPlan::new(99, 500_000, 0);
        let per_leaf: Vec<Vec<FaultDecision>> = (0..4)
            .map(|leaf| (0..64).map(|call| plan.decision_at(leaf, call)).collect())
            .collect();
        // Distinct leaves see distinct schedules (astronomically unlikely
        // to collide if the leaf index actually enters the mix).
        assert!(per_leaf.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn rates_past_unity_are_rejected() {
        let result = std::panic::catch_unwind(|| FaultPlan::new(0, 900_000, 200_000));
        assert!(result.is_err());
    }
}
