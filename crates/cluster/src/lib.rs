//! # reis-cluster — aggregator–leaf scale-out over N REIS devices
//!
//! One logical corpus, partitioned across N independent leaf
//! [`ReisSystem`](reis_core::ReisSystem) instances behind an aggregator
//! that fans queries out, merges per-leaf answers and routes mutations to
//! the owning shard. The headline property is **bit-identity**: for any
//! leaf count, the cluster's search results, retrieved documents and
//! summed transferred-entry accounting equal a single-device deployment
//! of the union corpus (see `crates/core/tests/scaleout.rs`) — and, under
//! injected leaf faults, stay bit-identical as long as every shard keeps
//! one live replica, degrading to an explicitly reported shard subset
//! otherwise (see `crates/core/tests/fault_tolerance.rs`).
//!
//! * [`router`] — deterministic document sharding: contiguous slices of
//!   the union's storage order, an owner map for deploy-time ids,
//!   round-robin routing for later inserts, and shard-major replica
//!   groups when a replication factor is configured.
//! * [`merge`] — the exact scatter–gather merge: the single-device
//!   candidate cut and top-k rules replayed over the union of leaf
//!   candidate sets under the lifted `(distance, leaf, storage index)`
//!   order.
//! * [`latency`] — modelled per-leaf latency skew (seeded, deterministic)
//!   and hedged duplicate requests for straggler tolerance.
//! * [`fault`] — seeded, deterministic fault injection at the
//!   aggregator→leaf call boundary ([`FaultPlan`]): transient
//!   unavailability, timeouts and permanent kills, replayable call for
//!   call.
//! * [`health`] — the per-leaf health state machine, the bounded
//!   retry/backoff policy and the [`ShardCoverage`] degradation
//!   contract.
//! * [`cluster`] — [`ClusterSystem`], the aggregator itself: deploy,
//!   search, batched search, mutation routing with replica lockstep,
//!   retry/failover/degradation, per-leaf durability, cluster-manifest
//!   recovery and down-leaf rejoin.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod fault;
pub mod health;
pub mod latency;
pub mod merge;
pub mod pipeline;
pub mod router;

pub use cluster::{ClusterActivity, ClusterRecovery, ClusterSearchOutcome, ClusterSystem};
pub use fault::{FaultDecision, FaultPlan};
pub use health::{HealthState, LeafHealth, RetryPolicy, ShardCoverage};
pub use latency::{HedgePolicy, LatencyModel};
pub use merge::{merge_top_k, MergeOutcome, RankedCandidate};
pub use pipeline::{ClusterPipeline, ClusterPipelineCompletion, ClusterPipelineReply};
pub use router::ShardRouter;
