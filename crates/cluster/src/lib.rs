//! # reis-cluster — aggregator–leaf scale-out over N REIS devices
//!
//! One logical corpus, partitioned across N independent leaf
//! [`ReisSystem`](reis_core::ReisSystem) instances behind an aggregator
//! that fans queries out, merges per-leaf answers and routes mutations to
//! the owning leaf. The headline property is **bit-identity**: for any
//! leaf count, the cluster's search results, retrieved documents and
//! summed transferred-entry accounting equal a single-device deployment
//! of the union corpus (see `crates/core/tests/scaleout.rs`).
//!
//! * [`router`] — deterministic document sharding: contiguous slices of
//!   the union's storage order, an owner map for deploy-time ids and
//!   round-robin routing for later inserts.
//! * [`merge`] — the exact scatter–gather merge: the single-device
//!   candidate cut and top-k rules replayed over the union of leaf
//!   candidate sets under the lifted `(distance, leaf, storage index)`
//!   order.
//! * [`latency`] — modelled per-leaf latency skew (seeded, deterministic)
//!   and hedged duplicate requests for straggler tolerance.
//! * [`cluster`] — [`ClusterSystem`], the aggregator itself: deploy,
//!   search, batched search, mutation routing, per-leaf durability and
//!   cluster-manifest recovery.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod latency;
pub mod merge;
pub mod router;

pub use cluster::{ClusterActivity, ClusterRecovery, ClusterSearchOutcome, ClusterSystem};
pub use latency::{HedgePolicy, LatencyModel};
pub use merge::{merge_top_k, MergeOutcome, RankedCandidate};
pub use router::ShardRouter;
