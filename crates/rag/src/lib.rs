//! # reis-rag — end-to-end RAG pipeline latency model
//!
//! The RAG pipeline of Sec. 2.1 / 3.1 has six measurable stages: loading the
//! embedding model, encoding the query, loading the dataset from storage,
//! the ANNS search itself, loading the generation model, and generation.
//! REIS only changes the middle two (dataset loading disappears, search moves
//! into the SSD), so the end-to-end figures (Figs. 2–3, Table 4) are obtained
//! by composing a retrieval-stage estimate — from `reis-core` for REIS or
//! `reis-baseline` for the CPU systems — with fixed stage costs calibrated to
//! the paper's measurement setup (all-roberta-large-v1 for encoding and
//! Llama 3.2 1B on an A100 for generation).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use serde::{Deserialize, Serialize};

use reis_baseline::{CpuPrecision, CpuSystem};
use reis_workloads::DatasetProfile;

/// One stage of the RAG pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RagStage {
    /// Loading the embedding model from storage onto the accelerator.
    EmbeddingModelLoading,
    /// Encoding the query into an embedding.
    Encoding,
    /// Loading the vector database + documents from storage into host DRAM
    /// (absent when retrieval runs in storage).
    DatasetLoading,
    /// The ANNS search plus document retrieval.
    Search,
    /// Loading the generation model (the LLM).
    GenerationModelLoading,
    /// LLM generation of the response.
    Generation,
}

impl RagStage {
    /// All stages in pipeline order.
    pub fn all() -> [RagStage; 6] {
        [
            RagStage::EmbeddingModelLoading,
            RagStage::Encoding,
            RagStage::DatasetLoading,
            RagStage::Search,
            RagStage::GenerationModelLoading,
            RagStage::Generation,
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            RagStage::EmbeddingModelLoading => "Embedding Model Loading",
            RagStage::Encoding => "Encoding",
            RagStage::DatasetLoading => "Dataset Loading",
            RagStage::Search => "Search",
            RagStage::GenerationModelLoading => "Generation Model Loading",
            RagStage::Generation => "Generation",
        }
    }
}

/// Latencies of the stages REIS does not change, in seconds.
///
/// Calibrated to the paper's setup (Table 4): all-roberta-large-v1 encoding
/// and Llama 3.2 1B generation on an NVIDIA A100.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RagModelParams {
    /// Embedding-model loading time, seconds.
    pub embedding_model_load_s: f64,
    /// Query encoding time, seconds.
    pub encoding_s: f64,
    /// Generation-model loading time, seconds.
    pub generation_model_load_s: f64,
    /// Generation time, seconds.
    pub generation_s: f64,
}

impl RagModelParams {
    /// The paper's measurement setup: roberta-large encoder + Llama 3.2 1B
    /// generator on an A100, reproducing the Table 4 stage times.
    pub fn roberta_llama_1b() -> Self {
        RagModelParams {
            embedding_model_load_s: 0.62,
            encoding_s: 0.11,
            generation_model_load_s: 0.79,
            generation_s: 17.45,
        }
    }

    /// A larger generator (e.g. a 90B-class model): generation grows by
    /// roughly an order of magnitude, which is the caveat Sec. 3.1 discusses.
    pub fn large_generator() -> Self {
        RagModelParams {
            generation_s: 170.0,
            ..RagModelParams::roberta_llama_1b()
        }
    }
}

impl Default for RagModelParams {
    fn default() -> Self {
        RagModelParams::roberta_llama_1b()
    }
}

/// Per-stage latency of one end-to-end RAG run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RagBreakdown {
    /// Embedding-model loading, seconds.
    pub embedding_model_loading: f64,
    /// Encoding, seconds.
    pub encoding: f64,
    /// Dataset loading, seconds (zero for in-storage retrieval).
    pub dataset_loading: f64,
    /// Search (and document retrieval), seconds.
    pub search: f64,
    /// Generation-model loading, seconds.
    pub generation_model_loading: f64,
    /// Generation, seconds.
    pub generation: f64,
}

impl RagBreakdown {
    /// End-to-end latency in seconds.
    pub fn total(&self) -> f64 {
        self.embedding_model_loading
            + self.encoding
            + self.dataset_loading
            + self.search
            + self.generation_model_loading
            + self.generation
    }

    /// The latency of one stage in seconds.
    pub fn stage(&self, stage: RagStage) -> f64 {
        match stage {
            RagStage::EmbeddingModelLoading => self.embedding_model_loading,
            RagStage::Encoding => self.encoding,
            RagStage::DatasetLoading => self.dataset_loading,
            RagStage::Search => self.search,
            RagStage::GenerationModelLoading => self.generation_model_loading,
            RagStage::Generation => self.generation,
        }
    }

    /// The fraction of the end-to-end latency one stage contributes.
    pub fn fraction(&self, stage: RagStage) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            0.0
        } else {
            self.stage(stage) / total
        }
    }

    /// The fraction of the end-to-end latency attributable to the retrieval
    /// stage (dataset loading + search) — the paper's "I/O data movement
    /// bottleneck" metric.
    pub fn retrieval_fraction(&self) -> f64 {
        self.fraction(RagStage::DatasetLoading) + self.fraction(RagStage::Search)
    }
}

/// The end-to-end pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RagPipeline {
    params: RagModelParams,
}

impl RagPipeline {
    /// Create a pipeline with the given fixed-stage parameters.
    pub fn new(params: RagModelParams) -> Self {
        RagPipeline { params }
    }

    /// The fixed-stage parameters.
    pub fn params(&self) -> &RagModelParams {
        &self.params
    }

    /// Compose a breakdown from explicit retrieval-stage costs.
    pub fn breakdown(&self, dataset_loading_s: f64, search_s: f64) -> RagBreakdown {
        RagBreakdown {
            embedding_model_loading: self.params.embedding_model_load_s,
            encoding: self.params.encoding_s,
            dataset_loading: dataset_loading_s,
            search: search_s,
            generation_model_loading: self.params.generation_model_load_s,
            generation: self.params.generation_s,
        }
    }

    /// Breakdown of a CPU-based pipeline on a dataset profile: the dataset is
    /// loaded from storage and searched in host memory.
    pub fn cpu_breakdown(
        &self,
        cpu: &CpuSystem,
        profile: &DatasetProfile,
        precision: CpuPrecision,
    ) -> RagBreakdown {
        let estimate = cpu.cpu_real(profile, 1, None, precision);
        self.breakdown(estimate.load_seconds, estimate.search_seconds_per_query)
    }

    /// Breakdown of a REIS pipeline: no dataset loading; the search stage is
    /// the in-storage retrieval latency (seconds).
    pub fn reis_breakdown(&self, retrieval_seconds: f64) -> RagBreakdown {
        self.breakdown(0.0, retrieval_seconds)
    }
}

impl Default for RagPipeline {
    fn default() -> Self {
        RagPipeline::new(RagModelParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pipeline_on_wiki_en_is_dominated_by_dataset_loading() {
        // Reproduces the qualitative result of Fig. 2: for wiki_en the
        // retrieval stage (dominated by dataset loading) takes the large
        // majority of the end-to-end time with f32 embeddings.
        let pipeline = RagPipeline::default();
        let cpu = CpuSystem::default();
        let wiki = DatasetProfile::wiki_en();
        let breakdown = pipeline.cpu_breakdown(&cpu, &wiki, CpuPrecision::Float32);
        assert!(
            breakdown.retrieval_fraction() > 0.6,
            "retrieval fraction {:.2} should dominate",
            breakdown.retrieval_fraction()
        );
        // BQ reduces but does not eliminate the bottleneck (Fig. 3).
        let bq = pipeline.cpu_breakdown(&cpu, &wiki, CpuPrecision::BinaryWithRerank);
        assert!(bq.dataset_loading < breakdown.dataset_loading);
        assert!(bq.retrieval_fraction() > 0.4);
    }

    #[test]
    fn reis_pipeline_makes_generation_the_bottleneck() {
        // Table 4: with REIS the combined loading+search share collapses to
        // well under a percent and generation dominates (~92%).
        let pipeline = RagPipeline::default();
        let breakdown = pipeline.reis_breakdown(0.004);
        assert!(breakdown.retrieval_fraction() < 0.01);
        assert!(breakdown.fraction(RagStage::Generation) > 0.85);
        assert_eq!(breakdown.dataset_loading, 0.0);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let pipeline = RagPipeline::default();
        let b = pipeline.breakdown(3.0, 0.5);
        let sum: f64 = RagStage::all().iter().map(|&s| b.fraction(s)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(b.total() > 0.0);
        for stage in RagStage::all() {
            assert!(!stage.label().is_empty());
        }
    }

    #[test]
    fn larger_generators_shrink_the_retrieval_share() {
        let small = RagPipeline::new(RagModelParams::roberta_llama_1b());
        let large = RagPipeline::new(RagModelParams::large_generator());
        let cpu = CpuSystem::default();
        let p = DatasetProfile::hotpotqa();
        let a = small.cpu_breakdown(&cpu, &p, CpuPrecision::Float32);
        let b = large.cpu_breakdown(&cpu, &p, CpuPrecision::Float32);
        assert!(b.retrieval_fraction() < a.retrieval_fraction());
    }
}
