//! Offline shim of `serde_derive`: the derives expand to nothing.
//!
//! The workspace only ever *derives* `Serialize` / `Deserialize`; no code
//! path serializes at runtime, so empty expansions are sufficient and keep
//! the shim free of `syn`/`quote` dependencies.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
