//! Offline shim of `proptest`: the strategy / `proptest!` subset the
//! workspace's property tests use.
//!
//! Differences from the real crate: a fixed number of cases per property
//! ([`NUM_CASES`] by default, overridable at runtime via the standard
//! `PROPTEST_CASES` environment variable), deterministic seeding derived
//! from the test name, and no shrinking — a failing case panics with the
//! ordinary assertion message.

/// Default number of cases each property runs (see [`cases`]).
pub const NUM_CASES: usize = 64;

/// Number of cases each property runs: the `PROPTEST_CASES` environment
/// variable when set to a positive integer (the same knob the real crate
/// honors — CI's determinism gate uses it to run the identity properties at
/// a high count), [`NUM_CASES`] otherwise. Case generation is a pure
/// function of the test name and the case index, so two runs with the same
/// `PROPTEST_CASES` enumerate identical cases regardless of machine or
/// thread count.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(NUM_CASES)
}

/// The deterministic RNG driving value generation.
pub mod test_runner {
    /// SplitMix64-based generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategies: how test-case values are generated.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of test-case values (subset of `proptest::Strategy`).
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through a function.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    /// Strategy for any value of a type with a default generator.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a canonical "arbitrary value" generator.
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            // Finite values only, spread over a broad magnitude range.
            (rng.unit_f64() as f32 - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)*)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for generated collections: a fixed length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// The `proptest::collection::vec` entry point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for [`cases`] generated cases
/// (`PROPTEST_CASES` in the environment, [`NUM_CASES`] otherwise).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..$crate::cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, u8)> {
        (any::<u8>(), any::<u8>())
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5usize..10, f in -1.0f32..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u8>(), 3..7), w in collection::vec(any::<bool>(), 4)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn prop_map_applies(x in (0u32..8).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 16);
        }

        #[test]
        fn tuples_compose(p in pair()) {
            let (_a, _b) = p;
        }
    }
}
