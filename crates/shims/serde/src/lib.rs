//! Offline shim of `serde`: marker traits plus the no-op derive macros.
//!
//! See `crates/shims/README.md`. Only the derive surface is used by the
//! workspace; the traits exist so explicit `T: Serialize` bounds would still
//! compile if one were ever written.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Subset of `serde::de` referenced by blanket imports.
pub mod de {
    pub use crate::DeserializeOwned;
}
