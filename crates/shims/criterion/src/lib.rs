//! Offline shim of `criterion`: a minimal, API-compatible benchmark harness.
//!
//! Each benchmark adaptively doubles its iteration count until the measured
//! window exceeds [`MIN_MEASURE`], then reports nanoseconds per iteration on
//! stdout. Results are also collected in a process-wide registry so
//! `criterion_main!` can dump them as JSON when the `REIS_BENCH_JSON`
//! environment variable names an output file.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum measured window per benchmark.
pub const MIN_MEASURE: Duration = Duration::from_millis(20);

/// Hard cap on iterations per benchmark.
pub const MAX_ITERS: u64 = 10_000_000;

static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Opaque value barrier re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`, adaptively choosing the iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        std::hint::black_box(f());
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_MEASURE || iters >= MAX_ITERS {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = (iters * 4).min(MAX_ITERS);
        }
    }

    /// Time `routine` over inputs produced by the untimed `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters: u64 = 0;
        while measured < MIN_MEASURE && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.ns_per_iter = measured.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A named group of benchmarks (subset of criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes runs adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_named(&full, f);
        self
    }

    /// End the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Accepted for compatibility with `Criterion::default().configure_from_args()`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        println!("bench: {name:<48} {:>14.1} ns/iter", bencher.ns_per_iter);
        self.results.push((name.to_string(), bencher.ns_per_iter));
        RESULTS
            .lock()
            .unwrap()
            .push((name.to_string(), bencher.ns_per_iter));
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_named(name, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// The `(name, ns_per_iter)` results measured so far by this driver.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// All results measured by the process so far, as a JSON string.
pub fn results_json() -> String {
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"ns_per_iter\": {:.1} }}{}\n",
            name.replace('"', "'"),
            ns,
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write the collected results to `$REIS_BENCH_JSON` if the variable is set.
/// Called automatically by `criterion_main!`.
pub fn write_json_if_requested() {
    if let Ok(path) = std::env::var("REIS_BENCH_JSON") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, results_json()) {
                eprintln!("failed to write {path}: {e}");
            } else {
                println!("wrote benchmark results to {path}");
            }
        }
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].1 >= 0.0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("x", |b| b.iter(|| 2 * 2));
        g.finish();
        assert!(c.results()[0].0.starts_with("grp/"));
        assert!(results_json().contains("grp/x"));
    }
}
