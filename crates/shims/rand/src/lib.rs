//! Offline shim of `rand`: the `StdRng` / `SeedableRng` / `Rng::gen_range`
//! subset the workspace uses.
//!
//! The generator is SplitMix64 seeded through `seed_from_u64`; it is
//! deterministic for a given seed (matching how the workspace uses the real
//! `StdRng`) but does not reproduce the real crate's exact streams.

use std::ops::Range;

/// Types that can seed themselves from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler (subset of `rand`'s `SampleUniform`).
///
/// Mirroring the real crate, [`SampleRange`] has a single blanket impl over
/// `Range<T>` for `T: SampleUniform`, which is what lets the surrounding
/// expression drive the inference of float range literals.
pub trait SampleUniform: Copy + PartialOrd {
    /// One uniform draw in `[start, end)` using `next` as the entropy source.
    fn sample_in(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(start: $t, end: $t, next: &mut dyn FnMut() -> u64) -> $t {
                let span = (end as i128 - start as i128) as u128;
                let draw = ((next() as u128) << 64 | next() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_in(start: f32, end: f32, next: &mut dyn FnMut() -> u64) -> f32 {
        let unit = (next() >> 40) as f32 / (1u64 << 24) as f32;
        start + (end - start) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_in(start: f64, end: f64, next: &mut dyn FnMut() -> u64) -> f64 {
        let unit = (next() >> 11) as f64 / (1u64 << 53) as f64;
        start + (end - start) * unit
    }
}

/// Ranges that can be sampled uniformly (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample using `next` as the entropy source.
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, next)
    }
}

/// Subset of `rand::Rng`.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range, matching `rand::Rng::gen_range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Uniform value in `[0, 1)` (subset of `rand::Rng::gen`).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The generators module, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            };
            rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let d = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(d > 0.0 && d < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
