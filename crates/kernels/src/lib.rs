//! # reis-kernels — the word-level bit kernels of the REIS workspace
//!
//! The single home of the XOR/popcount and Hamming-distance kernels that the
//! rest of the workspace computes with. `reis-nand`'s peripheral model (the
//! fail-bit counter and inter-latch XOR logic), `reis-ann`'s vector types and
//! `reis-bench`'s baseline measurements all re-export from here, so exactly
//! one implementation of each kernel exists — including the runtime POPCNT
//! dispatch that used to be duplicated per crate.
//!
//! # Kernel discipline
//!
//! * All bit counting and XOR-ing operates on `u64` words (8 bytes at a
//!   time) with exact byte-wise handling of any trailing partial word —
//!   mirroring how the physical peripheral processes a whole bitline stripe
//!   per cycle.
//! * Every entry point dispatches once to a body compiled with the hardware
//!   POPCNT instruction when the CPU has it (baseline x86-64 only guarantees
//!   the multi-op SWAR fallback for `count_ones`); the dispatch is hoisted
//!   out of all inner loops.
//! * The `_into` variants write into caller-provided buffers, so steady-state
//!   page scans perform no heap allocation here.
//!
//! # The fused multi-query kernel
//!
//! [`fused_hamming_per_chunk_into`] scores one sensed page against `B`
//! broadcast queries in a single pass over the page words: each page word is
//! loaded once and XOR-popcounted against the corresponding word of every
//! query. This is the software mirror of REIS amortizing a flash sense
//! across a batch of in-flight queries — the page moves through the
//! peripheral once, the per-query XOR + fail-bit count runs `B` times.
//! [`fused_hamming_filter_into`] additionally folds the pass/fail
//! comparison into the same pass: each query carries its own threshold
//! (fixed for the duration of one page window under the windowed adaptive
//! schedule) and only passing [`FusedHit`]s are emitted.
//!
//! # CRC32C
//!
//! [`crc32c`] / [`crc32c_extend`] implement the Castagnoli CRC
//! (polynomial `0x1EDC6F41`, reflected) used by `reis-persist` for both the
//! snapshot section checksums and the WAL frame checksums, so exactly one
//! checksum implementation guards every durable byte. It is table-driven
//! (the 256-entry table is built at compile time) with a bitwise
//! [`reference::crc32c`] baseline the tests verify against.
//!
//! The byte-at-a-time [`mod@reference`] kernels match the seed
//! implementation and are kept solely as the baseline the benchmarks
//! measure against.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[inline(always)]
fn word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
}

/// Word-parallel popcount body, shared by the portable and the
/// POPCNT-enabled entry points: `u64` words four at a time with independent
/// accumulators so the popcounts pipeline, then a byte-wise tail.
#[inline(always)]
fn popcount_bytes_core(bytes: &[u8]) -> u64 {
    let mut blocks = bytes.chunks_exact(32);
    let (mut s0, mut s1, mut s2, mut s3) = (0u64, 0u64, 0u64, 0u64);
    for block in blocks.by_ref() {
        s0 += word(&block[0..8]).count_ones() as u64;
        s1 += word(&block[8..16]).count_ones() as u64;
        s2 += word(&block[16..24]).count_ones() as u64;
        s3 += word(&block[24..32]).count_ones() as u64;
    }
    let mut words = blocks.remainder().chunks_exact(8);
    let mut total = s0 + s1 + s2 + s3;
    for w in words.by_ref() {
        total += word(w).count_ones() as u64;
    }
    for &b in words.remainder() {
        total += b.count_ones() as u64;
    }
    total
}

/// Word-parallel XOR-popcount body (two `u64` words per step with
/// independent accumulators, byte-wise tail), shared by the portable and
/// POPCNT entry points.
#[inline(always)]
fn hamming_core(a: &[u8], b: &[u8]) -> u32 {
    let mut ab = a.chunks_exact(16);
    let mut bb = b.chunks_exact(16);
    let (mut s0, mut s1) = (0u32, 0u32);
    for (x, y) in ab.by_ref().zip(bb.by_ref()) {
        s0 += (word(&x[0..8]) ^ word(&y[0..8])).count_ones();
        s1 += (word(&x[8..16]) ^ word(&y[8..16])).count_ones();
    }
    let mut aw = ab.remainder().chunks_exact(8);
    let mut bw = bb.remainder().chunks_exact(8);
    let mut total = s0 + s1;
    for (x, y) in aw.by_ref().zip(bw.by_ref()) {
        total += (word(x) ^ word(y)).count_ones();
    }
    for (x, y) in aw.remainder().iter().zip(bw.remainder()) {
        total += (x ^ y).count_ones();
    }
    total
}

/// `popcount_bytes_core` compiled with the hardware POPCNT instruction.
///
/// # Safety
///
/// The caller must ensure the CPU supports the `popcnt` feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn popcount_bytes_popcnt(bytes: &[u8]) -> u64 {
    popcount_bytes_core(bytes)
}

/// `hamming_core` compiled with the hardware POPCNT instruction.
///
/// # Safety
///
/// The caller must ensure the CPU supports the `popcnt` feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn hamming_popcnt(a: &[u8], b: &[u8]) -> u32 {
    hamming_core(a, b)
}

/// Set-bit count of a byte slice, processed as `u64` words with a byte-wise
/// tail; uses the hardware POPCNT instruction when the CPU has it.
#[inline]
pub fn popcount_bytes(bytes: &[u8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: feature presence checked at runtime just above.
        return unsafe { popcount_bytes_popcnt(bytes) };
    }
    popcount_bytes_core(bytes)
}

/// Hamming distance between two equally long byte slices, processed as
/// `u64` words with a byte-wise tail; uses the hardware POPCNT instruction
/// when the CPU has it.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn hamming_bytes(a: &[u8], b: &[u8]) -> u32 {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: feature presence checked at runtime just above.
        return unsafe { hamming_popcnt(a, b) };
    }
    hamming_core(a, b)
}

/// XOR `a` and `b` into `out` (cleared and resized first), processed as
/// `u64` words with a byte-wise tail.
///
/// # Panics
///
/// Panics if the inputs have different lengths.
#[inline]
pub fn xor_bytes_into(a: &[u8], b: &[u8], out: &mut Vec<u8>) {
    assert_eq!(a.len(), b.len(), "latch contents must have identical sizes");
    out.clear();
    out.resize(a.len(), 0);
    let mut aw = a.chunks_exact(8);
    let mut bw = b.chunks_exact(8);
    let mut ow = out.chunks_exact_mut(8);
    for ((x, y), o) in aw.by_ref().zip(bw.by_ref()).zip(ow.by_ref()) {
        let xw = word(x);
        let yw = word(y);
        o.copy_from_slice(&(xw ^ yw).to_le_bytes());
    }
    for ((x, y), o) in aw
        .remainder()
        .iter()
        .zip(bw.remainder())
        .zip(ow.into_remainder())
    {
        *o = x ^ y;
    }
}

/// Count the set bits of every `chunk_bytes`-sized chunk of `latch`,
/// appending one count per chunk into `out` (cleared first). A trailing
/// partial chunk is counted as its own entry. The POPCNT dispatch is hoisted
/// out of the per-chunk loop.
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero.
pub fn count_per_chunk_into(latch: &[u8], chunk_bytes: usize, out: &mut Vec<u32>) {
    #[inline(always)]
    fn core(latch: &[u8], chunk_bytes: usize, out: &mut Vec<u32>) {
        out.extend(
            latch
                .chunks(chunk_bytes)
                .map(|chunk| popcount_bytes_core(chunk) as u32),
        );
    }
    /// # Safety: caller checks the `popcnt` feature.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn core_popcnt(latch: &[u8], chunk_bytes: usize, out: &mut Vec<u32>) {
        core(latch, chunk_bytes, out)
    }

    assert!(chunk_bytes > 0, "chunk size must be non-zero");
    out.clear();
    out.reserve(latch.len().div_ceil(chunk_bytes));
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: feature presence checked at runtime just above.
        unsafe { core_popcnt(latch, chunk_bytes, out) };
        return;
    }
    core(latch, chunk_bytes, out);
}

/// Body of the fused multi-query kernel: each `chunk_bytes` page chunk is
/// walked word by word, each page word loaded once and XOR-popcounted
/// against the matching word of every query.
#[inline(always)]
fn fused_core(latch: &[u8], chunk_bytes: usize, queries: &[&[u8]], out: &mut [u32]) {
    let n_chunks = latch.len().div_ceil(chunk_bytes);
    for (c, chunk) in latch.chunks(chunk_bytes).enumerate() {
        let mut words = chunk.chunks_exact(8);
        let mut offset = 0usize;
        for w in words.by_ref() {
            let page_word = word(w);
            for (q, query) in queries.iter().enumerate() {
                let query_word = word(&query[offset..offset + 8]);
                out[q * n_chunks + c] += (page_word ^ query_word).count_ones();
            }
            offset += 8;
        }
        for &b in words.remainder() {
            for (q, query) in queries.iter().enumerate() {
                out[q * n_chunks + c] += (b ^ query[offset]).count_ones();
            }
            offset += 1;
        }
    }
}

/// `fused_core` compiled with the hardware POPCNT instruction.
///
/// # Safety
///
/// The caller must ensure the CPU supports the `popcnt` feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn fused_popcnt(latch: &[u8], chunk_bytes: usize, queries: &[&[u8]], out: &mut [u32]) {
    fused_core(latch, chunk_bytes, queries, out)
}

/// Fused multi-query Hamming kernel: score every `chunk_bytes`-sized chunk
/// of `latch` (one sensed page) against each query in a single pass over the
/// page words.
///
/// `out` is cleared and filled query-major: the counts of query `q` occupy
/// `out[q * n_chunks .. (q + 1) * n_chunks]`, where
/// `n_chunks = latch.len().div_ceil(chunk_bytes)`, so each query's filter
/// pass works on a contiguous slice. A trailing partial chunk is scored
/// against the prefix of each query, exactly as XOR-ing the page against a
/// query tiled across the whole latch would.
///
/// The result equals running [`count_per_chunk_into`] over the XOR of the
/// page with each query's tiling, one query at a time — but the page words
/// are loaded once for all queries.
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero or any query is not exactly
/// `chunk_bytes` long.
pub fn fused_hamming_per_chunk_into(
    latch: &[u8],
    chunk_bytes: usize,
    queries: &[&[u8]],
    out: &mut Vec<u32>,
) {
    assert!(chunk_bytes > 0, "chunk size must be non-zero");
    for query in queries {
        assert_eq!(
            query.len(),
            chunk_bytes,
            "fused queries must match the chunk size"
        );
    }
    let n_chunks = latch.len().div_ceil(chunk_bytes);
    out.clear();
    out.resize(n_chunks * queries.len(), 0);
    if queries.is_empty() {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: feature presence checked at runtime just above.
        unsafe { fused_popcnt(latch, chunk_bytes, queries, out) };
        return;
    }
    fused_core(latch, chunk_bytes, queries, out);
}

/// One passing slot of a threshold-aware fused scan: which query it passed
/// for, which page chunk (slot) it is, and the Hamming distance.
///
/// Hits are emitted chunk-major (ascending slot, then query order), so
/// consecutive hits of different queries on the same slot are adjacent —
/// callers that unpack per-slot metadata (e.g. flash OOB linkage) can reuse
/// the unpacked value across queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedHit {
    /// Index into the `queries` slice the hit belongs to.
    pub query: u32,
    /// Chunk (mini-page slot) index within the scored page.
    pub slot: u32,
    /// Hamming distance between the chunk and the query.
    pub distance: u32,
}

/// Body of the threshold-aware fused kernel: walk each chunk's words once,
/// accumulate the per-query distances in `acc`, then emit the queries whose
/// distance passes their own threshold.
#[inline(always)]
fn fused_filter_core(
    latch: &[u8],
    chunk_bytes: usize,
    slot_limit: usize,
    queries: &[&[u8]],
    thresholds: &[u32],
    acc: &mut [u32],
    out: &mut Vec<FusedHit>,
) {
    for (c, chunk) in latch.chunks(chunk_bytes).take(slot_limit).enumerate() {
        acc.fill(0);
        let mut words = chunk.chunks_exact(8);
        let mut offset = 0usize;
        for w in words.by_ref() {
            let page_word = word(w);
            for (q, query) in queries.iter().enumerate() {
                let query_word = word(&query[offset..offset + 8]);
                acc[q] += (page_word ^ query_word).count_ones();
            }
            offset += 8;
        }
        for &b in words.remainder() {
            for (q, query) in queries.iter().enumerate() {
                acc[q] += (b ^ query[offset]).count_ones();
            }
            offset += 1;
        }
        for (q, (&distance, &threshold)) in acc.iter().zip(thresholds).enumerate() {
            if distance <= threshold {
                out.push(FusedHit {
                    query: q as u32,
                    slot: c as u32,
                    distance,
                });
            }
        }
    }
}

/// `fused_filter_core` compiled with the hardware POPCNT instruction.
///
/// # Safety
///
/// The caller must ensure the CPU supports the `popcnt` feature.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
#[allow(clippy::too_many_arguments)]
unsafe fn fused_filter_popcnt(
    latch: &[u8],
    chunk_bytes: usize,
    slot_limit: usize,
    queries: &[&[u8]],
    thresholds: &[u32],
    acc: &mut [u32],
    out: &mut Vec<FusedHit>,
) {
    fused_filter_core(
        latch,
        chunk_bytes,
        slot_limit,
        queries,
        thresholds,
        acc,
        out,
    )
}

/// Threshold-aware fused multi-query kernel: score the first `slot_limit`
/// `chunk_bytes`-sized chunks of `latch` (one sensed page) against every
/// query in a single pass over the page words, and emit only the
/// [`FusedHit`]s whose distance is at or below that query's threshold.
///
/// This fuses [`fused_hamming_per_chunk_into`] with the pass/fail
/// comparison: distances that fail a query's filter are never materialized
/// outside the per-chunk accumulator, which is what the windowed adaptive
/// scan wants — each query's threshold is fixed for the duration of one page
/// window, so the comparison can run inside the scoring pass. `acc` is a
/// reusable per-query accumulator and `out` a reusable hit buffer (both
/// cleared/resized here), so steady-state scans allocate nothing.
///
/// Hits are chunk-major: ascending slot, queries in input order within a
/// slot (see [`FusedHit`]).
///
/// # Panics
///
/// Panics if `chunk_bytes` is zero, any query is not exactly `chunk_bytes`
/// long, or `thresholds.len() != queries.len()`.
pub fn fused_hamming_filter_into(
    latch: &[u8],
    chunk_bytes: usize,
    slot_limit: usize,
    queries: &[&[u8]],
    thresholds: &[u32],
    acc: &mut Vec<u32>,
    out: &mut Vec<FusedHit>,
) {
    assert!(chunk_bytes > 0, "chunk size must be non-zero");
    assert_eq!(
        queries.len(),
        thresholds.len(),
        "one threshold per fused query"
    );
    for query in queries {
        assert_eq!(
            query.len(),
            chunk_bytes,
            "fused queries must match the chunk size"
        );
    }
    out.clear();
    if queries.is_empty() {
        return;
    }
    acc.clear();
    acc.resize(queries.len(), 0);
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("popcnt") {
        // SAFETY: feature presence checked at runtime just above.
        unsafe {
            fused_filter_popcnt(
                latch,
                chunk_bytes,
                slot_limit,
                queries,
                thresholds,
                acc,
                out,
            )
        };
        return;
    }
    fused_filter_core(
        latch,
        chunk_bytes,
        slot_limit,
        queries,
        thresholds,
        acc,
        out,
    );
}

/// Reflected form of the Castagnoli polynomial `0x1EDC6F41`.
const CRC32C_POLY_REFLECTED: u32 = 0x82F6_3B78;

/// The byte-at-a-time CRC32C lookup table, built at compile time.
const CRC32C_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32C_POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Fold `bytes` into a running CRC32C state.
///
/// The state is the *finalized* checksum of everything folded so far:
/// `crc32c_extend(crc32c(a), b) == crc32c(a ++ b)`, and the empty-input
/// checksum `0` is the identity state. This is what the WAL reader uses to
/// checksum a frame it consumes in pieces.
#[inline]
pub fn crc32c_extend(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = !state;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// CRC32C (Castagnoli) checksum of `bytes`.
///
/// Standard parameters: initial state `0xFFFF_FFFF`, reflected input and
/// output, final XOR `0xFFFF_FFFF` — the known-answer vector
/// `crc32c(b"123456789") == 0xE306_9283` holds.
#[inline]
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_extend(0, bytes)
}

pub mod reference {
    //! Byte-at-a-time reference kernels matching the seed implementation.
    //!
    //! Kept as the single baseline the criterion `kernels` bench and the
    //! figure binaries measure the u64-word kernels against, so reported
    //! speedups always refer to the same code. Never used on a hot path.

    /// Byte-wise XOR (the seed's `XorLogic::xor`).
    pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
        a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect()
    }

    /// Byte-wise per-chunk popcount (the seed's
    /// `FailBitCounter::count_per_chunk`).
    pub fn count_per_chunk(latch: &[u8], chunk_bytes: usize) -> Vec<u32> {
        latch
            .chunks(chunk_bytes)
            .map(|c| c.iter().map(|b| b.count_ones()).sum())
            .collect()
    }

    /// Byte-wise Hamming distance (the seed's
    /// `BinaryVector::hamming_distance`).
    pub fn hamming(a: &[u8], b: &[u8]) -> u32 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum()
    }

    /// Bitwise CRC32C: one shift-and-conditional-XOR step per input bit,
    /// straight off the polynomial definition. The baseline the table-driven
    /// [`crate::crc32c`] is tested against.
    pub fn crc32c(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ super::CRC32C_POLY_REFLECTED
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, mul: usize, add: usize) -> Vec<u8> {
        (0..len).map(|i| (i * mul + add) as u8).collect()
    }

    #[test]
    fn word_kernels_match_bytewise_reference_on_odd_tails() {
        for len in [1usize, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 255] {
            let a = pattern(len, 37, 11);
            let b = pattern(len, 101, 3);
            let ref_pop: u64 = a.iter().map(|v| v.count_ones() as u64).sum();
            assert_eq!(popcount_bytes(&a), ref_pop, "len {len}");
            assert_eq!(
                hamming_bytes(&a, &b),
                reference::hamming(&a, &b),
                "len {len}"
            );
            let mut xored = Vec::new();
            xor_bytes_into(&a, &b, &mut xored);
            assert_eq!(xored, reference::xor(&a, &b), "len {len}");
            for chunk in [1usize, 3, 8, 13, 32] {
                let mut got = Vec::new();
                count_per_chunk_into(&a, chunk, &mut got);
                assert_eq!(
                    got,
                    reference::count_per_chunk(&a, chunk),
                    "len {len} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn fused_kernel_matches_per_query_xor_popcount() {
        for page_len in [24usize, 64, 65, 100, 256] {
            for chunk in [8usize, 13, 16, 32] {
                let page = pattern(page_len, 29, 7);
                let queries: Vec<Vec<u8>> = (0..4).map(|q| pattern(chunk, 17 + q, q)).collect();
                let query_refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
                let mut fused = Vec::new();
                fused_hamming_per_chunk_into(&page, chunk, &query_refs, &mut fused);
                let n_chunks = page_len.div_ceil(chunk);
                assert_eq!(fused.len(), n_chunks * queries.len());
                for (q, query) in queries.iter().enumerate() {
                    // Tile the query across the page (restarting at every
                    // chunk boundary, like a broadcast into the cache latch),
                    // XOR, count per chunk — the single-query flow.
                    let tiled: Vec<u8> = (0..page_len).map(|i| query[i % chunk]).collect();
                    let mut xored = Vec::new();
                    xor_bytes_into(&page, &tiled, &mut xored);
                    let expected = reference::count_per_chunk(&xored, chunk);
                    assert_eq!(
                        &fused[q * n_chunks..(q + 1) * n_chunks],
                        &expected[..],
                        "page {page_len} chunk {chunk} query {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_kernel_with_no_queries_clears_output() {
        let mut out = vec![7u32; 5];
        fused_hamming_per_chunk_into(&[1, 2, 3, 4], 2, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn fused_kernel_handles_one_query_like_the_single_kernel() {
        let page = pattern(128, 41, 5);
        let query = pattern(16, 9, 2);
        let mut fused = Vec::new();
        fused_hamming_per_chunk_into(&page, 16, &[&query], &mut fused);
        for (c, chunk) in page.chunks(16).enumerate() {
            assert_eq!(fused[c], hamming_bytes(chunk, &query), "chunk {c}");
        }
    }

    #[test]
    fn fused_filter_matches_count_then_filter() {
        for page_len in [24usize, 64, 65, 100, 256] {
            for chunk in [8usize, 13, 16, 32] {
                let page = pattern(page_len, 29, 7);
                let queries: Vec<Vec<u8>> = (0..4).map(|q| pattern(chunk, 17 + q, q)).collect();
                let query_refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
                // Distinct per-query thresholds straddling the typical
                // distance range.
                let thresholds: Vec<u32> = (0..4).map(|q| (chunk as u32) * (2 + q)).collect();
                let n_chunks = page_len.div_ceil(chunk);
                for slot_limit in [0usize, 1, n_chunks / 2, n_chunks, n_chunks + 3] {
                    let mut acc = Vec::new();
                    let mut hits = Vec::new();
                    fused_hamming_filter_into(
                        &page,
                        chunk,
                        slot_limit,
                        &query_refs,
                        &thresholds,
                        &mut acc,
                        &mut hits,
                    );
                    // Reference: the unfused count kernel followed by an
                    // explicit threshold pass, reordered chunk-major.
                    let mut counts = Vec::new();
                    fused_hamming_per_chunk_into(&page, chunk, &query_refs, &mut counts);
                    let mut expected = Vec::new();
                    for slot in 0..n_chunks.min(slot_limit) {
                        for (q, &threshold) in thresholds.iter().enumerate() {
                            let distance = counts[q * n_chunks + slot];
                            if distance <= threshold {
                                expected.push(FusedHit {
                                    query: q as u32,
                                    slot: slot as u32,
                                    distance,
                                });
                            }
                        }
                    }
                    assert_eq!(
                        hits, expected,
                        "page {page_len} chunk {chunk} limit {slot_limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_filter_emits_chunk_major_and_respects_thresholds() {
        // Page of two chunks; query 0 matches chunk 0 exactly, query 1
        // matches chunk 1 exactly. With a threshold of 0 each query passes
        // only its own chunk, in slot order.
        let page = [0xAAu8, 0x55, 0x0F, 0xF0];
        let q0 = [0xAAu8, 0x55];
        let q1 = [0x0Fu8, 0xF0];
        let mut acc = Vec::new();
        let mut hits = Vec::new();
        fused_hamming_filter_into(&page, 2, 2, &[&q0, &q1], &[0, 0], &mut acc, &mut hits);
        assert_eq!(
            hits,
            vec![
                FusedHit {
                    query: 0,
                    slot: 0,
                    distance: 0
                },
                FusedHit {
                    query: 1,
                    slot: 1,
                    distance: 0
                },
            ]
        );
        // No queries: the hit buffer is cleared.
        let mut stale = vec![FusedHit {
            query: 9,
            slot: 9,
            distance: 9,
        }];
        fused_hamming_filter_into(&page, 2, 2, &[], &[], &mut acc, &mut stale);
        assert!(stale.is_empty());
    }

    #[test]
    #[should_panic(expected = "one threshold per fused query")]
    fn fused_filter_rejects_threshold_mismatch() {
        let query = [0u8; 2];
        fused_hamming_filter_into(
            &[1, 2],
            2,
            1,
            &[&query],
            &[],
            &mut Vec::new(),
            &mut Vec::new(),
        );
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn fused_kernel_rejects_zero_chunks() {
        fused_hamming_per_chunk_into(&[1, 2], 0, &[], &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "must match the chunk size")]
    fn fused_kernel_rejects_mis_sized_queries() {
        let query = [1u8, 2, 3];
        fused_hamming_per_chunk_into(&[1, 2, 3, 4], 2, &[&query], &mut Vec::new());
    }

    #[test]
    fn crc32c_known_answers() {
        // The canonical check vector (RFC 3720 appendix B.4 parameters).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        // Empty input is the identity state.
        assert_eq!(crc32c(b""), 0);
        // 32 zero bytes (an iSCSI test vector).
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 0xFF bytes.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // Ascending 0..=31.
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn crc32c_matches_bitwise_reference_and_extends() {
        for len in [0usize, 1, 2, 7, 8, 9, 63, 64, 65, 255, 1024] {
            let data = pattern(len, 37, 11);
            assert_eq!(crc32c(&data), reference::crc32c(&data), "len {len}");
            // Folding the same bytes in two pieces at every split point
            // gives the same checksum as one pass.
            for split in [0, len / 3, len / 2, len] {
                let state = crc32c(&data[..split]);
                assert_eq!(
                    crc32c_extend(state, &data[split..]),
                    crc32c(&data),
                    "len {len} split {split}"
                );
            }
        }
    }

    #[test]
    fn crc32c_detects_single_byte_corruption() {
        let data = pattern(256, 41, 5);
        let clean = crc32c(&data);
        for offset in [0usize, 1, 100, 255] {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupted = data.clone();
                corrupted[offset] ^= flip;
                assert_ne!(
                    crc32c(&corrupted),
                    clean,
                    "flip {flip:#x} at {offset} must change the checksum"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "identical sizes")]
    fn xor_rejects_length_mismatch() {
        xor_bytes_into(&[1, 2], &[1, 2, 3], &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_rejects_length_mismatch() {
        hamming_bytes(&[1, 2], &[1]);
    }
}
