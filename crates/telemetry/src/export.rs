//! Exporters: Prometheus text format and a JSON snapshot.
//!
//! Both walk the registry off the hot path. The JSON snapshot is the
//! machine-readable form embedded in benchmark artifacts and validated
//! by `reis_bench::artifacts` (every number is emitted as a plain JSON
//! number, every name as a string — no custom types).

use std::fmt::Write as _;

use crate::registry::{CounterId, GaugeId, HistogramId, Registry, HISTOGRAM_BUCKETS};

/// Render the registry in the Prometheus text exposition format.
///
/// Histograms are rendered with cumulative `_bucket{le="..."}` series
/// up to the highest non-empty bucket, then `le="+Inf"`, `_sum` and
/// `_count`, matching what a Prometheus scraper expects.
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for id in CounterId::ALL {
        let value = registry.counter(id);
        let name = id.name();
        let _ = writeln!(out, "# HELP {name} {}", id.help());
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for id in GaugeId::ALL {
        let value = registry.gauge(id);
        let name = id.name();
        let _ = writeln!(out, "# HELP {name} {}", id.help());
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for id in HistogramId::ALL {
        let snap = registry.histogram(id);
        let name = id.name();
        let _ = writeln!(out, "# HELP {name} {}", id.help());
        let _ = writeln!(out, "# TYPE {name} histogram");
        let highest = (0..HISTOGRAM_BUCKETS)
            .rev()
            .find(|&i| snap.buckets[i] != 0)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &in_bucket) in snap.buckets.iter().enumerate().take(highest + 1) {
            cumulative += in_bucket;
            // Bucket i covers [2^(i-1), 2^i); integer samples in buckets
            // 0..=i are therefore all <= 2^i - 1 < 2^i.
            let le = if i >= 64 { u64::MAX } else { 1u64 << i };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{name}_sum {}", snap.sum);
        let _ = writeln!(out, "{name}_count {}", snap.count);
    }
    out
}

/// Render the registry as a JSON object:
///
/// ```json
/// {
///   "counters": { "reis_queries_total": 42, ... },
///   "gauges": { "reis_tombstones": 0, ... },
///   "histograms": {
///     "reis_query_wall_ns": { "count": 9, "sum": 1234,
///                             "mean": 137.1, "p50": 120.0,
///                             "p95": 300.0, "p99": 310.0 },
///     ...
///   }
/// }
/// ```
///
/// Quantiles are the log2-bucket approximations of
/// [`crate::HistogramSnapshot::quantile`].
pub fn json_snapshot(registry: &Registry) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, id) in CounterId::ALL.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {}",
            id.name(),
            registry.counter(*id)
        );
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, id) in GaugeId::ALL.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {}", id.name(), registry.gauge(*id));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, id) in HistogramId::ALL.iter().enumerate() {
        let snap = registry.histogram(*id);
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{ \"count\": {}, \"sum\": {}, \"mean\": {:.1}, \
             \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1} }}",
            id.name(),
            snap.count,
            snap.sum,
            snap.mean(),
            snap.quantile(0.50),
            snap.quantile(0.95),
            snap.quantile(0.99),
        );
    }
    out.push_str("\n  }\n}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CounterId, HistogramId, Registry};

    #[test]
    fn prometheus_text_has_the_expected_series() {
        let registry = Registry::new();
        registry.count(CounterId::Queries, 5);
        registry.observe(HistogramId::QueryWallNs, 1000);
        registry.observe(HistogramId::QueryWallNs, 3);
        let text = prometheus(&registry);
        assert!(text.contains("# TYPE reis_queries_total counter"));
        assert!(text.contains("\nreis_queries_total 5\n"));
        assert!(text.contains("# TYPE reis_query_wall_ns histogram"));
        // Cumulative buckets: the le="1024" bucket covers both samples.
        assert!(text.contains("reis_query_wall_ns_bucket{le=\"1024\"} 2"));
        assert!(text.contains("reis_query_wall_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("reis_query_wall_ns_sum 1003"));
        assert!(text.contains("reis_query_wall_ns_count 2"));
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let registry = Registry::new();
        registry.count(CounterId::FineEntries, 77);
        registry.observe(HistogramId::FanoutNs, 2048);
        let json = json_snapshot(&registry);
        assert!(json.contains("\"reis_fine_entries_total\": 77"));
        assert!(json.contains("\"reis_fanout_ns\": { \"count\": 1"));
        // Braces and quotes balance (cheap well-formedness check; the
        // real parser check lives in reis-bench's artifact validator).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('"').count() % 2, 0, "unbalanced quotes");
    }
}
