//! Per-query trace spans and the on-demand per-page explain trace.
//!
//! Traces are recorded once per query *after* the engine has finished —
//! never from inside a scan loop — so they cannot perturb execution.
//! Both stores are bounded rings: a long-running server keeps the most
//! recent traces and drops the oldest.

use std::collections::VecDeque;

/// How many query traces the ring keeps before dropping the oldest.
pub const TRACE_RING_CAPACITY: usize = 64;

/// How many explain traces the ring keeps before dropping the oldest.
pub const EXPLAIN_RING_CAPACITY: usize = 4;

/// One stage of a query's lifecycle, with both clocks.
///
/// `wall_ns` is host wall-clock time actually spent in the stage;
/// `modelled_ns` is the [`PerfModel`]'s device-time estimate for the
/// same stage (zero where no model term exists, e.g. aggregator-side
/// merging).
///
/// [`PerfModel`]: https://docs.rs/reis-core
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Static stage label (`"coarse_scan"`, `"fine_scan"`, `"rerank"`,
    /// `"doc_fetch"`, `"merge"`, `"leaf"` …).
    pub stage: &'static str,
    /// Disambiguator for repeated stages (leaf index of a `"leaf"`
    /// span, window index of a `"window"` span); 0 elsewhere.
    pub index: u32,
    /// Wall-clock nanoseconds spent in the stage.
    pub wall_ns: u64,
    /// Modelled device nanoseconds for the stage.
    pub modelled_ns: u64,
}

/// The full lifecycle trace of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// Monotonic trace sequence number (per telemetry handle).
    pub sequence: u64,
    /// What produced the trace (`"search"`, `"batch"`, `"fused_batch"`,
    /// `"cluster_search"` …).
    pub kind: &'static str,
    /// Stage spans in execution order.
    pub spans: Vec<Span>,
}

impl QueryTrace {
    /// Total wall-clock nanoseconds across all spans.
    pub fn wall_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.wall_ns).sum()
    }

    /// Total modelled nanoseconds across all spans.
    pub fn modelled_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.modelled_ns).sum()
    }
}

/// One fine-scan page observation of an explain trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplainEvent {
    /// Position of the page in the query's deterministic page order.
    pub page: u32,
    /// The adaptive window the page was scanned under (0 for static
    /// scans).
    pub window: u32,
    /// Embedding slots scanned on the page.
    pub slots: u32,
    /// Entries that passed the distance filter on the page.
    pub passed: u32,
}

/// The per-page scan trace of one query, captured on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainTrace {
    /// The trace sequence number it was captured under.
    pub sequence: u64,
    /// Per-page events in deterministic page order.
    pub events: Vec<ExplainEvent>,
}

impl ExplainTrace {
    /// Total entries passed across all pages.
    pub fn total_passed(&self) -> u64 {
        self.events.iter().map(|e| e.passed as u64).sum()
    }
}

/// A bounded FIFO ring of trace records.
#[derive(Debug)]
pub struct Ring<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Ring<T> {
    /// An empty ring holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Ring {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Append, dropping the oldest record when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back(item);
    }

    /// Records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The most recent record.
    pub fn last(&self) -> Option<&T> {
        self.items.back()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drop every record.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_at_capacity() {
        let mut ring = Ring::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.last(), Some(&4));
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn trace_totals_sum_spans() {
        let trace = QueryTrace {
            sequence: 7,
            kind: "search",
            spans: vec![
                Span {
                    stage: "coarse_scan",
                    index: 0,
                    wall_ns: 10,
                    modelled_ns: 100,
                },
                Span {
                    stage: "fine_scan",
                    index: 0,
                    wall_ns: 32,
                    modelled_ns: 900,
                },
            ],
        };
        assert_eq!(trace.wall_ns(), 42);
        assert_eq!(trace.modelled_ns(), 1000);
        let explain = ExplainTrace {
            sequence: 7,
            events: vec![
                ExplainEvent {
                    page: 0,
                    window: 0,
                    slots: 64,
                    passed: 3,
                },
                ExplainEvent {
                    page: 1,
                    window: 0,
                    slots: 64,
                    passed: 2,
                },
            ],
        };
        assert_eq!(explain.total_passed(), 5);
    }
}
