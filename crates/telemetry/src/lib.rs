//! # reis-telemetry — observability for the REIS serving stack
//!
//! An allocation-free metric registry, per-query trace spans and
//! exporters, shared by every layer of the workspace (`reis-core`'s
//! engine and mutation paths, `reis-persist`'s durable store,
//! `reis-cluster`'s aggregator, and the benches).
//!
//! ## Design constraints
//!
//! * **Static keys.** Every metric is an enum variant
//!   ([`CounterId`], [`GaugeId`], [`HistogramId`]) indexing a fixed
//!   array of atomics — the hot path never hashes a string and never
//!   allocates.
//! * **Zero overhead when disabled.** A [`Telemetry`] handle wraps
//!   `Option<Arc<…>>`; every recording call starts with one branch on
//!   that option and compiles to nothing more when the handle is
//!   disabled (the default).
//! * **Provably non-perturbing when enabled.** Recording only *reads*
//!   values the engine already computed (`ScanCounts`, `FlashStats`,
//!   `LatencyBreakdown`) and happens at existing merge/barrier points
//!   or after a query completes — never inside a scan loop and never
//!   feeding back into control flow. The workspace's determinism gate
//!   runs the identity property suites with `REIS_TELEMETRY=1` to
//!   enforce that results and transferred-entry accounting stay
//!   bit-identical with telemetry on and off.
//!
//! ## Example
//!
//! ```
//! use reis_telemetry::{CounterId, HistogramId, Telemetry};
//!
//! let telemetry = Telemetry::enabled();
//! telemetry.count(CounterId::Queries, 1);
//! telemetry.observe(HistogramId::QueryWallNs, 12_345);
//! assert_eq!(telemetry.counter(CounterId::Queries), 1);
//! let scrape = telemetry.prometheus();
//! assert!(scrape.contains("reis_queries_total 1"));
//!
//! // Disabled handles record nothing and cost one branch per call.
//! let off = Telemetry::disabled();
//! off.count(CounterId::Queries, 1);
//! assert_eq!(off.counter(CounterId::Queries), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod export;
mod registry;
mod trace;

pub use registry::{
    bucket_index, CounterId, GaugeId, Histogram, HistogramId, HistogramSnapshot, Registry,
    HISTOGRAM_BUCKETS,
};
pub use trace::{
    ExplainEvent, ExplainTrace, QueryTrace, Ring, Span, EXPLAIN_RING_CAPACITY, TRACE_RING_CAPACITY,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The environment variable that enables telemetry at construction
/// sites honouring [`Telemetry::from_env`] (`REIS_TELEMETRY=1`).
pub const TELEMETRY_ENV: &str = "REIS_TELEMETRY";

#[derive(Debug)]
struct Inner {
    registry: Registry,
    traces: Mutex<Ring<QueryTrace>>,
    explains: Mutex<Ring<ExplainTrace>>,
    explain_armed: AtomicBool,
    next_sequence: AtomicU64,
}

/// The shared telemetry handle threaded through a system.
///
/// Cloning is cheap (an `Option<Arc>` copy); every clone records into
/// the same registry. The default handle is disabled.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A disabled handle: every recording call is a no-op after one
    /// branch, every read returns zero/empty.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A fresh enabled handle with an all-zero registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::new(),
                traces: Mutex::new(Ring::new(TRACE_RING_CAPACITY)),
                explains: Mutex::new(Ring::new(EXPLAIN_RING_CAPACITY)),
                explain_armed: AtomicBool::new(false),
                next_sequence: AtomicU64::new(0),
            })),
        }
    }

    /// Enabled iff the `REIS_TELEMETRY` environment variable is `1`
    /// (the knob the CI determinism gate flips), disabled otherwise.
    pub fn from_env() -> Self {
        if std::env::var(TELEMETRY_ENV).is_ok_and(|v| v == "1") {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    // ---- recording (all no-ops when disabled) --------------------------

    /// Add `by` to a counter.
    #[inline]
    pub fn count(&self, id: CounterId, by: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.count(id, by);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(id, value);
        }
    }

    /// Record one histogram sample.
    #[inline]
    pub fn observe(&self, id: HistogramId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(id, value);
        }
    }

    /// Claim the next trace sequence number (0 when disabled).
    pub fn next_sequence(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.next_sequence.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Push a completed query trace into the bounded ring.
    pub fn record_trace(&self, trace: QueryTrace) {
        if let Some(inner) = &self.inner {
            inner.traces.lock().expect("trace ring lock").push(trace);
        }
    }

    // ---- explain mode --------------------------------------------------

    /// Arm explain mode: the next single query captures its per-page
    /// scan trace. No-op when disabled.
    pub fn arm_explain(&self) {
        if let Some(inner) = &self.inner {
            inner.explain_armed.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the next query should capture an explain trace.
    #[inline]
    pub fn explain_armed(&self) -> bool {
        match &self.inner {
            Some(inner) => inner.explain_armed.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Deposit a captured explain trace and disarm.
    pub fn record_explain(&self, trace: ExplainTrace) {
        if let Some(inner) = &self.inner {
            inner.explain_armed.store(false, Ordering::Relaxed);
            inner
                .explains
                .lock()
                .expect("explain ring lock")
                .push(trace);
        }
    }

    /// The most recent explain trace, if any was captured.
    pub fn last_explain(&self) -> Option<ExplainTrace> {
        self.inner.as_ref().and_then(|inner| {
            inner
                .explains
                .lock()
                .expect("explain ring lock")
                .last()
                .cloned()
        })
    }

    // ---- reading -------------------------------------------------------

    /// Read a counter (0 when disabled).
    pub fn counter(&self, id: CounterId) -> u64 {
        match &self.inner {
            Some(inner) => inner.registry.counter(id),
            None => 0,
        }
    }

    /// Read a gauge (0 when disabled).
    pub fn gauge(&self, id: GaugeId) -> u64 {
        match &self.inner {
            Some(inner) => inner.registry.gauge(id),
            None => 0,
        }
    }

    /// Snapshot a histogram (empty when disabled).
    pub fn histogram(&self, id: HistogramId) -> HistogramSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.histogram(id),
            None => HistogramSnapshot {
                buckets: [0; HISTOGRAM_BUCKETS],
                count: 0,
                sum: 0,
            },
        }
    }

    /// The recorded query traces, oldest first (empty when disabled).
    pub fn traces(&self) -> Vec<QueryTrace> {
        match &self.inner {
            Some(inner) => inner
                .traces
                .lock()
                .expect("trace ring lock")
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// The most recent query trace.
    pub fn last_trace(&self) -> Option<QueryTrace> {
        self.inner.as_ref().and_then(|inner| {
            inner
                .traces
                .lock()
                .expect("trace ring lock")
                .last()
                .cloned()
        })
    }

    /// Zero every metric and drop every trace. Intended for interval
    /// measurements in benches, not for the serving path.
    pub fn reset(&self) {
        if let Some(inner) = &self.inner {
            inner.registry.reset();
            inner.traces.lock().expect("trace ring lock").clear();
            inner.explains.lock().expect("explain ring lock").clear();
            inner.explain_armed.store(false, Ordering::Relaxed);
        }
    }

    // ---- exporters -----------------------------------------------------

    /// The Prometheus text-format scrape of the registry (empty string
    /// when disabled).
    pub fn prometheus(&self) -> String {
        match &self.inner {
            Some(inner) => export::prometheus(&inner.registry),
            None => String::new(),
        }
    }

    /// The JSON snapshot of the registry (`"{}"` when disabled). The
    /// schema is documented in `docs/BENCHMARKS.md` and validated by
    /// `reis_bench::artifacts`.
    pub fn json_snapshot(&self) -> String {
        match &self.inner {
            Some(inner) => export::json_snapshot(&inner.registry),
            None => String::from("{}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_and_reads_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.count(CounterId::Queries, 10);
        t.observe(HistogramId::QueryWallNs, 10);
        t.gauge_set(GaugeId::Tombstones, 10);
        t.record_trace(QueryTrace {
            sequence: 0,
            kind: "search",
            spans: vec![],
        });
        t.arm_explain();
        assert!(!t.explain_armed());
        assert_eq!(t.counter(CounterId::Queries), 0);
        assert_eq!(t.gauge(GaugeId::Tombstones), 0);
        assert_eq!(t.histogram(HistogramId::QueryWallNs).count, 0);
        assert!(t.traces().is_empty());
        assert!(t.last_trace().is_none());
        assert!(t.last_explain().is_none());
        assert_eq!(t.prometheus(), "");
        assert_eq!(t.json_snapshot(), "{}");
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::enabled();
        let clone = t.clone();
        clone.count(CounterId::LeafRequests, 4);
        t.count(CounterId::LeafRequests, 1);
        assert_eq!(t.counter(CounterId::LeafRequests), 5);
        assert_eq!(clone.counter(CounterId::LeafRequests), 5);
        assert_eq!(t.next_sequence(), 0);
        assert_eq!(clone.next_sequence(), 1);
    }

    #[test]
    fn explain_arm_capture_disarm_cycle() {
        let t = Telemetry::enabled();
        t.arm_explain();
        assert!(t.explain_armed());
        t.record_explain(ExplainTrace {
            sequence: 3,
            events: vec![ExplainEvent {
                page: 0,
                window: 0,
                slots: 8,
                passed: 2,
            }],
        });
        assert!(!t.explain_armed());
        let explain = t.last_explain().expect("captured");
        assert_eq!(explain.sequence, 3);
        assert_eq!(explain.total_passed(), 2);
        t.reset();
        assert!(t.last_explain().is_none());
    }

    #[test]
    fn trace_ring_is_bounded() {
        let t = Telemetry::enabled();
        for _ in 0..(TRACE_RING_CAPACITY + 10) {
            let sequence = t.next_sequence();
            t.record_trace(QueryTrace {
                sequence,
                kind: "search",
                spans: vec![Span {
                    stage: "fine_scan",
                    index: 0,
                    wall_ns: 1,
                    modelled_ns: 2,
                }],
            });
        }
        let traces = t.traces();
        assert_eq!(traces.len(), TRACE_RING_CAPACITY);
        assert_eq!(
            t.last_trace().unwrap().sequence,
            traces.last().unwrap().sequence
        );
        assert_eq!(
            traces.last().unwrap().sequence as usize,
            TRACE_RING_CAPACITY + 9
        );
    }
}
