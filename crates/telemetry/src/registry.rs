//! The static-key metric registry.
//!
//! Every metric the serving stack records is declared here as an enum
//! variant — a *static key*. Recording a sample indexes a fixed array of
//! atomics by `id as usize`; the hot path never hashes a string, never
//! allocates, and never takes a lock. The name/help strings exist only
//! for the exporters, which run off the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in a [`Histogram`]: one per power of two of a `u64`
/// sample (bucket 0 holds exact zeros), so any nanosecond latency or
/// entry count lands without configuration.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonic event counters.
///
/// The `#[repr(usize)]` discriminants index the registry's counter
/// array directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterId {
    /// Single queries executed (`ReisSystem::search` and the per-query
    /// legs of replica batches; fused batch members count here too).
    Queries,
    /// Batched search calls.
    Batches,
    /// Batches that took the page-major fused path.
    FusedBatches,
    /// Coarse (centroid) pages scanned.
    CoarsePages,
    /// Fine-scan pages scanned.
    FinePages,
    /// Fine-scan entries transferred to the controller (the distance
    /// filter's survivors — `ScanCounts::entries_passed`).
    FineEntries,
    /// Adaptive fine-scan windows retired (barrier crossings).
    FineWindows,
    /// Entries attributed to individual scan windows at their barriers.
    /// Invariant: equals [`CounterId::FineEntries`] in every execution
    /// mode (the telemetry property suite enforces it).
    WindowEntries,
    /// NAND page senses (reads) attributed to query execution, measured
    /// as `FlashStats::page_reads` deltas around each query.
    FlashSenses,
    /// Candidates submitted to INT8 reranking.
    RerankCandidates,
    /// Documents fetched for final results.
    DocumentsFetched,
    /// Entries inserted by mutations.
    Inserts,
    /// Entries deleted (tombstoned) by mutations.
    Deletes,
    /// Entries upserted by mutations.
    Upserts,
    /// Compaction passes completed.
    Compactions,
    /// Pages rewritten by compaction.
    CompactionPagesRewritten,
    /// Blocks reclaimed (erased) by compaction.
    CompactionBlocksReclaimed,
    /// WAL frames appended.
    WalAppends,
    /// Bytes appended (and flushed) to the WAL.
    WalAppendBytes,
    /// Snapshots written.
    SnapshotWrites,
    /// Bytes written to snapshots.
    SnapshotBytes,
    /// Recoveries performed (`ReisSystem::recover`).
    Recoveries,
    /// WAL records replayed during recovery.
    WalRecordsReplayed,
    /// Torn WAL tails quarantined during recovery.
    WalQuarantines,
    /// Queries served by a cluster aggregator.
    ClusterQueries,
    /// Leaf requests fanned out by the aggregator (one per leaf per
    /// query). Invariant: equals the sum of the leaves' own
    /// [`CounterId::Queries`] counters.
    LeafRequests,
    /// Hedge requests launched against straggling leaves.
    HedgesLaunched,
    /// Leaf query attempts retried after a transient fault (each retry
    /// issuance past a replica's first attempt counts once).
    LeafRetries,
    /// Replicas passed over while serving a shard: already-down replicas
    /// skipped plus replicas abandoned after exhausting their retries.
    LeafFailovers,
    /// Cluster queries answered with partial shard coverage (at least one
    /// shard had no live replica).
    DegradedQueries,
    /// Corrupt snapshots found by a durable-store scrub.
    ScrubCorruptSnapshots,
    /// WAL files a scrub found with a torn or corrupt (quarantinable) tail.
    ScrubQuarantinedWals,
    /// Requests accepted by an async pipeline's submission queues.
    PipelineRequests,
    /// Requests shed by pipeline backpressure (`ReisError::Overloaded`).
    PipelineShed,
}

impl CounterId {
    /// Every counter, in registry order.
    pub const ALL: [CounterId; 34] = [
        CounterId::Queries,
        CounterId::Batches,
        CounterId::FusedBatches,
        CounterId::CoarsePages,
        CounterId::FinePages,
        CounterId::FineEntries,
        CounterId::FineWindows,
        CounterId::WindowEntries,
        CounterId::FlashSenses,
        CounterId::RerankCandidates,
        CounterId::DocumentsFetched,
        CounterId::Inserts,
        CounterId::Deletes,
        CounterId::Upserts,
        CounterId::Compactions,
        CounterId::CompactionPagesRewritten,
        CounterId::CompactionBlocksReclaimed,
        CounterId::WalAppends,
        CounterId::WalAppendBytes,
        CounterId::SnapshotWrites,
        CounterId::SnapshotBytes,
        CounterId::Recoveries,
        CounterId::WalRecordsReplayed,
        CounterId::WalQuarantines,
        CounterId::ClusterQueries,
        CounterId::LeafRequests,
        CounterId::HedgesLaunched,
        CounterId::LeafRetries,
        CounterId::LeafFailovers,
        CounterId::DegradedQueries,
        CounterId::ScrubCorruptSnapshots,
        CounterId::ScrubQuarantinedWals,
        CounterId::PipelineRequests,
        CounterId::PipelineShed,
    ];

    /// The Prometheus metric name.
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::Queries => "reis_queries_total",
            CounterId::Batches => "reis_batches_total",
            CounterId::FusedBatches => "reis_fused_batches_total",
            CounterId::CoarsePages => "reis_coarse_pages_total",
            CounterId::FinePages => "reis_fine_pages_total",
            CounterId::FineEntries => "reis_fine_entries_total",
            CounterId::FineWindows => "reis_fine_windows_total",
            CounterId::WindowEntries => "reis_window_entries_total",
            CounterId::FlashSenses => "reis_flash_senses_total",
            CounterId::RerankCandidates => "reis_rerank_candidates_total",
            CounterId::DocumentsFetched => "reis_documents_fetched_total",
            CounterId::Inserts => "reis_inserts_total",
            CounterId::Deletes => "reis_deletes_total",
            CounterId::Upserts => "reis_upserts_total",
            CounterId::Compactions => "reis_compactions_total",
            CounterId::CompactionPagesRewritten => "reis_compaction_pages_rewritten_total",
            CounterId::CompactionBlocksReclaimed => "reis_compaction_blocks_reclaimed_total",
            CounterId::WalAppends => "reis_wal_appends_total",
            CounterId::WalAppendBytes => "reis_wal_append_bytes_total",
            CounterId::SnapshotWrites => "reis_snapshot_writes_total",
            CounterId::SnapshotBytes => "reis_snapshot_bytes_total",
            CounterId::Recoveries => "reis_recoveries_total",
            CounterId::WalRecordsReplayed => "reis_wal_records_replayed_total",
            CounterId::WalQuarantines => "reis_wal_quarantines_total",
            CounterId::ClusterQueries => "reis_cluster_queries_total",
            CounterId::LeafRequests => "reis_leaf_requests_total",
            CounterId::HedgesLaunched => "reis_hedges_launched_total",
            CounterId::LeafRetries => "reis_leaf_retries_total",
            CounterId::LeafFailovers => "reis_leaf_failovers_total",
            CounterId::DegradedQueries => "reis_degraded_queries_total",
            CounterId::ScrubCorruptSnapshots => "reis_scrub_corrupt_snapshots_total",
            CounterId::ScrubQuarantinedWals => "reis_scrub_quarantined_wals_total",
            CounterId::PipelineRequests => "reis_pipeline_requests_total",
            CounterId::PipelineShed => "reis_pipeline_shed_total",
        }
    }

    /// The Prometheus `# HELP` line.
    pub const fn help(self) -> &'static str {
        match self {
            CounterId::Queries => "Single queries executed on this system",
            CounterId::Batches => "Batched search calls",
            CounterId::FusedBatches => "Batches executed on the page-major fused path",
            CounterId::CoarsePages => "Coarse (centroid) pages scanned",
            CounterId::FinePages => "Fine-scan pages scanned",
            CounterId::FineEntries => "Fine-scan entries transferred to the controller",
            CounterId::FineWindows => "Adaptive fine-scan windows retired",
            CounterId::WindowEntries => "Entries attributed to scan windows at barriers",
            CounterId::FlashSenses => "NAND page senses attributed to query execution",
            CounterId::RerankCandidates => "Candidates submitted to INT8 reranking",
            CounterId::DocumentsFetched => "Documents fetched for final results",
            CounterId::Inserts => "Entries inserted",
            CounterId::Deletes => "Entries deleted (tombstoned)",
            CounterId::Upserts => "Entries upserted",
            CounterId::Compactions => "Compaction passes completed",
            CounterId::CompactionPagesRewritten => "Pages rewritten by compaction",
            CounterId::CompactionBlocksReclaimed => "Blocks reclaimed by compaction",
            CounterId::WalAppends => "WAL frames appended",
            CounterId::WalAppendBytes => "Bytes appended to the WAL",
            CounterId::SnapshotWrites => "Snapshots written",
            CounterId::SnapshotBytes => "Bytes written to snapshots",
            CounterId::Recoveries => "Recoveries performed",
            CounterId::WalRecordsReplayed => "WAL records replayed during recovery",
            CounterId::WalQuarantines => "Torn WAL tails quarantined during recovery",
            CounterId::ClusterQueries => "Queries served by the cluster aggregator",
            CounterId::LeafRequests => "Leaf requests fanned out by the aggregator",
            CounterId::HedgesLaunched => "Hedge requests launched against stragglers",
            CounterId::LeafRetries => "Leaf query attempts retried after a transient fault",
            CounterId::LeafFailovers => "Replicas passed over while serving a shard",
            CounterId::DegradedQueries => "Cluster queries answered with partial shard coverage",
            CounterId::ScrubCorruptSnapshots => "Corrupt snapshots found by a scrub",
            CounterId::ScrubQuarantinedWals => "WAL files a scrub found with a corrupt tail",
            CounterId::PipelineRequests => "Requests accepted by an async pipeline",
            CounterId::PipelineShed => "Requests shed by pipeline backpressure",
        }
    }
}

/// Last-value gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum GaugeId {
    /// Live append-segment entries across deployed databases.
    SegmentEntries,
    /// Dead (tombstoned) entries across deployed databases.
    Tombstones,
    /// Databases currently deployed.
    DatabasesDeployed,
    /// Leaves in the cluster (aggregator only).
    ClusterLeaves,
}

impl GaugeId {
    /// Every gauge, in registry order.
    pub const ALL: [GaugeId; 4] = [
        GaugeId::SegmentEntries,
        GaugeId::Tombstones,
        GaugeId::DatabasesDeployed,
        GaugeId::ClusterLeaves,
    ];

    /// The Prometheus metric name.
    pub const fn name(self) -> &'static str {
        match self {
            GaugeId::SegmentEntries => "reis_segment_entries",
            GaugeId::Tombstones => "reis_tombstones",
            GaugeId::DatabasesDeployed => "reis_databases_deployed",
            GaugeId::ClusterLeaves => "reis_cluster_leaves",
        }
    }

    /// The Prometheus `# HELP` line.
    pub const fn help(self) -> &'static str {
        match self {
            GaugeId::SegmentEntries => "Live append-segment entries",
            GaugeId::Tombstones => "Dead (tombstoned) entries",
            GaugeId::DatabasesDeployed => "Databases currently deployed",
            GaugeId::ClusterLeaves => "Leaves in the cluster",
        }
    }
}

/// Fixed-bucket log2 histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Wall-clock per-query latency (ns).
    QueryWallNs,
    /// Modelled (`PerfModel`) per-query latency (ns).
    QueryModelledNs,
    /// Modelled coarse-scan stage time (ns).
    CoarseModelledNs,
    /// Modelled fine-scan stage time (ns).
    FineModelledNs,
    /// Modelled rerank stage time (ns).
    RerankModelledNs,
    /// Modelled document-fetch stage time (ns).
    DocFetchModelledNs,
    /// Wall-clock per-mutation latency (ns).
    MutationWallNs,
    /// Modelled per-mutation latency (ns).
    MutationModelledNs,
    /// Wall-clock compaction latency (ns).
    CompactionWallNs,
    /// Wall-clock snapshot-save latency (ns).
    SnapshotWallNs,
    /// Wall-clock recovery latency (ns).
    RecoveryWallNs,
    /// Entries transferred per adaptive scan window.
    WindowEntriesPerWindow,
    /// Modelled per-leaf completion time under the skew model (ns).
    LeafCompletionNs,
    /// Modelled per-query fan-out latency — max over leaves (ns).
    FanoutNs,
    /// Pipeline lane depth observed at each submission.
    PipelineQueueDepth,
    /// Virtual time a request waited in its lane before dispatch (ns).
    PipelineQueueWaitNs,
    /// Size of each batch the pipeline's formation handed to the executor.
    PipelineBatchSize,
}

impl HistogramId {
    /// Every histogram, in registry order.
    pub const ALL: [HistogramId; 17] = [
        HistogramId::QueryWallNs,
        HistogramId::QueryModelledNs,
        HistogramId::CoarseModelledNs,
        HistogramId::FineModelledNs,
        HistogramId::RerankModelledNs,
        HistogramId::DocFetchModelledNs,
        HistogramId::MutationWallNs,
        HistogramId::MutationModelledNs,
        HistogramId::CompactionWallNs,
        HistogramId::SnapshotWallNs,
        HistogramId::RecoveryWallNs,
        HistogramId::WindowEntriesPerWindow,
        HistogramId::LeafCompletionNs,
        HistogramId::FanoutNs,
        HistogramId::PipelineQueueDepth,
        HistogramId::PipelineQueueWaitNs,
        HistogramId::PipelineBatchSize,
    ];

    /// The Prometheus metric name.
    pub const fn name(self) -> &'static str {
        match self {
            HistogramId::QueryWallNs => "reis_query_wall_ns",
            HistogramId::QueryModelledNs => "reis_query_modelled_ns",
            HistogramId::CoarseModelledNs => "reis_coarse_modelled_ns",
            HistogramId::FineModelledNs => "reis_fine_modelled_ns",
            HistogramId::RerankModelledNs => "reis_rerank_modelled_ns",
            HistogramId::DocFetchModelledNs => "reis_doc_fetch_modelled_ns",
            HistogramId::MutationWallNs => "reis_mutation_wall_ns",
            HistogramId::MutationModelledNs => "reis_mutation_modelled_ns",
            HistogramId::CompactionWallNs => "reis_compaction_wall_ns",
            HistogramId::SnapshotWallNs => "reis_snapshot_wall_ns",
            HistogramId::RecoveryWallNs => "reis_recovery_wall_ns",
            HistogramId::WindowEntriesPerWindow => "reis_window_entries_per_window",
            HistogramId::LeafCompletionNs => "reis_leaf_completion_ns",
            HistogramId::FanoutNs => "reis_fanout_ns",
            HistogramId::PipelineQueueDepth => "reis_pipeline_queue_depth",
            HistogramId::PipelineQueueWaitNs => "reis_pipeline_queue_wait_ns",
            HistogramId::PipelineBatchSize => "reis_pipeline_batch_size",
        }
    }

    /// The Prometheus `# HELP` line.
    pub const fn help(self) -> &'static str {
        match self {
            HistogramId::QueryWallNs => "Wall-clock per-query latency in nanoseconds",
            HistogramId::QueryModelledNs => "Modelled per-query latency in nanoseconds",
            HistogramId::CoarseModelledNs => "Modelled coarse-scan stage time in nanoseconds",
            HistogramId::FineModelledNs => "Modelled fine-scan stage time in nanoseconds",
            HistogramId::RerankModelledNs => "Modelled rerank stage time in nanoseconds",
            HistogramId::DocFetchModelledNs => "Modelled document-fetch stage time in nanoseconds",
            HistogramId::MutationWallNs => "Wall-clock per-mutation latency in nanoseconds",
            HistogramId::MutationModelledNs => "Modelled per-mutation latency in nanoseconds",
            HistogramId::CompactionWallNs => "Wall-clock compaction latency in nanoseconds",
            HistogramId::SnapshotWallNs => "Wall-clock snapshot-save latency in nanoseconds",
            HistogramId::RecoveryWallNs => "Wall-clock recovery latency in nanoseconds",
            HistogramId::WindowEntriesPerWindow => "Entries transferred per adaptive scan window",
            HistogramId::LeafCompletionNs => "Modelled per-leaf completion time in nanoseconds",
            HistogramId::FanoutNs => "Modelled per-query fan-out latency in nanoseconds",
            HistogramId::PipelineQueueDepth => "Pipeline lane depth observed at each submission",
            HistogramId::PipelineQueueWaitNs => {
                "Virtual nanoseconds a request waited in its lane before dispatch"
            }
            HistogramId::PipelineBatchSize => "Formed batch size handed to the batch executor",
        }
    }
}

/// One log2 histogram: 64 power-of-two buckets plus an exact-zero
/// bucket, a sample count and a sample sum — all relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// The bucket a sample lands in: 0 for an exact zero, otherwise
/// `floor(log2(value)) + 1` (bucket `i` covers `[2^(i-1), 2^i)`).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A consistent-enough copy of one histogram's state (each atomic is
/// read independently; concurrent recording can skew count vs buckets
/// by in-flight samples, which is acceptable for monitoring output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples observed.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`), linearly interpolated
    /// inside the containing power-of-two bucket. Exact when every
    /// sample in the bucket is uniform; at worst off by the bucket
    /// width. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if cumulative + in_bucket >= target {
                if i == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (i - 1)) as f64;
                let hi = if i >= 64 {
                    u64::MAX as f64
                } else {
                    (1u64 << i) as f64
                };
                let into = (target - cumulative) as f64 / in_bucket as f64;
                return lo + (hi - lo) * into;
            }
            cumulative += in_bucket;
        }
        0.0
    }

    /// The difference `self - earlier` (for interval measurements).
    /// Saturates at zero if `earlier` has counts this snapshot lacks.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, out) in buckets.iter_mut().enumerate() {
            *out = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

/// The fixed-size registry: one atomic slot per declared metric.
///
/// Construction allocates nothing beyond the arrays themselves, and no
/// recording path allocates, locks or hashes.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; CounterId::ALL.len()],
    gauges: [AtomicU64; GaugeId::ALL.len()],
    histograms: [Histogram; HistogramId::ALL.len()],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh all-zero registry.
    pub fn new() -> Self {
        Registry {
            counters: [const { AtomicU64::new(0) }; CounterId::ALL.len()],
            gauges: [const { AtomicU64::new(0) }; GaugeId::ALL.len()],
            histograms: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Add `by` to a counter.
    #[inline]
    pub fn count(&self, id: CounterId, by: u64) {
        self.counters[id as usize].fetch_add(by, Ordering::Relaxed);
    }

    /// Read a counter.
    #[inline]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Set a gauge to its new last value.
    #[inline]
    pub fn gauge_set(&self, id: GaugeId, value: u64) {
        self.gauges[id as usize].store(value, Ordering::Relaxed);
    }

    /// Read a gauge.
    #[inline]
    pub fn gauge(&self, id: GaugeId) -> u64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// Record one histogram sample.
    #[inline]
    pub fn observe(&self, id: HistogramId, value: u64) {
        self.histograms[id as usize].observe(value);
    }

    /// Snapshot one histogram.
    pub fn histogram(&self, id: HistogramId) -> HistogramSnapshot {
        self.histograms[id as usize].snapshot()
    }

    /// Zero every metric (not meant for the hot path; interval
    /// measurements should prefer [`HistogramSnapshot::delta`]).
    pub fn reset(&self) {
        for counter in &self.counters {
            counter.store(0, Ordering::Relaxed);
        }
        for gauge in &self.gauges {
            gauge.store(0, Ordering::Relaxed);
        }
        for histogram in &self.histograms {
            histogram.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let registry = Registry::new();
        registry.count(CounterId::Queries, 3);
        registry.count(CounterId::Queries, 2);
        assert_eq!(registry.counter(CounterId::Queries), 5);
        assert_eq!(registry.counter(CounterId::Inserts), 0);

        registry.gauge_set(GaugeId::Tombstones, 17);
        registry.gauge_set(GaugeId::Tombstones, 9);
        assert_eq!(registry.gauge(GaugeId::Tombstones), 9);

        for v in [0u64, 1, 100, 100, 100, 1_000_000] {
            registry.observe(HistogramId::QueryWallNs, v);
        }
        let snap = registry.histogram(HistogramId::QueryWallNs);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1_000_301);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[bucket_index(100)], 3);

        registry.reset();
        assert_eq!(registry.counter(CounterId::Queries), 0);
        assert_eq!(registry.histogram(HistogramId::QueryWallNs).count, 0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let registry = Registry::new();
        for _ in 0..100 {
            registry.observe(HistogramId::FanoutNs, 1000);
        }
        let snap = registry.histogram(HistogramId::FanoutNs);
        // All samples share bucket [512, 1024); every quantile lies there.
        for q in [0.5, 0.95, 0.99] {
            let est = snap.quantile(q);
            assert!((512.0..1024.0).contains(&est), "q{q}: {est}");
        }
        assert_eq!(snap.quantile(0.5) as u64, snap.quantile(0.5) as u64);
        // Mixed magnitudes order correctly.
        let registry = Registry::new();
        for _ in 0..90 {
            registry.observe(HistogramId::FanoutNs, 100);
        }
        for _ in 0..10 {
            registry.observe(HistogramId::FanoutNs, 1 << 20);
        }
        let snap = registry.histogram(HistogramId::FanoutNs);
        assert!(snap.quantile(0.5) < 256.0);
        assert!(snap.quantile(0.95) >= (1 << 19) as f64);
        // Deltas subtract interval starts.
        let empty = HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        };
        assert_eq!(snap.delta(&empty), snap);
        assert_eq!(snap.delta(&snap).count, 0);
    }
}
