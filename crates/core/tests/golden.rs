//! Golden snapshot fixture: a committed byte-for-byte snapshot of a known
//! system state. Three contracts ride on it:
//!
//! * **Format stability** — today's writer must reproduce the committed
//!   bytes exactly. A diff means the on-disk format changed: bump
//!   `SNAPSHOT_VERSION`, keep a reader for the old format, and regenerate
//!   with `REIS_REGEN_FIXTURES=1 cargo test -p reis-core --test golden`.
//! * **Backward compatibility** — the committed fixture (written by the
//!   oldest build of this format) must load in the current build and
//!   answer searches identically to a freshly built copy of its state.
//! * **Corruption rejection** — any single flipped byte, and any future
//!   format version, must be rejected with a structured error, never a
//!   panic.

use std::path::PathBuf;

use reis_core::{
    CompactionPolicy, DurableStore, MemVfs, PersistError, ReisConfig, ReisError, ReisSystem,
    VectorDatabase, Vfs,
};

const DIM: usize = 24;
const ENTRIES: u32 = 20;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("snapshot-v1.bin")
}

fn vector_for(id: u32, salt: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            let x = (id as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(d as u64 * 0x85EB_CA6B)
                .wrapping_add(salt.wrapping_mul(0xC2B2_AE35));
            ((x >> 7) % 23) as f32 - 11.0
        })
        .collect()
}

fn doc_for(id: u32, version: u32) -> Vec<u8> {
    format!("golden doc {id:04} v{version} ...............").into_bytes()
}

/// The fixture recipe: deploy a small corpus, churn it a little, and
/// checkpoint. Every run of this function produces a byte-identical
/// snapshot — the serializer is offset-addressed and iterates databases
/// and sections in sorted order.
fn build_fixture_state() -> (MemVfs, u64) {
    let vectors: Vec<Vec<f32>> = (0..ENTRIES).map(|id| vector_for(id, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..ENTRIES).map(|id| doc_for(id, 0)).collect();
    let template = VectorDatabase::flat(&vectors, documents).expect("fixture database");

    let mem = MemVfs::new();
    let store = DurableStore::new(Box::new(mem.clone()));
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());
    let (mut system, _) = ReisSystem::open(config, store).expect("open");
    let db = system.deploy(&template).expect("deploy");
    for id in [100u32, 101] {
        system
            .insert(db, &vector_for(id, 1), doc_for(id, 1))
            .expect("insert");
    }
    system.delete(db, 3).expect("delete");
    system
        .upsert(db, 7, &vector_for(7, 2), &doc_for(7, 2))
        .expect("upsert");
    let seq = system.save().expect("checkpoint");
    (mem, seq)
}

fn current_snapshot_bytes() -> Vec<u8> {
    let (mem, seq) = build_fixture_state();
    mem.read_file(&DurableStore::snapshot_name(seq))
        .expect("snapshot file")
}

/// Recover a system from raw snapshot bytes planted as epoch 1 of a fresh
/// store (no WAL — recovery tolerates the missing file as an empty log).
fn recover_from_bytes(bytes: &[u8]) -> reis_core::Result<(ReisSystem, u32)> {
    let mem = MemVfs::new();
    mem.write_file(&DurableStore::snapshot_name(1), bytes)
        .expect("plant fixture");
    let store = DurableStore::new(Box::new(mem));
    let (system, report) = ReisSystem::recover(ReisConfig::tiny(), store)?;
    assert_eq!(report.snapshot_seq, 1);
    // The fixture recipe deploys exactly one database; ids start at 1.
    Ok((system, 1))
}

#[test]
fn golden_fixture_matches_current_writer() {
    let bytes = current_snapshot_bytes();
    let path = fixture_path();
    if std::env::var("REIS_REGEN_FIXTURES").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixtures dir")).expect("mkdir");
        std::fs::write(&path, &bytes).expect("write fixture");
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden fixture {} — regenerate with REIS_REGEN_FIXTURES=1",
            path.display()
        )
    });
    assert_eq!(
        committed, bytes,
        "snapshot format drifted from the committed golden fixture: if the \
         change is intentional, bump SNAPSHOT_VERSION, keep a reader for \
         the old format, and regenerate with REIS_REGEN_FIXTURES=1"
    );
    // Determinism of the writer itself (same state twice, same bytes).
    assert_eq!(bytes, current_snapshot_bytes());
}

#[test]
fn golden_fixture_loads_and_answers_searches() {
    let committed = std::fs::read(fixture_path()).expect("golden fixture present");
    let (mut old, db) = recover_from_bytes(&committed).expect("backward-compat load");

    // A freshly rebuilt copy of the same state is the reference.
    let (mem, _) = build_fixture_state();
    let store = DurableStore::new(Box::new(mem));
    let (mut fresh, _) = ReisSystem::recover(ReisConfig::tiny(), store).expect("fresh state");

    assert_eq!(
        old.database(db).expect("db").live_entries(),
        (ENTRIES + 2 - 1) as usize
    );
    for q in 0..4u32 {
        let query = vector_for(8_000 + q, 13);
        let a = old.search(db, &query, 6).expect("fixture search");
        let b = fresh.search(db, &query, 6).expect("reference search");
        assert_eq!(a.result_ids(), b.result_ids(), "query {q}");
        assert_eq!(a.documents, b.documents, "query {q}");
    }
    // The upserted document (not the original) is what the fixture holds.
    let hit = old.search(db, &vector_for(7, 2), 1).expect("upsert probe");
    assert_eq!(hit.documents[0], doc_for(7, 2));
}

#[test]
fn every_flipped_byte_is_rejected_without_panicking() {
    let committed = std::fs::read(fixture_path()).expect("golden fixture present");
    // Sweep a coprime stride so every region of the file gets hit across
    // offsets: superblock, directory, CRC words, section payloads, tail.
    let mut offset = 0usize;
    let mut flips = 0;
    while offset < committed.len() {
        let mut tampered = committed.clone();
        tampered[offset] ^= 0x40;
        let err = recover_from_bytes(&tampered).expect_err("tampered snapshot must be rejected");
        assert!(
            matches!(
                err,
                ReisError::CorruptSnapshot(_) | ReisError::Persist(_) | ReisError::CorruptWal(_)
            ),
            "byte {offset}: unexpected error shape {err:?}"
        );
        offset += 97;
        flips += 1;
    }
    assert!(flips > 10, "sweep covered the file");
    // Truncation anywhere is likewise rejected.
    for cut in [0, 7, committed.len() / 2, committed.len() - 1] {
        recover_from_bytes(&committed[..cut]).expect_err("truncated snapshot must be rejected");
    }
}

#[test]
fn future_format_versions_are_rejected_as_unsupported() {
    let committed = std::fs::read(fixture_path()).expect("golden fixture present");
    // Patch the version word (offset 8) and re-seal the superblock CRC so
    // the *version check* is what rejects the file, not the checksum.
    let mut future = committed.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    let sections = u32::from_le_bytes(future[12..16].try_into().expect("4 bytes")) as usize;
    let header_len = 16 + sections * 24;
    let crc = reis_kernels::crc32c(&future[..header_len]);
    future[header_len..header_len + 4].copy_from_slice(&crc.to_le_bytes());

    let err = recover_from_bytes(&future).expect_err("future version must be rejected");
    match &err {
        ReisError::CorruptSnapshot(inner) => assert!(
            matches!(inner, PersistError::UnsupportedVersion { .. }),
            "expected UnsupportedVersion, got {inner:?}"
        ),
        other => panic!("expected CorruptSnapshot(UnsupportedVersion), got {other:?}"),
    }
    assert!(err.to_string().contains("version"), "actionable message");
}
