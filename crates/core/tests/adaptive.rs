//! Partition invariance of the windowed adaptive distance filter.
//!
//! The adaptive threshold schedule tightens only at fixed page-count window
//! barriers of a scan's deterministic page list, so an adapting scan must
//! produce bit-identical results, documents, modelled latency/activity *and
//! transferred-entry counts* across `ScanParallelism::{pinned sequential,
//! sharded}` and `BatchFusion::Fused`, on every machine, including over
//! mutated and compacted indexes. This suite proves that with targeted
//! window-barrier edge cases plus a randomized cross-mode identity
//! property.
//!
//! # The CI determinism gate
//!
//! When `REIS_TEST_SUMMARY_DIR` is set, the property tests additionally
//! write one summary file per test — one line per generated case, carrying
//! the transferred-entry counts, barrier counts and the *physical* sense
//! count of the fused batch. CI runs this suite twice with
//! `REIS_TEST_PARALLELISM=1` and `=4` (which pins the auto-shard budget the
//! way different host core counts would) under a high `PROPTEST_CASES`
//! count and diffs the two directories: any machine-variant accounting
//! fails the gate. The identity property makes the diff *sensitive* by
//! running one leg whose shard count is the forced budget itself (with a
//! 1-page shard minimum, so the budget genuinely changes how every window
//! is partitioned): the two gate runs execute different partitionings, and
//! only true partition invariance makes their summaries byte-identical.

use std::io::Write;

use proptest::prelude::*;

use reis_core::{
    AdaptiveFiltering, CompactionPolicy, ReisConfig, ReisSystem, ScanParallelism, SearchOutcome,
    VectorDatabase,
};

fn vectors(n: usize, dim: usize, salt: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 19 + d * 7 + salt * 3) % 31) as f32 - 15.0) / 6.0)
                .collect()
        })
        .collect()
}

fn documents(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("doc {i}").into_bytes()).collect()
}

/// Full-outcome equality modulo the raw error-injection counter (the
/// device RNG's position depends on the history of TLC reads, not on how
/// the compared scan was partitioned — the same exemption the fused and
/// batch suites document).
fn assert_outcome_eq(a: &SearchOutcome, b: &SearchOutcome, ctx: &str) {
    assert_eq!(a.results, b.results, "results: {ctx}");
    assert_eq!(a.documents, b.documents, "documents: {ctx}");
    assert_eq!(a.latency, b.latency, "latency: {ctx}");
    assert_eq!(a.activity, b.activity, "activity: {ctx}");
    assert_eq!(a.energy, b.energy, "energy: {ctx}");
    let mut fa = a.flash_stats;
    let mut fb = b.flash_stats;
    fa.injected_bit_errors = 0;
    fb.injected_bit_errors = 0;
    assert_eq!(fa, fb, "flash stats: {ctx}");
}

/// Append one summary line to `<REIS_TEST_SUMMARY_DIR>/<test>.txt` (no-op
/// when the variable is unset). The first line a test writes truncates its
/// file, so a rerun starts fresh; within one test the cases run
/// sequentially, so the line order is deterministic and two runs of the
/// same suite diff cleanly.
fn record_summary(test: &str, line: &str) {
    let Some(dir) = std::env::var_os("REIS_TEST_SUMMARY_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("summary dir");
    let path = dir.join(format!("{test}.txt"));
    thread_local! {
        static STARTED: std::cell::RefCell<std::collections::HashSet<String>> =
            std::cell::RefCell::new(std::collections::HashSet::new());
    }
    let fresh = STARTED.with(|s| s.borrow_mut().insert(test.to_string()));
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .append(!fresh)
        .truncate(fresh)
        .open(&path)
        .expect("summary file");
    writeln!(file, "{line}").expect("summary write");
}

/// The parallelism modes an adaptive scan must agree across. The per-shard
/// page minimum is 1 so sharding genuinely engages on every window of the
/// small test scans (the default 16-page minimum would keep them
/// sequential — a deliberate spawn-amortization guard, not a correctness
/// one).
fn mode_configs(base: ReisConfig, shards: usize) -> [(&'static str, ReisConfig); 2] {
    [
        (
            "pinned-sequential",
            base.with_scan_parallelism(ScanParallelism::pinned_sequential()),
        ),
        (
            "sharded",
            base.with_scan_parallelism(
                ScanParallelism::sharded(shards.max(2)).with_min_pages_per_shard(1),
            ),
        ),
    ]
}

/// The forced auto-shard budget of the determinism gate
/// (`REIS_TEST_PARALLELISM`), or `fallback` when unset. The identity
/// property runs one leg at exactly this budget with a 1-page shard
/// minimum, so the two gate runs (budget 1 vs 4) execute *genuinely
/// different partitionings* of the same windowed schedule — if windowed
/// partition invariance broke, their transferred-entry summaries would
/// diverge and the gate's diff would fail.
fn forced_budget(fallback: usize) -> usize {
    std::env::var("REIS_TEST_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(fallback)
}

#[test]
fn window_larger_than_the_scan_never_tightens() {
    // A window that the whole page list fits into has no barrier, so the
    // adaptive scan is the static scan: same entries, zero windows.
    let all = vectors(150, 64, 0);
    let db = VectorDatabase::flat(&all, documents(150)).unwrap();
    let mut huge = ReisSystem::new(
        ReisConfig::tiny()
            .with_adaptive_filtering(true)
            .with_adaptive_window(100_000),
    );
    let huge_id = huge.deploy(&db).unwrap();
    let mut static_system = ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(false));
    let static_id = static_system.deploy(&db).unwrap();
    let query = &all[42];
    let a = huge.search(huge_id, query, 5).unwrap();
    let b = static_system.search(static_id, query, 5).unwrap();
    assert_eq!(a.results, b.results);
    assert_eq!(a.activity.fine_entries, b.activity.fine_entries);
    assert_eq!(a.activity.fine_windows, 0);
    assert_eq!(b.activity.fine_windows, 0);
}

#[test]
fn window_of_one_reproduces_the_per_page_schedule() {
    // Window 1 is the historical tighten-after-every-page schedule: one
    // barrier per fine page, the tightest (fewest-transfer) schedule of
    // all, still returning the exact top-k.
    let all = vectors(150, 64, 1);
    let db = VectorDatabase::flat(&all, documents(150)).unwrap();
    let mut w1 = ReisSystem::new(
        ReisConfig::tiny()
            .with_adaptive_filtering(true)
            .with_adaptive_window(1),
    );
    let w1_id = w1.deploy(&db).unwrap();
    let mut w4 = ReisSystem::new(
        ReisConfig::tiny()
            .with_adaptive_filtering(true)
            .with_adaptive_window(4),
    );
    let w4_id = w4.deploy(&db).unwrap();
    let mut static_system = ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(false));
    let static_id = static_system.deploy(&db).unwrap();

    // k = 1 keeps the candidate set small (rerank_factor x 1), so the
    // Temporal Top List fills fast enough for barriers to actually bite on
    // this small corpus.
    let query = &all[17];
    let a = w1.search(w1_id, query, 1).unwrap();
    let b = w4.search(w4_id, query, 1).unwrap();
    let c = static_system.search(static_id, query, 1).unwrap();
    assert_eq!(a.results, c.results);
    assert_eq!(b.results, c.results);
    // One barrier per fine page under window 1.
    assert_eq!(a.activity.fine_windows, a.activity.fine_pages);
    // Denser barriers can only tighten sooner: the admitted-entry counts
    // are monotone in the window size (static == no barriers at all).
    assert!(a.activity.fine_entries <= b.activity.fine_entries);
    assert!(b.activity.fine_entries <= c.activity.fine_entries);
    assert!(
        a.activity.fine_entries < c.activity.fine_entries,
        "window 1 must actually cut transfers on a multi-page scan"
    );
}

#[test]
fn segment_run_shorter_than_a_window_straddles_the_barrier() {
    // Inserts land in segment runs of a single page — shorter than the
    // 4-page window — so windows straddle the base/segment boundary and
    // run boundaries. All modes must still agree bit-identically.
    let base = ReisConfig::tiny()
        .with_adaptive_scope(AdaptiveFiltering::All)
        .with_adaptive_window(4)
        .with_compaction(CompactionPolicy::manual());
    let all = vectors(96, 64, 2);
    let db = VectorDatabase::ivf(&all, documents(96), 4).unwrap();
    let fresh = vectors(6, 64, 7);

    let mut outcomes: Vec<(String, Vec<SearchOutcome>)> = Vec::new();
    for (name, config) in mode_configs(base, 4) {
        let mut system = ReisSystem::new(config);
        let id = system.deploy(&db).unwrap();
        for (i, v) in fresh.iter().enumerate() {
            system
                .insert(id, v, format!("fresh {i}").into_bytes())
                .unwrap();
        }
        system.delete(id, 11).unwrap();
        let mut per_query: Vec<SearchOutcome> = Vec::new();
        for q in 0..3 {
            per_query.push(system.search(id, &all[q * 31], 5).unwrap());
        }
        for q in 0..3 {
            per_query.push(
                system
                    .ivf_search_with_nprobe(id, &all[q * 31], 5, 2)
                    .unwrap(),
            );
        }
        outcomes.push((name.to_string(), per_query));
    }
    let (ref_name, reference) = &outcomes[0];
    for (name, got) in &outcomes[1..] {
        for (i, (a, b)) in reference.iter().zip(got).enumerate() {
            assert_outcome_eq(a, b, &format!("{ref_name} vs {name}, query {i}"));
        }
    }
    // The run really is shorter than the window: segment pages exist and
    // at least one window barrier fired beyond the base region.
    assert!(reference[0].activity.fine_windows > 0);
}

#[test]
fn post_compaction_generation_swap_mid_window() {
    // Compaction rewrites the survivors into a new region generation whose
    // page count rarely divides the window, so the windowed schedule runs
    // against a swapped base region with a trailing partial window. Modes
    // must agree before and after the swap, and the compacted index must
    // return the same documents the dirty index did.
    let base = ReisConfig::tiny()
        .with_adaptive_scope(AdaptiveFiltering::All)
        .with_adaptive_window(3)
        .with_compaction(CompactionPolicy::manual());
    let all = vectors(96, 64, 3);
    let db = VectorDatabase::ivf(&all, documents(96), 4).unwrap();
    let fresh = vectors(5, 64, 9);

    let mut dirty: Vec<Vec<SearchOutcome>> = Vec::new();
    let mut compacted: Vec<Vec<SearchOutcome>> = Vec::new();
    for (_, config) in mode_configs(base, 3) {
        let mut system = ReisSystem::new(config);
        let id = system.deploy(&db).unwrap();
        for (i, v) in fresh.iter().enumerate() {
            system
                .insert(id, v, format!("late {i}").into_bytes())
                .unwrap();
        }
        system.delete(id, 23).unwrap();
        system.upsert(id, 40, &fresh[2], b"rewritten").unwrap();
        let queries: Vec<&Vec<f32>> = (0..3).map(|q| &all[q * 29]).collect();
        dirty.push(
            queries
                .iter()
                .map(|q| system.search(id, q, 5).unwrap())
                .collect(),
        );
        system.compact(id).unwrap();
        compacted.push(
            queries
                .iter()
                .map(|q| system.search(id, q, 5).unwrap())
                .collect(),
        );
    }
    for (i, (a, b)) in dirty[0].iter().zip(&dirty[1]).enumerate() {
        assert_outcome_eq(a, b, &format!("dirty, query {i}"));
    }
    for (i, (a, b)) in compacted[0].iter().zip(&compacted[1]).enumerate() {
        assert_outcome_eq(a, b, &format!("compacted, query {i}"));
    }
    // Compaction must not change what a query returns, only what it costs.
    for (i, (a, b)) in dirty[0].iter().zip(&compacted[0]).enumerate() {
        assert_eq!(a.results, b.results, "dirty vs compacted, query {i}");
        assert_eq!(a.documents, b.documents, "dirty vs compacted, query {i}");
    }
}

#[test]
fn fused_adaptive_batch_matches_sequential_and_amortizes_senses() {
    // The fused executor runs the same windowed schedule per query, so a
    // default-config (adaptive brute-force) batch is bit-identical per
    // query to sequential search while sensing shared pages once.
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let all = vectors(150, 64, 4);
    let db = VectorDatabase::flat(&all, documents(150)).unwrap();
    let id = system.deploy(&db).unwrap();
    let queries: Vec<Vec<f32>> = (0..5).map(|q| all[q * 17].clone()).collect();
    let sequential: Vec<SearchOutcome> = queries
        .iter()
        .map(|q| system.search(id, q, 5).unwrap())
        .collect();
    assert!(
        sequential[0].activity.fine_windows > 0,
        "the default config must actually run the windowed schedule here"
    );
    let before = *system.controller().device().stats();
    let batch = system.search_batch(id, &queries, 5, 4).unwrap();
    let delta = system.controller().device().stats().delta_since(&before);
    for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
        assert_outcome_eq(b, s, &format!("fused adaptive vs sequential, query {i}"));
    }
    let per_query: u64 = batch.iter().map(|o| o.flash_stats.page_reads).sum();
    assert!(
        delta.page_reads < per_query,
        "fused adaptive batch sensed {} pages, per-query accounting says {}",
        delta.page_reads,
        per_query
    );
}

proptest! {
    /// Adaptive scans are bit-identical across {pinned sequential, sharded,
    /// fused batch} over random database shapes, window sizes and mutation
    /// traces — and the transferred-entry / sense counts land in the
    /// determinism-gate summary so CI can diff them across forced
    /// parallelism budgets.
    #[test]
    fn windowed_adaptive_identity_across_modes(
        entries in 24usize..72,
        dim_words in 1usize..3,
        window in 1usize..9,
        shards in 2usize..5,
        mutations in 0usize..8,
        seed in 0usize..1_000,
    ) {
        let dim = dim_words * 32;
        let base = ReisConfig::tiny()
            .with_adaptive_scope(AdaptiveFiltering::All)
            .with_adaptive_window(window)
            .with_compaction(CompactionPolicy::manual());
        let all = vectors(entries, dim, seed);
        let nlist = (entries / 6).clamp(1, 4);
        let db = VectorDatabase::ivf(&all, documents(entries), nlist).expect("database");
        let queries: Vec<Vec<f32>> =
            (0..3).map(|q| all[(seed + q * 13) % entries].clone()).collect();
        let nprobe = nlist.min(2);

        // Replay the same deterministic mutation trace on every fresh
        // system so all modes search the identical index state.
        let mutate = |system: &mut ReisSystem, id: u32| {
            for m in 0..mutations {
                let x = (seed * 31 + m * 7) % 10;
                let vector: Vec<f32> = (0..dim)
                    .map(|d| (((m * 13 + d * 5 + seed) % 19) as f32 - 9.0) / 4.0)
                    .collect();
                if x < 5 {
                    system
                        .insert(id, &vector, format!("ins {m}").into_bytes())
                        .expect("insert");
                } else if x < 7 {
                    let _ = system.delete(id, ((seed + m * 3) % entries) as u32);
                } else {
                    let _ = system.upsert(
                        id,
                        ((seed + m * 5) % entries) as u32,
                        &vector,
                        format!("ups {m}").as_bytes(),
                    );
                }
            }
        };

        // The gate-sensitive leg: shard count pinned to the forced budget.
        // `sharded(1)` is `pinned_sequential`, so a budget-1 gate run and a
        // budget-4 run partition every window differently — their summary
        // equality is exactly the machine-invariance claim.
        let budget_mode = (
            "budget-sharded",
            base.with_scan_parallelism(
                ScanParallelism::sharded(forced_budget(shards)).with_min_pages_per_shard(1),
            ),
        );
        let mut per_mode: Vec<(String, Vec<SearchOutcome>)> = Vec::new();
        for (name, config) in mode_configs(base, shards).into_iter().chain([budget_mode]) {
            let mut system = ReisSystem::new(config);
            let id = system.deploy(&db).expect("deploy");
            mutate(&mut system, id);
            let mut outcomes: Vec<SearchOutcome> = Vec::new();
            for q in &queries {
                outcomes.push(system.search(id, q, 1).expect("bf search"));
            }
            for q in &queries {
                outcomes.push(
                    system
                        .ivf_search_with_nprobe(id, q, 1, nprobe)
                        .expect("ivf search"),
                );
            }
            per_mode.push((name.to_string(), outcomes));
        }
        let (_, reference) = &per_mode[0];
        for (name, got) in &per_mode[1..] {
            for (i, (a, b)) in reference.iter().zip(got).enumerate() {
                assert_outcome_eq(a, b, &format!("sequential vs {name}, query {i}"));
            }
        }

        // Fused batch on a third fresh system (default BatchFusion::Fused
        // with the default auto shard budget — exactly what
        // REIS_TEST_PARALLELISM pins in the determinism gate).
        let mut fused = ReisSystem::new(base);
        let fused_id = fused.deploy(&db).expect("fused deploy");
        mutate(&mut fused, fused_id);
        assert_eq!(*fused.config(), base);
        let before = *fused.controller().device().stats();
        let bf_batch = fused
            .search_batch(fused_id, &queries, 1, shards)
            .expect("fused bf batch");
        let bf_senses = fused
            .controller()
            .device()
            .stats()
            .delta_since(&before)
            .page_reads;
        let before = *fused.controller().device().stats();
        let ivf_batch = fused
            .ivf_search_batch_with_nprobe(fused_id, &queries, 1, nprobe, shards)
            .expect("fused ivf batch");
        let ivf_senses = fused
            .controller()
            .device()
            .stats()
            .delta_since(&before)
            .page_reads;
        for (i, (b, s)) in bf_batch.iter().chain(&ivf_batch).zip(reference).enumerate() {
            assert_outcome_eq(b, s, &format!("fused batch vs sequential, query {i}"));
        }

        // Machine-invariance summary: every number here must be identical
        // no matter the host's core count or the forced shard budget.
        let entries_line: Vec<String> = reference
            .iter()
            .map(|o| format!("{}/{}", o.activity.fine_entries, o.activity.fine_windows))
            .collect();
        record_summary(
            "windowed_adaptive_identity_across_modes",
            &format!(
                "case window={window} shards={shards} entries={} mutations={mutations} \
                 per_query={} bf_senses={bf_senses} ivf_senses={ivf_senses}",
                entries,
                entries_line.join(","),
            ),
        );
    }

    /// The windowed adaptive filter still never loses the top-k and never
    /// transfers more than the static threshold, for any window size.
    #[test]
    fn windowed_adaptive_matches_static_topk(
        entries in 24usize..120,
        dim_words in 1usize..4,
        window in 1usize..17,
        query_seed in 0usize..1_000,
    ) {
        let dim = dim_words * 32;
        let all = vectors(entries, dim, query_seed);
        let db = VectorDatabase::flat(&all, documents(entries)).expect("database");
        let query = &all[query_seed % entries];

        let mut static_system =
            ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(false));
        let static_id = static_system.deploy(&db).expect("static deploy");
        let mut adaptive_system = ReisSystem::new(
            ReisConfig::tiny()
                .with_adaptive_filtering(true)
                .with_adaptive_window(window),
        );
        let adaptive_id = adaptive_system.deploy(&db).expect("adaptive deploy");

        let a = static_system.search(static_id, query, 1).expect("static");
        let b = adaptive_system.search(adaptive_id, query, 1).expect("adaptive");
        prop_assert_eq!(&a.results, &b.results, "top-k must be identical");
        prop_assert_eq!(&a.documents, &b.documents);
        prop_assert!(b.activity.fine_entries <= a.activity.fine_entries);
        prop_assert_eq!(b.activity.fine_windows, b.activity.fine_pages / window);
        record_summary(
            "windowed_adaptive_matches_static_topk",
            &format!(
                "case window={window} entries={} adaptive={}/{} static={}",
                entries, b.activity.fine_entries, b.activity.fine_windows, a.activity.fine_entries,
            ),
        );
    }
}
