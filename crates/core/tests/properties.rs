//! Property-based tests of the REIS core: layout arithmetic, the Temporal
//! Top List kernels, the latency model's monotonicity, and shard-count
//! invariance of the sharded scan path.

use proptest::prelude::*;
use reis_core::records::{TemporalTopList, TtlEntry};
use reis_core::{
    LayoutPlan, PerfModel, QueryActivity, ReisConfig, ReisSystem, ScanParallelism, VectorDatabase,
};
use reis_nand::Geometry;
use reis_ssd::SsdConfig;

fn database(entries: usize, dim: usize) -> VectorDatabase {
    let vectors: Vec<Vec<f32>> = (0..entries)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 13 + d * 7) % 31) as f32 - 15.0) / 7.0)
                .collect()
        })
        .collect();
    let documents: Vec<Vec<u8>> = (0..entries)
        .map(|i| format!("doc {i}").into_bytes())
        .collect();
    VectorDatabase::flat(&vectors, documents).expect("valid database")
}

/// On a scan large enough to fill the Temporal Top List many times over,
/// the adaptive threshold must actually cut transfers, not just match them.
#[test]
fn adaptive_filtering_cuts_transferred_entries_on_large_scans() {
    let entries = 150usize;
    let dim = 64usize;
    let vectors: Vec<Vec<f32>> = (0..entries)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 17 + d * 11) % 37) as f32 - 18.0) / 7.0)
                .collect()
        })
        .collect();
    let documents: Vec<Vec<u8>> = (0..entries)
        .map(|i| format!("doc {i}").into_bytes())
        .collect();
    let db = VectorDatabase::flat(&vectors, documents).unwrap();

    // Adaptation is on by default for brute-force scans, so the static
    // baseline must opt out explicitly.
    let mut static_system = ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(false));
    let static_id = static_system.deploy(&db).unwrap();
    let mut adaptive_system = ReisSystem::new(ReisConfig::tiny().with_adaptive_filtering(true));
    let adaptive_id = adaptive_system.deploy(&db).unwrap();

    let query = &vectors[123];
    let a = static_system.search(static_id, query, 1).unwrap();
    let b = adaptive_system.search(adaptive_id, query, 1).unwrap();
    assert_eq!(a.results, b.results);
    assert!(
        b.activity.fine_entries < a.activity.fine_entries,
        "adaptive {} should beat static {}",
        b.activity.fine_entries,
        a.activity.fine_entries
    );
}

proptest! {
    /// Layout locations always stay inside the planned page counts, for any
    /// database size and (byte-aligned) dimensionality.
    #[test]
    fn layout_locations_are_in_bounds(entries in 1usize..300, dim_bytes in 1usize..32) {
        let dim = dim_bytes * 8;
        let db = database(entries, dim);
        let plan = LayoutPlan::plan(&db, &Geometry::reis_ssd1()).unwrap();
        prop_assert!(plan.embeddings_per_page >= 1);
        for i in 0..entries {
            let (p, s) = plan.embedding_location(i);
            prop_assert!(p < plan.embedding_pages);
            prop_assert!(s < plan.embeddings_per_page);
            let (dp, ds) = plan.document_location(i);
            prop_assert!(dp < plan.doc_pages);
            prop_assert!(ds < plan.docs_per_page);
            let (ip, is) = plan.int8_location(i);
            prop_assert!(ip < plan.int8_pages);
            prop_assert!(is < plan.int8_per_page);
        }
        // Page counts are tight: one fewer page would not hold the entries.
        prop_assert!((plan.embedding_pages - 1) * plan.embeddings_per_page < entries);
        prop_assert!(plan.total_pages() >= plan.embedding_pages + plan.int8_pages + plan.doc_pages);
    }

    /// The Temporal Top List's quickselect keeps exactly the k smallest
    /// distances (as a set) for arbitrary inputs.
    #[test]
    fn ttl_quickselect_keeps_k_smallest(
        distances in proptest::collection::vec(0u32..1_000_000, 1..300),
        k in 1usize..50,
    ) {
        let mut ttl = TemporalTopList::new();
        ttl.extend(distances.iter().enumerate().map(|(i, &d)| TtlEntry {
            distance: d,
            storage_index: i as u32,
            radr: i as u32,
            dadr: i as u32,
            tag: 0,
        }));
        ttl.quickselect(k);
        let mut kept: Vec<u32> = ttl.entries().iter().map(|e| e.distance).collect();
        kept.sort_unstable();
        let mut expected = distances.clone();
        expected.sort_unstable();
        expected.truncate(k.min(distances.len()));
        prop_assert_eq!(kept, expected);
    }

    /// The latency model is monotone: scanning more pages or transferring
    /// more entries never makes a query faster.
    #[test]
    fn latency_model_is_monotone(
        pages in 1usize..10_000,
        extra_pages in 1usize..10_000,
        entries in 0usize..100_000,
        extra_entries in 1usize..100_000,
    ) {
        let model = PerfModel::new(ReisConfig::ssd1());
        let base = model.scan(pages, entries, 128);
        // More pages: allow a 2% slack because the per-round transfer model
        // distributes a fixed entry count over more rounds, whose integer
        // rounding can shave a few nanoseconds even though the physical work
        // only grows.
        let more_pages = model.scan(pages + extra_pages, entries, 128);
        prop_assert!(more_pages.as_secs_f64() >= base.as_secs_f64() * 0.98);
        prop_assert!(model.scan(pages, entries + extra_entries, 128) >= base);
    }

    /// Shard-count invariance: a 2/4/8-shard intra-query scan returns
    /// identical top-k ids, distances, documents and modelled activity to
    /// the sequential (1-shard) path, across random flash geometries and
    /// database shapes. Fresh systems serve the same query sequence, so
    /// even the raw flash statistics must agree.
    #[test]
    fn sharded_scan_matches_sequential_across_geometries(
        channels in 1usize..4,
        dies in 1usize..4,
        planes in 1usize..3,
        blocks in 4usize..7,
        entries in 12usize..28,
        dim_words in 1usize..3,
        query_seed in 0usize..1_000,
    ) {
        let dim = dim_words * 32;
        let geometry = Geometry {
            channels,
            dies_per_channel: dies,
            planes_per_die: planes,
            blocks_per_plane: blocks,
            pages_per_block: 8,
            page_size_bytes: 4096,
            oob_size_bytes: 256,
        };
        let ssd = SsdConfig { geometry, ..SsdConfig::tiny() };
        // Static thresholds here; the windowed *adaptive* schedule has its
        // own sharded/fused/sequential identity suite in
        // `crates/core/tests/adaptive.rs`.
        let base_config = ReisConfig { ssd, ..ReisConfig::tiny() }.with_adaptive_filtering(false);

        let vectors: Vec<Vec<f32>> = (0..entries)
            .map(|i| {
                (0..dim)
                    .map(|d| (((i * 13 + d * 7 + query_seed) % 29) as f32 - 14.0) / 5.0)
                    .collect()
            })
            .collect();
        let documents: Vec<Vec<u8>> = (0..entries)
            .map(|i| format!("chunk {i}").into_bytes())
            .collect();
        let db = VectorDatabase::flat(&vectors, documents).expect("valid database");
        let query = &vectors[query_seed % entries];

        let mut sequential = ReisSystem::new(base_config);
        let seq_id = sequential.deploy(&db).expect("sequential deploy");
        let expected = sequential.search(seq_id, query, 10).expect("sequential search");

        for shards in [2usize, 4, 8] {
            let config = base_config.with_scan_parallelism(
                ScanParallelism::sharded(shards).with_min_pages_per_shard(1),
            );
            let mut system = ReisSystem::new(config);
            let id = system.deploy(&db).expect("sharded deploy");
            let outcome = system.search(id, query, 10).expect("sharded search");
            prop_assert_eq!(&outcome, &expected, "{} shards on {:?}", shards, geometry);
        }
    }

    /// Adaptive distance filtering (tightening the threshold as the TTL
    /// fills) returns the identical top-k — ids, distances and documents —
    /// while never transferring more entries than the static threshold,
    /// across database shapes and under both sequential and sharded scans.
    #[test]
    fn adaptive_filtering_matches_static_topk(
        entries in 24usize..160,
        dim_words in 1usize..4,
        query_seed in 0usize..1_000,
        shards in 1usize..4,
    ) {
        let dim = dim_words * 32;
        let vectors: Vec<Vec<f32>> = (0..entries)
            .map(|i| {
                (0..dim)
                    .map(|d| (((i * 29 + d * 13 + query_seed * 7) % 31) as f32 - 15.0) / 6.0)
                    .collect()
            })
            .collect();
        let documents: Vec<Vec<u8>> = (0..entries)
            .map(|i| format!("doc {i}").into_bytes())
            .collect();
        let db = VectorDatabase::flat(&vectors, documents).expect("valid database");
        let query = &vectors[query_seed % entries];

        let parallelism = if shards == 1 {
            ScanParallelism::sequential()
        } else {
            ScanParallelism::sharded(shards).with_min_pages_per_shard(1)
        };
        let static_config = ReisConfig::tiny()
            .with_scan_parallelism(parallelism)
            .with_adaptive_filtering(false);
        let adaptive_config = static_config.with_adaptive_filtering(true);

        let mut static_system = ReisSystem::new(static_config);
        let static_id = static_system.deploy(&db).expect("static deploy");
        let mut adaptive_system = ReisSystem::new(adaptive_config);
        let adaptive_id = adaptive_system.deploy(&db).expect("adaptive deploy");

        let a = static_system.search(static_id, query, 5).expect("static search");
        let b = adaptive_system.search(adaptive_id, query, 5).expect("adaptive search");
        prop_assert_eq!(&a.results, &b.results, "top-k must be identical");
        prop_assert_eq!(&a.documents, &b.documents);
        prop_assert!(
            b.activity.fine_entries <= a.activity.fine_entries,
            "adaptive transferred {} > static {}",
            b.activity.fine_entries,
            a.activity.fine_entries
        );
    }

    /// Query latency grows with fine-scan activity and never underflows the
    /// broadcast cost.
    #[test]
    fn query_latency_grows_with_activity(fine_pages in 1usize..50_000, passed in 0usize..10_000) {
        let model = PerfModel::new(ReisConfig::ssd2());
        let small = QueryActivity {
            fine_pages,
            fine_entries: passed,
            rerank_candidates: 100,
            int8_pages: 7,
            documents: 10,
            embedding_slot_bytes: 128,
            dim: 1024,
            doc_slot_bytes: 4096,
            ..Default::default()
        };
        let large = QueryActivity { fine_pages: fine_pages * 2, ..small };
        let t_small = model.query_latency(&small, 10).total();
        let t_large = model.query_latency(&large, 10).total();
        prop_assert!(t_large >= t_small);
        prop_assert!(t_small >= model.input_broadcast(128));
    }
}
