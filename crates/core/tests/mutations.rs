//! Correctness of the online mutation subsystem: a database mutated through
//! insert/delete/upsert (with or without compaction) must answer every
//! search exactly like a from-scratch deployment of the surviving logical
//! corpus under the same quantizers — bit-identical results and documents,
//! under both sequential and sharded scans.

use proptest::prelude::*;

use reis_core::{
    CompactionPolicy, ReisConfig, ReisSystem, ScanParallelism, SearchOutcome, VectorDatabase,
};

const DIM: usize = 32;

/// Deterministic pseudo-random vector for a logical entry id.
fn vector_for(id: u32, salt: u64) -> Vec<f32> {
    (0..DIM)
        .map(|d| {
            let x = (id as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(d as u64 * 0x85EB_CA6B)
                .wrapping_add(salt.wrapping_mul(0xC2B2_AE35));
            ((x >> 7) % 23) as f32 - 11.0
        })
        .collect()
}

fn doc_for(id: u32, version: u32) -> Vec<u8> {
    format!("doc {id} v{version}").into_bytes()
}

/// Host-side mirror of the logical corpus: ids in the exact scan order the
/// mutated system visits them (base survivors in storage order, then
/// segment entries in append order; compaction preserves this order).
struct Mirror {
    order: Vec<u32>,
    versions: std::collections::HashMap<u32, (Vec<f32>, Vec<u8>)>,
}

impl Mirror {
    fn new(initial: &[(u32, Vec<f32>, Vec<u8>)]) -> Self {
        Mirror {
            order: initial.iter().map(|(id, _, _)| *id).collect(),
            versions: initial
                .iter()
                .map(|(id, v, d)| (*id, (v.clone(), d.clone())))
                .collect(),
        }
    }

    fn remove(&mut self, id: u32) {
        self.order.retain(|&x| x != id);
        self.versions.remove(&id);
    }

    fn append(&mut self, id: u32, vector: Vec<f32>, doc: Vec<u8>) {
        self.order.retain(|&x| x != id);
        self.order.push(id);
        self.versions.insert(id, (vector, doc));
    }

    fn live_ids(&self) -> &[u32] {
        &self.order
    }

    /// Rebuild the surviving corpus as a fresh flat deployment under the
    /// same quantizers, in the mirrored scan order.
    fn rebuild_flat(&self, template: &VectorDatabase) -> Option<VectorDatabase> {
        if self.order.is_empty() {
            return None;
        }
        let vectors: Vec<Vec<f32>> = self
            .order
            .iter()
            .map(|id| self.versions[id].0.clone())
            .collect();
        let documents: Vec<Vec<u8>> = self
            .order
            .iter()
            .map(|id| self.versions[id].1.clone())
            .collect();
        Some(
            VectorDatabase::flat_with_quantizers(
                &vectors,
                documents,
                template.binary_quantizer().clone(),
                template.int8_quantizer().clone(),
            )
            .expect("reference rebuild"),
        )
    }
}

/// Map a reference search outcome (dense position ids) back to stable ids.
fn mapped_ids(reference: &SearchOutcome, order: &[u32]) -> Vec<u32> {
    reference.results.iter().map(|n| order[n.id]).collect()
}

fn assert_equivalent(mutated: &SearchOutcome, reference: &SearchOutcome, order: &[u32], ctx: &str) {
    assert_eq!(
        mutated
            .results
            .iter()
            .map(|n| n.id as u32)
            .collect::<Vec<_>>(),
        mapped_ids(reference, order),
        "result ids: {ctx}"
    );
    let d_mut: Vec<f32> = mutated.results.iter().map(|n| n.distance).collect();
    let d_ref: Vec<f32> = reference.results.iter().map(|n| n.distance).collect();
    assert_eq!(d_mut, d_ref, "result distances: {ctx}");
    assert_eq!(mutated.documents, reference.documents, "documents: {ctx}");
}

/// One mutation op drawn by the property test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert,
    Delete,
    Upsert,
    Compact,
}

fn decode_op(code: u8) -> Op {
    match code % 8 {
        0..=2 => Op::Insert,
        3 | 4 => Op::Delete,
        5 | 6 => Op::Upsert,
        _ => Op::Compact,
    }
}

/// Apply a random interleaving of mutations to both the system and the
/// mirror, then check search equivalence for a handful of queries under a
/// given scan parallelism.
fn run_interleaving(ops: &[(u8, u64)], initial_entries: usize, parallelism: ScanParallelism) {
    let initial: Vec<(u32, Vec<f32>, Vec<u8>)> = (0..initial_entries as u32)
        .map(|id| (id, vector_for(id, 0), doc_for(id, 0)))
        .collect();
    let vectors: Vec<Vec<f32>> = initial.iter().map(|e| e.1.clone()).collect();
    let documents: Vec<Vec<u8>> = initial.iter().map(|e| e.2.clone()).collect();
    let template = VectorDatabase::flat(&vectors, documents).expect("initial database");

    let config = ReisConfig::tiny()
        .with_scan_parallelism(parallelism)
        .with_compaction(CompactionPolicy::manual());
    let mut system = ReisSystem::new(config);
    let db = system.deploy(&template).expect("deploy");
    let mut mirror = Mirror::new(&initial);
    let mut version = 1u32;

    for &(code, payload) in ops {
        match decode_op(code) {
            Op::Insert => {
                let vector = vector_for(1000 + payload as u32, payload);
                let doc = doc_for(1000 + payload as u32, version);
                let outcome = system.insert(db, &vector, doc.clone()).expect("insert");
                mirror.append(outcome.ids[0], vector, doc);
            }
            Op::Delete => {
                if mirror.live_ids().is_empty() {
                    continue;
                }
                let id = mirror.live_ids()[payload as usize % mirror.live_ids().len()];
                system.delete(db, id).expect("delete");
                mirror.remove(id);
            }
            Op::Upsert => {
                if mirror.live_ids().is_empty() {
                    continue;
                }
                let id = mirror.live_ids()[payload as usize % mirror.live_ids().len()];
                let vector = vector_for(id, payload.wrapping_add(7));
                let doc = doc_for(id, version);
                system.upsert(db, id, &vector, &doc).expect("upsert");
                mirror.append(id, vector, doc);
            }
            Op::Compact => {
                system.compact(db).expect("compact");
            }
        }
        version += 1;
    }

    // Search equivalence against a from-scratch rebuild of the survivors.
    let deployed = system.database(db).expect("deployed");
    assert_eq!(deployed.live_entries(), mirror.live_ids().len());
    match mirror.rebuild_flat(&template) {
        None => {
            let outcome = system.search(db, &vector_for(1, 3), 5).expect("search");
            assert!(outcome.results.is_empty(), "empty corpus yields no results");
        }
        Some(reference_db) => {
            let mut reference = ReisSystem::new(ReisConfig::tiny());
            let ref_id = reference.deploy(&reference_db).expect("reference deploy");
            let order = mirror.live_ids().to_vec();
            for q in 0..4u32 {
                let query = vector_for(2000 + q, 17);
                let a = system.search(db, &query, 5).expect("mutated search");
                let b = reference
                    .search(ref_id, &query, 5)
                    .expect("reference search");
                assert_equivalent(&a, &b, &order, &format!("query {q}"));
            }
            // A query that exactly matches a live entry must find it (other
            // entries may quantize identically and tie ahead of it, so
            // membership — not rank — is the invariant).
            if let Some(&id) = order.last() {
                let (vector, doc) = &mirror.versions[&id];
                let hit = system.search(db, vector, order.len()).expect("self search");
                let position = hit
                    .results
                    .iter()
                    .position(|n| n.id as u32 == id)
                    .unwrap_or_else(|| panic!("live entry {id} missing from its own query"));
                assert_eq!(&hit.documents[position], doc);
            }
        }
    }
}

proptest! {
    /// Random interleavings of insert/delete/upsert (with occasional
    /// compactions) keep every search bit-identical to a from-scratch
    /// rebuild of the surviving corpus — under the sequential scan.
    #[test]
    fn mutations_match_rebuild_sequential(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000), 1..40),
        entries in 6usize..40,
    ) {
        run_interleaving(&ops, entries, ScanParallelism::sequential());
    }

    /// The same invariant under intra-query sharded scans (segments scan
    /// sequentially after the sharded base pass; results must not change).
    #[test]
    fn mutations_match_rebuild_sharded(
        ops in proptest::collection::vec((0u8..8, 0u64..1_000), 1..30),
        entries in 6usize..32,
        shards in 2usize..5,
    ) {
        run_interleaving(
            &ops,
            entries,
            ScanParallelism::sharded(shards).with_min_pages_per_shard(1),
        );
    }
}

#[test]
fn insert_is_immediately_searchable_and_upsert_replaces() {
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let vectors: Vec<Vec<f32>> = (0..24).map(|i| vector_for(i, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..24).map(|i| doc_for(i, 0)).collect();
    let db_id = system
        .deploy(&VectorDatabase::flat(&vectors, documents).unwrap())
        .unwrap();

    let fresh = vector_for(500, 9);
    let outcome = system.insert(db_id, &fresh, b"fresh".to_vec()).unwrap();
    assert_eq!(outcome.ids, vec![24]);
    assert!(outcome.pages_programmed >= 3, "emb + int8 + doc pages");
    assert!(outcome.latency > reis_nand::Nanos::ZERO);

    let hit = system.search(db_id, &fresh, 1).unwrap();
    assert_eq!(hit.results[0].id, 24);
    assert_eq!(hit.documents[0], b"fresh");

    // Upsert replaces the document under the same id.
    system.upsert(db_id, 24, &fresh, b"fresher").unwrap();
    let hit = system.search(db_id, &fresh, 1).unwrap();
    assert_eq!(hit.results[0].id, 24);
    assert_eq!(hit.documents[0], b"fresher");

    // Upserting a base entry relocates it without changing its id.
    let moved = vector_for(600, 11);
    system.upsert(db_id, 3, &moved, b"moved").unwrap();
    let hit = system.search(db_id, &moved, 1).unwrap();
    assert_eq!(hit.results[0].id, 3);
    assert_eq!(hit.documents[0], b"moved");

    // Deleting removes it from every future result.
    system.delete(db_id, 3).unwrap();
    let gone = system.search(db_id, &moved, 24).unwrap();
    assert!(gone.results.iter().all(|n| n.id != 3));
    assert!(matches!(
        system.delete(db_id, 3),
        Err(reis_core::ReisError::EntryNotFound(3))
    ));
    assert!(matches!(
        system.delete(db_id, 999),
        Err(reis_core::ReisError::EntryNotFound(999))
    ));
}

#[test]
fn failed_mutations_leave_the_index_untouched() {
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let vectors: Vec<Vec<f32>> = (0..16).map(|i| vector_for(i, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..16).map(|i| doc_for(i, 0)).collect();
    let db_id = system
        .deploy(&VectorDatabase::flat(&vectors, documents).unwrap())
        .unwrap();
    let query = vector_for(3, 0);
    let before = system.search(db_id, &query, 16).unwrap();

    // An upsert whose document does not fit must fail WITHOUT tombstoning
    // the live version it was meant to replace.
    let doc_slot = system.database(db_id).unwrap().layout.doc_slot_bytes;
    let oversized = vec![0u8; doc_slot];
    assert!(system
        .upsert(db_id, 3, &vector_for(3, 9), &oversized)
        .is_err());
    // A mutation with a bad dimensionality fails too.
    assert!(system
        .insert(db_id, &vector_for(99, 1)[..DIM - 1], b"x".to_vec())
        .is_err());

    let after = system.search(db_id, &query, 16).unwrap();
    assert_eq!(after.result_ids(), before.result_ids());
    assert_eq!(after.documents, before.documents);
    let deployed = system.database(db_id).unwrap();
    assert!(
        deployed.updates.is_clean(),
        "failed mutations left state behind"
    );
    assert_eq!(deployed.live_entries(), 16);
}

#[test]
fn compaction_reclaims_blocks_without_changing_results() {
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());
    let mut system = ReisSystem::new(config);
    let vectors: Vec<Vec<f32>> = (0..40).map(|i| vector_for(i, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..40).map(|i| doc_for(i, 0)).collect();
    let db_id = system
        .deploy(&VectorDatabase::flat(&vectors, documents).unwrap())
        .unwrap();

    // Churn: delete a third, upsert some, insert a batch.
    for id in (0..40u32).step_by(3) {
        system.delete(db_id, id).unwrap();
    }
    for id in [1u32, 7, 13] {
        system
            .upsert(db_id, id, &vector_for(id, 5), &doc_for(id, 5))
            .unwrap();
    }
    let batch: Vec<Vec<f32>> = (100..110u32).map(|i| vector_for(i, 2)).collect();
    let docs: Vec<Vec<u8>> = (100..110u32).map(|i| doc_for(i, 2)).collect();
    system.insert_batch(db_id, &batch, docs).unwrap();

    let queries: Vec<Vec<f32>> = (0..5u32).map(|q| vector_for(3000 + q, 23)).collect();
    let before: Vec<_> = queries
        .iter()
        .map(|q| system.search(db_id, q, 8).unwrap())
        .collect();
    let erases_before = system.controller().device().stats().block_erases;

    let outcome = system.compact(db_id).unwrap();
    assert!(outcome.pages_rewritten > 0);
    assert!(
        outcome.blocks_reclaimed > 0,
        "compaction must erase fully-invalidated blocks"
    );
    assert_eq!(
        system.controller().device().stats().block_erases - erases_before,
        outcome.blocks_reclaimed as u64
    );
    assert_eq!(
        outcome.live_entries,
        system.database(db_id).unwrap().live_entries()
    );
    assert!(system.database(db_id).unwrap().updates.is_clean());

    // Results and documents are unchanged by compaction; the fine scan
    // shrinks back to the dense layout.
    for (query, reference) in queries.iter().zip(&before) {
        let after = system.search(db_id, query, 8).unwrap();
        assert_eq!(after.result_ids(), reference.result_ids());
        assert_eq!(after.documents, reference.documents);
        assert!(after.activity.fine_pages <= reference.activity.fine_pages);
    }

    // A second round of mutations on the compacted generation still works.
    let id = system
        .insert(db_id, &vector_for(700, 7), b"post".to_vec())
        .unwrap()
        .ids[0];
    let hit = system.search(db_id, &vector_for(700, 7), 1).unwrap();
    assert_eq!(hit.results[0].id as u32, id);
    system.compact(db_id).unwrap();
    let hit = system.search(db_id, &vector_for(700, 7), 1).unwrap();
    assert_eq!(hit.results[0].id as u32, id);
}

#[test]
fn ivf_mutations_match_rebuild_with_same_clusters() {
    let config = ReisConfig::tiny().with_compaction(CompactionPolicy::manual());
    let mut system = ReisSystem::new(config);
    let vectors: Vec<Vec<f32>> = (0..60).map(|i| vector_for(i, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..60).map(|i| doc_for(i, 0)).collect();
    let template = VectorDatabase::ivf(&vectors, documents, 5).unwrap();
    let db_id = system.deploy(&template).unwrap();

    // Mutate: deletes, upserts and inserts across clusters, tracking each
    // id's live version host-side.
    let mut versions: std::collections::HashMap<u32, (Vec<f32>, Vec<u8>)> = (0..60u32)
        .map(|id| (id, (vector_for(id, 0), doc_for(id, 0))))
        .collect();
    for id in [2u32, 9, 25, 33, 48] {
        system.delete(db_id, id).unwrap();
        versions.remove(&id);
    }
    for id in [5u32, 17, 41] {
        let (vector, doc) = (vector_for(id, 3), doc_for(id, 3));
        system.upsert(db_id, id, &vector, &doc).unwrap();
        versions.insert(id, (vector, doc));
    }
    for i in 200..212u32 {
        let (vector, doc) = (vector_for(i, 1), doc_for(i, 1));
        let assigned = system.insert(db_id, &vector, doc.clone()).unwrap().ids[0];
        versions.insert(assigned, (vector, doc));
    }

    // Build the reference corpus in the mutated system's logical order:
    // per cluster, surviving base members then live segment members.
    let build_reference = |system: &ReisSystem| {
        let deployed = system.database(db_id).unwrap();
        let mut order: Vec<u32> = Vec::new();
        let mut lists: Vec<Vec<usize>> = Vec::new();
        for cluster in 0..deployed.rivf.len() {
            let mut members = Vec::new();
            let entry = deployed.rivf.entry(cluster).unwrap();
            if entry.member_count() > 0 {
                for storage in entry.first_embedding..=entry.last_embedding {
                    if !deployed.updates.tombstones.contains(storage as usize) {
                        members.push(order.len());
                        order.push(deployed.storage_to_original[storage as usize]);
                    }
                }
            }
            for seg in deployed.updates.store.entries() {
                if seg.cluster == cluster && !seg.deleted {
                    members.push(order.len());
                    order.push(seg.id);
                }
            }
            lists.push(members);
        }
        (order, lists)
    };

    let check = |system: &mut ReisSystem, ctx: &str| {
        let (order, lists) = build_reference(system);
        let ref_vectors: Vec<Vec<f32>> = order.iter().map(|id| versions[id].0.clone()).collect();
        let ref_docs: Vec<Vec<u8>> = order.iter().map(|id| versions[id].1.clone()).collect();
        let reference_db = VectorDatabase::ivf_with_clusters(
            &ref_vectors,
            ref_docs,
            template.binary_quantizer().clone(),
            template.int8_quantizer().clone(),
            reis_core::ClusterInfo {
                centroids: template.clusters().unwrap().centroids.clone(),
                lists,
            },
        )
        .unwrap();
        let mut reference = ReisSystem::new(ReisConfig::tiny());
        let ref_id = reference.deploy(&reference_db).unwrap();
        for q in 0..4u32 {
            let query = vector_for(4000 + q, 29);
            for nprobe in [1usize, 3, 5] {
                let a = system
                    .ivf_search_with_nprobe(db_id, &query, 8, nprobe)
                    .unwrap();
                let b = reference
                    .ivf_search_with_nprobe(ref_id, &query, 8, nprobe)
                    .unwrap();
                assert_equivalent(
                    &a,
                    &b,
                    &order,
                    &format!("{ctx}, query {q}, nprobe {nprobe}"),
                );
            }
        }
    };

    check(&mut system, "pre-compaction");
    system.compact(db_id).unwrap();
    check(&mut system, "post-compaction");
}

#[test]
fn auto_compaction_triggers_under_churn() {
    let policy = CompactionPolicy {
        max_segment_fraction: 0.25,
        max_dead_fraction: 0.25,
        min_mutations: 4,
    };
    let config = ReisConfig::tiny().with_compaction(policy);
    let mut system = ReisSystem::new(config);
    let vectors: Vec<Vec<f32>> = (0..20).map(|i| vector_for(i, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..20).map(|i| doc_for(i, 0)).collect();
    let db_id = system
        .deploy(&VectorDatabase::flat(&vectors, documents).unwrap())
        .unwrap();

    let mut compacted = false;
    for i in 0..8u32 {
        let outcome = system
            .insert(db_id, &vector_for(300 + i, 1), doc_for(300 + i, 1))
            .unwrap();
        compacted |= outcome.compaction.is_some();
    }
    assert!(compacted, "the policy must have fired during the churn");
    let deployed = system.database(db_id).unwrap();
    assert!(deployed.updates.stats.compactions >= 1);
    assert_eq!(deployed.live_entries(), 28);
    // Every inserted entry survived the automatic fold.
    for i in 0..8u32 {
        let hit = system.search(db_id, &vector_for(300 + i, 1), 1).unwrap();
        assert_eq!(hit.documents[0], doc_for(300 + i, 1));
    }
}

#[test]
fn mutations_compose_with_batch_search() {
    let mut system = ReisSystem::new(ReisConfig::tiny());
    let vectors: Vec<Vec<f32>> = (0..32).map(|i| vector_for(i, 0)).collect();
    let documents: Vec<Vec<u8>> = (0..32).map(|i| doc_for(i, 0)).collect();
    let db_id = system
        .deploy(&VectorDatabase::flat(&vectors, documents).unwrap())
        .unwrap();
    for i in 0..6u32 {
        system
            .insert(db_id, &vector_for(100 + i, 2), doc_for(100 + i, 2))
            .unwrap();
    }
    system.delete(db_id, 4).unwrap();

    let queries: Vec<Vec<f32>> = (0..6u32).map(|q| vector_for(5000 + q, 31)).collect();
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| system.search(db_id, q, 5).unwrap())
        .collect();
    let batch = system.search_batch(db_id, &queries, 5, 3).unwrap();
    for (b, s) in batch.iter().zip(&sequential) {
        assert_eq!(b.result_ids(), s.result_ids());
        assert_eq!(b.documents, s.documents);
        assert_eq!(b.activity, s.activity);
    }
}
